#!/usr/bin/env python3
"""Quickstart: track a distributed count with sqrt(k) less communication.

Runs the paper's randomized count tracker (Theorem 2.1) and the trivial
deterministic baseline side by side on the same stream, then prints the
estimate quality and the communication bill of each.

Usage:  python examples/quickstart.py
"""

from repro import DeterministicCountScheme, RandomizedCountScheme, Simulation
from repro.analysis import render_table
from repro.workloads import uniform_sites

N = 200_000  # total stream length across all sites
K = 100  # number of distributed sites
EPS = 0.01  # target relative error


def main() -> None:
    rows = []
    for scheme in (RandomizedCountScheme(EPS), DeterministicCountScheme(EPS)):
        sim = Simulation(scheme, K, seed=7)
        sim.run(uniform_sites(N, K, seed=11))
        estimate = sim.coordinator.estimate()
        rows.append(
            [
                scheme.name,
                estimate,
                abs(estimate - N) / N,
                sim.comm.total_messages,
                sim.comm.total_words,
                sim.space.max_site_words,
            ]
        )
    print(
        render_table(
            ["scheme", "estimate", "rel. error", "messages", "words", "site space"],
            rows,
            title=f"Count tracking: n={N:,}, k={K}, eps={EPS}",
        )
    )
    rand_words, det_words = rows[0][4], rows[1][4]
    print(
        f"\nRandomization saves a factor {det_words / rand_words:.1f} in words "
        f"(theory: up to sqrt(k) = {K ** 0.5:.0f} as N grows)."
    )


if __name__ == "__main__":
    main()
