#!/usr/bin/env python3
"""A tour of the paper's lower-bound experiments (Sections 2.2 and A).

Three demonstrations:

1. **Theorem 2.2** — one-way communication is a dead end: randomized
   thresholds cost as much as deterministic ones, while the two-way
   randomized tracker undercuts both.
2. **Lemma 2.2 / Claim A.1** — the 1-bit problem: deciding whether
   s = k/2 + sqrt(k) or k/2 - sqrt(k) sites hold a 1 requires probing a
   constant fraction of all k sites.
3. **Figure 1** — the two nearly-overlapping normal distributions that
   make the sampling problem hard, rendered as an ASCII plot.

Usage:  python examples/lower_bound_tour.py
"""

import math

from repro import RandomizedCountScheme, Simulation
from repro.analysis import render_table
from repro.lowerbounds import (
    OneWayThresholdScheme,
    min_probes_for_success,
    normal_error,
)
from repro.workloads import round_robin


def demo_one_way() -> None:
    n, k, eps = 40_000, 64, 0.02
    rows = []
    for name, scheme, one_way in [
        ("one-way deterministic", OneWayThresholdScheme(eps), True),
        ("one-way randomized", OneWayThresholdScheme(eps, jitter=True), True),
        ("two-way randomized", RandomizedCountScheme(eps), False),
    ]:
        sim = Simulation(scheme, k, seed=1, one_way=one_way)
        sim.run(round_robin(n, k))
        rows.append([name, sim.comm.total_messages])
    print(
        render_table(
            ["protocol", "messages (round-robin)"],
            rows,
            title=f"1. Theorem 2.2 — one-way vs two-way (n={n:,}, k={k}, eps={eps})",
        )
    )
    print()


def demo_one_bit() -> None:
    rows = []
    for k in (64, 256, 1024):
        z = min_probes_for_success(k, target=0.8)
        rows.append([k, z, f"{z / k:.2f}"])
    print(
        render_table(
            ["k", "probes needed for 0.8 success", "fraction of sites"],
            rows,
            title="2. Lemma 2.2 — the 1-bit problem needs Omega(k) probes",
        )
    )
    print()


def demo_figure1() -> None:
    k, z = 1024, 64
    fig = normal_error(k, z)
    print(
        f"3. Figure 1 — two normals for k={k}, z={z}: "
        f"mu1={fig.mu1:.1f}, mu2={fig.mu2:.1f}, x0={fig.x0:.1f}, "
        f"sigma={fig.sigma1:.2f}, optimal-test error={fig.error:.3f}"
    )
    # ASCII rendering of the two densities.
    lo = fig.mu1 - 3 * fig.sigma1
    hi = fig.mu2 + 3 * fig.sigma2
    width = 61
    for row in range(8, 0, -1):
        line = []
        for col in range(width):
            x = lo + (hi - lo) * col / (width - 1)
            d1 = math.exp(-((x - fig.mu1) ** 2) / (2 * fig.sigma1**2))
            d2 = math.exp(-((x - fig.mu2) ** 2) / (2 * fig.sigma2**2))
            level = row / 8.0
            if d1 >= level and d2 >= level:
                line.append("X")
            elif d1 >= level:
                line.append("/")
            elif d2 >= level:
                line.append("\\")
            elif abs(x - fig.x0) < (hi - lo) / width:
                line.append(".")
            else:
                line.append(" ")
        print("   " + "".join(line))
    marker = int((fig.x0 - lo) / (hi - lo) * (width - 1))
    print("   " + " " * marker + "^ x0 (optimal threshold)")
    print(
        "\n   The densities overlap almost entirely: with z = o(k) probes the"
        "\n   optimal test fails with probability close to 1/2 (Claim A.1)."
    )


def main() -> None:
    demo_one_way()
    demo_one_bit()
    demo_figure1()


if __name__ == "__main__":
    main()
