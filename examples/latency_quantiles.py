#!/usr/bin/env python3
"""Service monitoring scenario: continuous distributed latency quantiles.

k application servers each measure request latencies; the dashboard must
continuously display the median and tail (p90/p99) latency over *all*
requests, within eps*n rank error — the rank-tracking problem (Section 4).

Latencies are drawn from a log-normal-ish mixture: most requests are
fast, a minority hit a slow path.  We compare the paper's randomized rank
tracker against the snapshot baseline and the sampling baseline.

Usage:  python examples/latency_quantiles.py
"""

import bisect

from repro import (
    DeterministicRankScheme,
    DistributedSamplingScheme,
    RandomizedRankScheme,
    Simulation,
)
from repro.analysis import render_table
from repro.runtime.rng import derive_rng

SERVERS = 25
REQUESTS = 120_000
EPS = 0.02
QUANTILES = (0.5, 0.9, 0.99)


def latency_stream(n: int, k: int, seed: int = 0):
    """(server, latency_ms) pairs: 90% fast path, 10% slow path."""
    rng = derive_rng(seed, "latencies")
    for _ in range(n):
        server = rng.randrange(k)
        if rng.random() < 0.9:
            latency = rng.lognormvariate(3.0, 0.4)  # ~20ms typical
        else:
            latency = rng.lognormvariate(5.5, 0.6)  # ~250ms slow path
        yield server, latency


def main() -> None:
    stream = list(latency_stream(REQUESTS, SERVERS, seed=2))
    sorted_latencies = sorted(v for _, v in stream)

    def true_quantile(phi: float) -> float:
        return sorted_latencies[int(phi * (REQUESTS - 1))]

    rows = []
    for scheme in (
        RandomizedRankScheme(EPS),
        DeterministicRankScheme(EPS),
        DistributedSamplingScheme(EPS),
    ):
        sim = Simulation(scheme, SERVERS, seed=6)
        sim.run(stream)
        cells = [scheme.name]
        for phi in QUANTILES:
            estimate = sim.coordinator.quantile(phi)
            true_rank = bisect.bisect_left(sorted_latencies, estimate)
            rank_err = abs(true_rank - phi * REQUESTS) / REQUESTS
            cells.append(f"{estimate:7.1f}ms ({rank_err:.1%})")
        cells.extend([sim.comm.total_messages, sim.comm.total_words])
        rows.append(cells)

    truth_row = ["(exact)"] + [
        f"{true_quantile(phi):7.1f}ms" for phi in QUANTILES
    ] + ["-", "-"]

    print(
        render_table(
            ["scheme", "p50 (rank err)", "p90 (rank err)", "p99 (rank err)",
             "messages", "words"],
            [truth_row] + rows,
            title=(
                f"Latency quantiles: {SERVERS} servers, {REQUESTS:,} requests, "
                f"eps={EPS}"
            ),
        )
    )
    print(
        "\nRank errors should all be below eps = 2% — the randomized tracker"
        "\nachieves this with far fewer shipped words than the snapshot baseline."
    )


if __name__ == "__main__":
    main()
