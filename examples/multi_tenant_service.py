#!/usr/bin/env python3
"""Multi-tenant tracking service: one fleet, many concurrent jobs.

A production-shaped scenario: a fleet of k collector sites receives a
multi-tenant event stream (several sources, skewed across sites, arriving
in per-source micro-batches).  One TrackingService multiplexes four named
jobs over that single fleet — total event count, a coarse lower-bound
count, per-tenant heavy hitters, and the stream median — each with its
own communication/space ledger, all fed through the batched ingestion
engine in one pass.

Usage:  python examples/multi_tenant_service.py
"""

from repro import (
    DeterministicCountScheme,
    RandomizedCountScheme,
    RandomizedFrequencyScheme,
    RandomizedRankScheme,
    TrackingService,
)
from repro.analysis import render_table
from repro.workloads import multi_tenant

SITES = 24
EVENTS = 150_000
TENANTS = 6
BURST = 64


def main() -> None:
    service = TrackingService(num_sites=SITES, seed=11)
    service.register("events-total", RandomizedCountScheme(epsilon=0.01))
    service.register("events-floor", DeterministicCountScheme(epsilon=0.05))
    service.register("hot-values", RandomizedFrequencyScheme(epsilon=0.03))
    service.register("value-median", RandomizedRankScheme(epsilon=0.05))

    stream = multi_tenant(
        EVENTS, SITES, tenants=TENANTS, burst=BURST, seed=3, labeled=False
    )
    ingested = service.ingest_stream(stream, batch_size=16_384)

    status = service.status()
    rows = []
    for name, job in status["jobs"].items():
        rows.append(
            [
                name,
                job["scheme"],
                job["comm"]["total_messages"],
                job["comm"]["total_words"],
                job["space"]["used"]["max_site_words"],
            ]
        )
    print(
        render_table(
            ["job", "scheme", "messages", "words", "site space"],
            rows,
            title=(
                f"Multi-tenant service: {ingested:,} events, "
                f"k={SITES}, {len(status['jobs'])} jobs"
            ),
        )
    )

    total = service.query("events-total")
    floor = service.query("events-floor")
    median = service.query("value-median", "quantile", 0.5)
    top = service.query("hot-values", "top_items", 3)
    print(f"\nestimated total:  {total:,.0f}  (true: {EVENTS:,})")
    print(f"guaranteed floor: {floor:,.0f}")
    print(f"median value:     {median}")
    print("top values:       " + ", ".join(f"{v} (~{c:.0f})" for v, c in top))
    agg = status["comm"]
    print(
        f"fleet aggregate:  {agg['total_messages']:,} messages, "
        f"{agg['total_words']:,} words across all jobs"
    )


if __name__ == "__main__":
    main()
