#!/usr/bin/env python3
"""Distributed cluster: the same protocol, now over a real wire.

Runs the randomized count tracker twice on one seeded stream:

1. in-process, through the synchronous :class:`Simulation`;
2. as a *distributed system* — coordinator hub plus one site actor per
   site, talking length-prefixed frames over real localhost TCP
   (``repro.net.Cluster``).

Then proves three things: the message transcripts are byte-identical,
the query answers agree exactly, and a site actor killed mid-stream can
be restored from a checkpoint + write-ahead log with final answers
unchanged.

Usage:  python examples/distributed_cluster.py [--events N]
"""

import argparse
import os
import tempfile

from repro import RandomizedCountScheme, Simulation
from repro.analysis import render_table
from repro.net import Cluster, SiteUnavailableError
from repro.runtime import TranscriptRecorder
from repro.workloads import uniform_sites

K = 6
EPS = 0.03
SEED = 21


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--events", type=int, default=30_000)
    args = parser.parse_args()
    stream = list(uniform_sites(args.events, K, seed=SEED))

    print(f"Distributed cluster vs simulator (n={args.events:,}, k={K})\n")

    sim = Simulation(RandomizedCountScheme(EPS), K, seed=SEED)
    recorder = TranscriptRecorder().attach(sim.network)
    sim.run(stream)

    with Cluster(
        RandomizedCountScheme(EPS), K, seed=SEED, transport="tcp"
    ) as cluster:
        cluster.run(stream)
        identical = cluster.transcript_bytes() == recorder.to_bytes()
        rows = [
            [
                "simulation",
                sim.comm.total_messages,
                sim.comm.total_words,
                f"{sim.coordinator.estimate():.0f}",
            ],
            [
                "TCP cluster",
                cluster.comm.total_messages,
                cluster.comm.total_words,
                f"{cluster.query():.0f}",
            ],
        ]
        print(
            render_table(
                ["runtime", "messages", "words", "estimate"],
                rows,
                title="same seed, two runtimes",
            )
        )
        print(
            f"\ntranscripts byte-identical: {identical} "
            f"({len(recorder)} protocol messages over the wire)"
        )

    # -- failure injection: kill a site actor, restore, same answers ------
    third = len(stream) // 3
    with tempfile.TemporaryDirectory() as tmp:
        ckpt = os.path.join(tmp, "ckpt")
        cluster = Cluster(
            RandomizedCountScheme(EPS), K, seed=SEED, checkpoint_dir=ckpt
        )
        cluster.run(stream[:third])
        cluster.checkpoint()
        cluster.run(stream[third : 2 * third])  # durable via the WAL only
        cluster.kill_site(2)
        try:
            cluster.run(stream[2 * third :])
            raise AssertionError("ingest into a dead site should fail")
        except SiteUnavailableError:
            print(f"\nkilled site 2 mid-stream at {cluster.elements_processed:,} "
                  "events; cluster refuses further traffic")
        cluster.close()

        restored = Cluster.restore(ckpt)
        restored.run(stream[2 * third :])
        matches = restored.query() == sim.coordinator.estimate()
        print(
            f"recovered from checkpoint + WAL and finished the stream; "
            f"answers match the never-failed run: {matches}"
        )
        restored.close()
        if not matches:
            raise SystemExit(1)


if __name__ == "__main__":
    main()
