"""Load generator + equivalence checker for the HTTP gateway.

Drives a running ``repro gateway`` (or a self-hosted one when no --url
is given): registers two jobs, streams batched events through
``POST /v1/ingest``, queries them back, and — the important part —
replays the *same* stream into an in-process ``TrackingService`` mirror
and asserts the gateway's answers are identical.  Any non-2xx response
or divergent answer exits non-zero, which is what the CI smoke job
watches for.

Two-terminal walkthrough (see README "Running it as a real server")::

    # terminal 1
    repro gateway --listen 127.0.0.1:8791

    # terminal 2
    python examples/load_gen.py --url http://127.0.0.1:8791
"""

import argparse
import json
import sys
import time
import urllib.error
import urllib.request

from repro import ShardedTrackingService, TrackingService
from repro.service.jobspec import parse_job_spec
from repro.workloads import uniform_sites, with_items, zipf_items

#: jobs this generator owns; explicit seeds make the in-process mirror
#: independent of the gateway's service seed
JOBS = (
    ("lg-total", "count/randomized:0.02", 1234),
    ("lg-hot", "frequency/deterministic:0.05", 5678),
)

#: error target of lg-total, used for the sharded-vs-unsharded bound
TOTAL_EPS = 0.02


class GatewayClient:
    def __init__(self, url: str):
        self.url = url.rstrip("/")
        self.requests = 0

    def call(self, method: str, path: str, obj=None):
        data = None if obj is None else json.dumps(obj).encode()
        request = urllib.request.Request(
            self.url + path,
            data=data,
            method=method,
            headers={"Content-Type": "application/json"},
        )
        self.requests += 1
        try:
            with urllib.request.urlopen(request, timeout=120) as response:
                return json.load(response)
        except urllib.error.HTTPError as exc:
            detail = exc.read().decode(errors="replace")
            raise SystemExit(
                f"FAIL: {method} {path} -> HTTP {exc.code}: {detail}"
            )
        except urllib.error.URLError as exc:
            raise SystemExit(f"FAIL: cannot reach gateway at {self.url}: {exc}")


def make_stream(n: int, k: int, seed: int):
    return list(
        with_items(
            uniform_sites(n, k, seed=seed),
            zipf_items(max(16, n // 100), alpha=1.2, seed=seed + 1),
        )
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--url", help="gateway base URL; omitted = self-host one in-process"
    )
    parser.add_argument("--events", type=int, default=60_000)
    parser.add_argument("--batch", type=int, default=2048)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "-k", type=int, default=8, help="fleet size for self-hosted mode"
    )
    parser.add_argument(
        "--shards", type=int, default=0,
        help="the gateway runs sharded with this many shard hubs; the "
        "verification mirror shards identically (exact equality) and an "
        "unsharded mirror checks the composed error bound "
        "(default 0 = unsharded gateway)",
    )
    parser.add_argument(
        "--no-verify", action="store_true",
        help="skip the in-process equivalence check",
    )
    args = parser.parse_args()

    self_hosted = None
    service = None
    if args.url:
        client = GatewayClient(args.url)
        print(f"load_gen: driving gateway at {client.url}")
    else:
        from repro.net.gateway import GatewayThread

        if args.shards > 0:
            service = ShardedTrackingService(
                num_sites=args.k, num_shards=args.shards, seed=args.seed,
                executor="thread",
            )
        else:
            service = TrackingService(num_sites=args.k, seed=args.seed)
        self_hosted = GatewayThread(service)
        self_hosted.__enter__()
        client = GatewayClient(self_hosted.url)
        print(f"load_gen: self-hosted gateway at {client.url}")

    try:
        status = client.call("GET", "/v1/status")
        k = status["sites"]
        shards = status.get("shards", 0)  # present only on sharded gateways
        shard_note = f", shards={shards}" if shards else ""
        print(
            f"load_gen: fleet k={k}{shard_note}, "
            f"existing jobs={sorted(status['jobs'])}"
        )

        for name, spec, seed in JOBS:
            reply = client.call(
                "POST", "/v1/jobs", {"name": name, "spec": spec, "seed": seed}
            )
            print(f"load_gen: registered {name} ({reply['scheme']})")

        stream = make_stream(args.events, k, args.seed)
        site_ids = [s for s, _ in stream]
        items = [v for _, v in stream]
        start = time.perf_counter()
        sent = 0
        batches = 0
        for i in range(0, len(stream), args.batch):
            reply = client.call(
                "POST",
                "/v1/ingest",
                {
                    "site_ids": site_ids[i : i + args.batch],
                    "items": items[i : i + args.batch],
                },
            )
            sent += reply["ingested"]
            batches += 1
        elapsed = time.perf_counter() - start
        rate = sent / elapsed if elapsed > 0 else float("inf")
        print(
            f"load_gen: ingested {sent:,} events in {batches} batches "
            f"({rate:,.0f} events/s over HTTP)"
        )

        gateway_answers = {
            "lg-total": client.call(
                "POST", "/v1/query", {"job": "lg-total"}
            )["result"],
            "lg-hot": client.call(
                "POST",
                "/v1/query",
                {"job": "lg-hot", "method": "top_items", "args": [3]},
            )["result"],
        }
        print(f"load_gen: lg-total estimate = {gateway_answers['lg-total']:,.0f}")
        print(f"load_gen: lg-hot top-3 = {gateway_answers['lg-hot']}")

        healthz = client.call("GET", "/healthz")
        queue = healthz["queue"]
        print(
            f"load_gen: gateway queue peak {queue['max_queued_events']} events, "
            f"{queue['engine_calls']} engine calls for "
            f"{queue['submitted_requests']} requests"
        )

        if not args.no_verify:
            # Mirror the gateway's topology exactly: explicit job seeds
            # make the transcripts service-seed independent, and a
            # sharded mirror derives the same per-shard seeds.
            if shards:
                mirror = ShardedTrackingService(
                    num_sites=k, num_shards=shards, seed=args.seed
                )
            else:
                mirror = TrackingService(num_sites=k, seed=args.seed)
            for name, spec, seed in JOBS:
                _, _, scheme = parse_job_spec(f"{name}={spec}", 0.02)
                mirror.register(name, scheme, seed=seed)
            mirror.ingest(site_ids, items)
            expected = {
                "lg-total": mirror.query("lg-total"),
                "lg-hot": [
                    [item, estimate]
                    for item, estimate in mirror.query("lg-hot", "top_items", 3)
                ],
            }
            if gateway_answers != expected:
                print(
                    "FAIL: TRANSCRIPT DIVERGENCE — gateway answers "
                    f"{gateway_answers} != in-process {expected}",
                    file=sys.stderr,
                )
                return 2
            print("load_gen: verified: HTTP == in-process (transcript-identical)")
            if shards:
                # Sharded vs unsharded: the merged count must sit within
                # the composed error bound of an unsharded reference.
                reference = TrackingService(num_sites=k, seed=args.seed)
                for name, spec, seed in JOBS:
                    _, _, scheme = parse_job_spec(f"{name}={spec}", 0.02)
                    reference.register(name, scheme, seed=seed)
                reference.ingest(site_ids, items)
                bound = 2 * TOTAL_EPS * args.events
                drift = abs(
                    gateway_answers["lg-total"] - reference.query("lg-total")
                )
                if drift > bound:
                    print(
                        f"FAIL: sharded/unsharded divergence {drift:,.0f} "
                        f"exceeds composed bound {bound:,.0f}",
                        file=sys.stderr,
                    )
                    return 2
                print(
                    f"load_gen: verified: sharded within composed bound "
                    f"(|drift|={drift:,.0f} <= {bound:,.0f})"
                )
        return 0
    finally:
        if self_hosted is not None:
            self_hosted.__exit__(None, None, None)
        if service is not None:
            service.close()


if __name__ == "__main__":
    sys.exit(main())
