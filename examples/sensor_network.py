#!/usr/bin/env python3
"""Wireless sensor network scenario: continuous event counting.

The paper motivates count tracking with power-limited distributed systems
such as sensor networks: every message a sensor radios to the base
station costs battery.  Here 60 sensors observe events at wildly
different rates (some sensors sit on a busy road, others in a quiet
field), and the base station must always know the total event count
within 2%.

We compare the battery bill (messages sent) of three strategies and show
the tracker's estimate staying inside the error envelope over time.

Usage:  python examples/sensor_network.py
"""

from repro import (
    DeterministicCountScheme,
    DistributedSamplingScheme,
    RandomizedCountScheme,
    Simulation,
)
from repro.analysis import render_table
from repro.workloads import skewed_sites

SENSORS = 60
EVENTS = 150_000
EPS = 0.02


def main() -> None:
    # Zipf-skewed arrival: sensor 0 sees far more events than sensor 59.
    stream = list(skewed_sites(EVENTS, SENSORS, alpha=1.0, seed=5))

    rows = []
    checkpoints_table = []
    for scheme in (
        RandomizedCountScheme(EPS),
        DeterministicCountScheme(EPS),
        DistributedSamplingScheme(EPS),
    ):
        sim = Simulation(scheme, SENSORS, seed=3)
        trace = []
        sim.run(
            stream,
            checkpoint_every=EVENTS // 6,
            on_checkpoint=lambda s, t, tr=trace: tr.append(
                (t, s.coordinator.estimate())
            ),
        )
        rows.append(
            [
                scheme.name,
                sim.comm.uplink_messages,
                sim.comm.total_messages,
                sim.comm.total_words,
                abs(sim.coordinator.estimate() - EVENTS) / EVENTS,
            ]
        )
        checkpoints_table.append((scheme.name, trace))

    print(
        render_table(
            ["strategy", "radio sends", "total msgs", "words", "final error"],
            rows,
            title=f"Sensor network: {SENSORS} sensors, {EVENTS:,} events, eps={EPS}",
        )
    )

    print("\nTracking over time (estimate vs truth):")
    header = ["events"] + [name for name, _ in checkpoints_table]
    time_rows = []
    for i in range(6):
        t = checkpoints_table[0][1][i][0]
        row = [t] + [trace[i][1] for _, trace in checkpoints_table]
        time_rows.append(row)
    print(render_table(header, time_rows))
    print("\nEvery estimate above should sit within 2-3% of the events column.")


if __name__ == "__main__":
    main()
