#!/usr/bin/env python3
"""Crash-recovery scenario: kill the service mid-stream, restore, verify.

A child process runs a durable :class:`TrackingService` (count + heavy
hitters + median over 16 sites), checkpoints part-way, keeps ingesting —
and then dies hard (``os._exit``, no cleanup, no final checkpoint) in
the middle of the stream.  The parent restores from the checkpoint
directory: the newest snapshot plus the WAL tail rebuild the exact
protocol state, the parent ingests only the remainder of the (seeded,
deterministic) stream, and every query and ledger entry is compared
against an uninterrupted run of the same stream.

The punchline printed at the end: a killed-and-restarted service is
*transcript-identical* to one that never died.

Usage:  python examples/crash_recovery.py [--events N]
"""

import argparse
import os
import subprocess
import sys
import tempfile

from repro import (
    RandomizedCountScheme,
    RandomizedFrequencyScheme,
    RandomizedRankScheme,
    TrackingService,
)
from repro.analysis import render_table
from repro.runtime import batch_from_stream
from repro.workloads import multi_tenant

K = 16
EVENTS = 200_000
BATCH = 8_192
SEED = 11
CHECKPOINT_AT = 0.35  # checkpoint after this fraction of the stream
CRASH_AT = 0.7  # die after this fraction (WAL-only tail in between)


def make_batches(events):
    site_ids, items = batch_from_stream(
        multi_tenant(events, K, tenants=4, burst=32, seed=SEED, labeled=False)
    )
    return [
        (site_ids[lo : lo + BATCH], items[lo : lo + BATCH])
        for lo in range(0, len(site_ids), BATCH)
    ]


def register_jobs(service):
    service.register("events", RandomizedCountScheme(0.01))
    service.register("hot-items", RandomizedFrequencyScheme(0.05))
    service.register("median", RandomizedRankScheme(0.05))


def queries(service):
    return {
        "count estimate": round(service.query("events"), 1),
        "top item": service.query("hot-items", "top_items", 1)[0][0],
        "median": service.query("median", "quantile", 0.5),
        "total messages": service.comm.total_messages,
        "total words": service.comm.total_words,
    }


def child(checkpoint_dir, events):
    """Ingest with durability on, then die without warning."""
    batches = make_batches(events)
    service = TrackingService(
        num_sites=K, seed=SEED, checkpoint_dir=checkpoint_dir
    )
    register_jobs(service)
    checkpoint_after = int(len(batches) * CHECKPOINT_AT)
    crash_after = int(len(batches) * CRASH_AT)
    for index, (site_ids, items) in enumerate(batches):
        service.ingest(site_ids, items)
        if index + 1 == checkpoint_after:
            service.checkpoint()
        if index + 1 == crash_after:
            print(
                f"[child] ingested {service.elements_processed:,} events "
                f"({checkpoint_after} batches snapshotted, "
                f"{crash_after - checkpoint_after} only in the WAL) — dying now",
                flush=True,
            )
            os._exit(17)  # hard kill: no atexit, no flush, no checkpoint
    raise AssertionError("child should have crashed")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--events", type=int, default=EVENTS)
    parser.add_argument("--checkpoint-dir", help=argparse.SUPPRESS)
    parser.add_argument("--child", action="store_true", help=argparse.SUPPRESS)
    args = parser.parse_args(argv)

    if args.child:
        child(args.checkpoint_dir, args.events)
        return 1  # unreachable

    workdir = tempfile.mkdtemp(prefix="repro-crash-recovery-")
    checkpoint_dir = os.path.join(workdir, "ckpt")

    print(f"1. spawning a durable service (checkpoints -> {checkpoint_dir})")
    proc = subprocess.run(
        [
            sys.executable,
            os.path.abspath(__file__),
            "--child",
            "--checkpoint-dir",
            checkpoint_dir,
            "--events",
            str(args.events),
        ],
        env={**os.environ, "PYTHONPATH": os.pathsep.join(sys.path)},
    )
    if proc.returncode != 17:
        print(f"error: child exited with {proc.returncode}, expected a crash")
        return 1

    print("\n2. child is dead; restoring from snapshot + WAL tail")
    service = TrackingService.restore(checkpoint_dir)
    print(
        f"   restored at {service.elements_processed:,} events, "
        f"{len(service.jobs)} jobs"
    )

    print("3. ingesting the remainder of the stream")
    batches = make_batches(args.events)
    done = service.elements_processed
    skipped = 0
    for site_ids, items in batches:
        if skipped + len(items) <= done:
            skipped += len(items)
            continue
        service.ingest(site_ids, items)
    service.checkpoint()

    print("4. replaying the whole stream on a service that never died\n")
    reference = TrackingService(num_sites=K, seed=SEED)
    register_jobs(reference)
    for site_ids, items in batches:
        reference.ingest(site_ids, items)

    restored, uninterrupted = queries(service), queries(reference)
    rows = [
        [metric, restored[metric], uninterrupted[metric],
         "yes" if restored[metric] == uninterrupted[metric] else "NO"]
        for metric in restored
    ]
    print(
        render_table(
            ["metric", "crashed+restored", "never died", "identical"],
            rows,
            title=(
                f"crash recovery: k={K}, n={args.events:,}, "
                f"killed at {int(CRASH_AT * 100)}% of the stream"
            ),
        )
    )
    service.close()
    if restored != uninterrupted:
        print("\nFAIL: restored service diverged from the uninterrupted run")
        return 1
    print("\nOK: killed-and-restarted == never died, message for message.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
