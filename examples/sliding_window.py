#!/usr/bin/env python3
"""Sliding-window scenario: "how many requests in the last minute?"

The paper tracks counts over the *entire* stream; operations dashboards
usually want the last W time units instead — the related-work setting of
Chan et al. [5], implemented here as an extension on exponential
histograms (`repro.core.window`).

A day-night traffic pattern drives 12 frontends; the dashboard tracks a
60-second window.  The punchline: when traffic stops, the window count
decays to zero at the coordinator *without a single message* — bucket
expiry is computable locally from timestamps.

Usage:  python examples/sliding_window.py
"""

import math

from repro import Simulation, WindowedCountScheme
from repro.analysis import render_table
from repro.runtime.rng import derive_rng

FRONTENDS = 12
WINDOW = 60_000  # 60 s in ms
DURATION = 600_000  # 10 minutes
EPS = 0.1


def traffic(duration: int, k: int, seed: int = 0):
    """(site, timestamp_ms) events with a sinusoidal rate profile."""
    rng = derive_rng(seed, "traffic")
    t = 0.0
    while t < duration:
        # Rate swings between 0.2 and 1.8 events/ms over a 5-min period.
        rate = 1.0 + 0.8 * math.sin(2 * math.pi * t / 300_000)
        t += rng.expovariate(max(rate, 0.05))
        yield rng.randrange(k), int(t)


def main() -> None:
    sim = Simulation(WindowedCountScheme(WINDOW, EPS), FRONTENDS, seed=4)
    events = list(traffic(DURATION, FRONTENDS, seed=9))
    timestamps = [t for _, t in events]

    rows = []
    checkpoints = [DURATION * i // 6 for i in range(1, 7)]
    next_checkpoint = 0
    for idx, (site, t) in enumerate(events):
        sim.process(site, t)
        while next_checkpoint < len(checkpoints) and t >= checkpoints[next_checkpoint]:
            now = checkpoints[next_checkpoint]
            import bisect

            lo = bisect.bisect_right(timestamps, now - WINDOW, 0, idx + 1)
            hi = bisect.bisect_right(timestamps, now, 0, idx + 1)
            truth = hi - lo
            estimate = sim.coordinator.estimate(now)
            rows.append(
                [
                    f"{now / 1000:.0f}s",
                    truth,
                    round(estimate),
                    f"{abs(estimate - truth) / max(truth, 1):.1%}",
                ]
            )
            next_checkpoint += 1

    print(
        render_table(
            ["time", "true last-60s count", "estimate", "rel err"],
            rows,
            title=(
                f"Sliding-window count: {FRONTENDS} frontends, "
                f"W=60s, eps={EPS}, {len(events):,} events"
            ),
        )
    )

    before = sim.comm.total_messages
    silent = [
        sim.coordinator.estimate(DURATION + offset)
        for offset in (0, WINDOW // 2, WINDOW, 2 * WINDOW)
    ]
    print(
        "\nTraffic stops at t=600s; coordinator-side decay "
        f"(0 extra messages, ledger still {sim.comm.total_messages == before}):"
    )
    for offset, value in zip((0, WINDOW // 2, WINDOW, 2 * WINDOW), silent):
        print(f"  t = 600s + {offset/1000:>3.0f}s  ->  window count ~ {value:,.0f}")
    print(f"\nTotal communication: {sim.comm.total_words:,} words "
          f"for {len(events):,} events.")


if __name__ == "__main__":
    main()
