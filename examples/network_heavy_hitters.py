#!/usr/bin/env python3
"""Network monitoring scenario: distributed heavy-hitter detection.

A classic distributed tracking application (Section 1.1: "network traffic
analysis"): k ingress routers each see a stream of flows; the operations
center must continuously know which source prefixes carry more than a
phi-fraction of total traffic.  Flow popularity follows a Zipf law.

We run the paper's randomized frequency tracker (Theorem 3.1) against the
deterministic optimum and report detection quality plus communication.

Usage:  python examples/network_heavy_hitters.py
"""

from collections import Counter

from repro import (
    DeterministicFrequencyScheme,
    RandomizedFrequencyScheme,
    Simulation,
)
from repro.analysis import render_table
from repro.workloads import uniform_sites, with_items, zipf_items

ROUTERS = 36
FLOWS = 200_000
EPS = 0.01
PHI = 0.03  # report prefixes above 3% of traffic


def main() -> None:
    prefixes = zipf_items(5_000, alpha=1.25, seed=9)
    stream = list(with_items(uniform_sites(FLOWS, ROUTERS, seed=8), prefixes))
    truth = Counter(p for _, p in stream)
    true_heavy = {p for p, c in truth.items() if c >= PHI * FLOWS}

    rows = []
    for scheme in (
        RandomizedFrequencyScheme(EPS),
        DeterministicFrequencyScheme(EPS),
    ):
        sim = Simulation(scheme, ROUTERS, seed=4)
        sim.run(stream)
        reported = set(sim.coordinator.heavy_hitters(PHI))
        recall = len(reported & true_heavy) / max(1, len(true_heavy))
        # Precision against a (phi - eps) cutoff: anything reported must
        # at least clear the relaxed threshold.
        acceptable = {p for p, c in truth.items() if c >= (PHI - 2 * EPS) * FLOWS}
        precision = len(reported & acceptable) / max(1, len(reported))
        rows.append(
            [
                scheme.name,
                len(reported),
                f"{recall:.0%}",
                f"{precision:.0%}",
                sim.comm.total_messages,
                sim.comm.total_words,
                sim.space.max_site_words,
            ]
        )

    print(
        render_table(
            [
                "scheme",
                "reported",
                "recall",
                "precision",
                "messages",
                "words",
                "router space",
            ],
            rows,
            title=(
                f"Heavy hitters: {ROUTERS} routers, {FLOWS:,} flows, "
                f"phi={PHI}, eps={EPS} ({len(true_heavy)} true heavy prefixes)"
            ),
        )
    )

    print("\nTop-5 prefix loads, truth vs randomized tracker:")
    sim = Simulation(RandomizedFrequencyScheme(EPS), ROUTERS, seed=4)
    sim.run(stream)
    top_rows = []
    for prefix, count in truth.most_common(5):
        est = sim.coordinator.estimate_frequency(prefix)
        top_rows.append([prefix, count, round(est), abs(est - count) / FLOWS])
    print(render_table(["prefix", "true", "estimate", "err / n"], top_rows))


if __name__ == "__main__":
    main()
