"""Prometheus text exposition (format version 0.0.4).

:func:`render_prometheus` turns a :class:`~repro.obs.metrics.MetricsRegistry`
into the ``text/plain; version=0.0.4`` body served at ``GET /metrics``:

* one ``# HELP`` / ``# TYPE`` header per family, families sorted by
  name and children by label values, so output is deterministic and
  golden-file testable;
* help text escapes ``\\`` and newlines, label values additionally
  escape ``"``;
* histograms expand to cumulative ``_bucket`` series (always ending in
  ``le="+Inf"``) plus ``_sum`` and ``_count``;
* integral values render without a trailing ``.0`` — scrapers accept
  both, humans prefer ints.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

__all__ = ["CONTENT_TYPE", "render_prometheus"]

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(text: str) -> str:
    return (
        text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _labels_text(names: Sequence[str], values: Sequence[str]) -> str:
    if not names:
        return ""
    pairs = ",".join(
        f'{name}="{_escape_label_value(value)}"'
        for name, value in zip(names, values)
    )
    return "{" + pairs + "}"


def _bucket_labels_text(
    names: Sequence[str], values: Sequence[str], le: str
) -> str:
    pairs = [
        f'{name}="{_escape_label_value(value)}"'
        for name, value in zip(names, values)
    ]
    pairs.append(f'le="{le}"')
    return "{" + ",".join(pairs) + "}"


def render_prometheus(registry) -> str:
    """The full exposition body for ``registry``, trailing newline
    included (Prometheus requires the final line to be terminated)."""
    lines = []
    for family in registry.collect():
        lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        samples: Sequence[Tuple[Tuple[str, ...], object]] = sorted(
            family.samples(), key=lambda kv: kv[0]
        )
        if family.kind == "histogram":
            for key, snap in samples:
                total = snap["count"]
                for bound, cumulative in snap["buckets"]:
                    lines.append(
                        f"{family.name}_bucket"
                        f"{_bucket_labels_text(family.label_names, key, _format_value(bound))}"
                        f" {cumulative}"
                    )
                lines.append(
                    f"{family.name}_bucket"
                    f"{_bucket_labels_text(family.label_names, key, '+Inf')}"
                    f" {total}"
                )
                lines.append(
                    f"{family.name}_sum"
                    f"{_labels_text(family.label_names, key)}"
                    f" {_format_value(snap['sum'])}"
                )
                lines.append(
                    f"{family.name}_count"
                    f"{_labels_text(family.label_names, key)} {total}"
                )
        else:
            for key, value in samples:
                lines.append(
                    f"{family.name}"
                    f"{_labels_text(family.label_names, key)}"
                    f" {_format_value(value)}"
                )
    return "\n".join(lines) + "\n"
