"""Live observability plane: metrics, tracing, and push streams.

This package is the *dependency-free core* of the service's
observability story (it imports nothing from the rest of ``repro``, so
every layer — runtime, service, shard, exec, net — may import it):

* :mod:`repro.obs.metrics` — Counter / Gauge / Histogram primitives
  with label sets, a process-local :class:`MetricsRegistry` with a
  label-cardinality guard, and collector hooks that bridge existing
  plain-dict stats (``AsyncBatchIngestor.stats``,
  ``TcpTransport.stats``, ``CommStats``/``SpaceStats``) into metric
  families at scrape time, so hot paths never pay for a registry
  lookup.
* :mod:`repro.obs.prometheus` — the Prometheus text-exposition
  renderer behind the gateway's ``GET /metrics``.
* :mod:`repro.obs.tracing` — :class:`SpanRecorder`, a ring-buffered
  recorder of dispatch/merge/fence spans (``GET /v1/trace``), plus the
  thread-local trace context (:func:`trace_scope` /
  :func:`current_trace`) that stitches one ingest round across
  threads, processes and TCP hops.
* :mod:`repro.obs.alerts` — :class:`AlertManager`, the rule state
  machine (``ok → pending → firing → resolved`` with re-arm
  hysteresis) routing threshold flips to webhook / exec / logfile
  sinks and the ``GET /v1/alerts`` ring.
* :mod:`repro.obs.sse` — Server-Sent-Events framing plus the
  standing-query subscription bookkeeping behind ``POST /v1/subscribe``
  and ``GET /v1/stream/<id>``.

The gateway owns the registry (one per gateway, no process-global
mutable state); layers own their primitive metric objects or plain
stats structures and the gateway *attaches* them, so a layer can be
instrumented without knowing whether anyone is scraping.
"""

from .alerts import AlertManager, AlertRule
from .fleet import FleetMonitor, FleetTarget
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .process import process_stats, register_process_metrics
from .prometheus import render_prometheus
from .sse import Subscription, SubscriptionHub, render_sse_event
from .tracing import (
    SpanRecorder,
    current_trace,
    filter_spans,
    new_trace_id,
    trace_scope,
)

__all__ = [
    "AlertManager",
    "AlertRule",
    "Counter",
    "FleetMonitor",
    "FleetTarget",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SpanRecorder",
    "Subscription",
    "SubscriptionHub",
    "current_trace",
    "filter_spans",
    "new_trace_id",
    "process_stats",
    "register_process_metrics",
    "render_prometheus",
    "render_sse_event",
    "trace_scope",
]
