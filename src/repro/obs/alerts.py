"""Alert routing: rule state machines and pluggable delivery sinks.

The observability plane's closing loop.  Threshold subscriptions (PR 6)
fire predicate flips over SSE, but an SSE stream nobody is tailing is a
dashboard, not an alert.  :class:`AlertManager` turns predicates into
routed operator events:

* **Rules** load from a JSON manifest (``--alert-rules FILE`` on
  ``repro gateway``).  Each rule names a predicate source — a job
  query threshold (``kind: threshold``), a metric-family total
  (``kind: metrics``), or the paper's composed error accounting
  (``kind: error_bound``) — plus an operator/value, a ``for`` duration,
  a ``rearm`` holdoff, target sinks and free-form labels.
* **State machine** per rule: ``ok → pending(for) → firing →
  resolved(→ ok)``.  A predicate must hold for ``for`` seconds before
  the rule fires (transient spikes never page), and after a resolve the
  rule cannot re-enter ``pending`` until ``rearm`` seconds pass — the
  hysteresis that keeps a quantile flapping around its threshold from
  storming the sinks.
* **Sinks**: ``webhook`` (JSON POST with bounded retry/backoff and a
  dead-letter counter), ``exec`` (a subprocess with a timeout, the
  event as JSON on stdin), ``logfile`` (JSON lines), and always the
  in-memory ring behind ``GET /v1/alerts``.  Delivery runs on one
  background thread through a bounded queue, so a slow webhook can
  never stall the gateway's evaluator.
* **Exemplars**: every transition event carries the ``trace_id`` of
  the ingest round that flipped it, so ``/v1/trace?trace_id=`` shows
  the exact cross-process dispatch that caused the page.

Evaluation stays where the service lock lives: the *gateway* computes
each rule's raw value (same machinery as standing queries) and calls
:meth:`AlertManager.step` with the ``{rule: value}`` map; this module
owns comparison, state, and delivery — and is fully instrumented
(firing gauge, transition counters, sink latency/failure metrics).
"""

from __future__ import annotations

import json
import queue
import subprocess
import threading
import time
import urllib.error
import urllib.request
from collections import deque
from typing import Dict, List, Optional

from .metrics import DEFAULT_BUCKETS, MetricsRegistry

__all__ = [
    "AlertManager",
    "AlertRule",
    "ExecSink",
    "LogfileSink",
    "SinkError",
    "WebhookSink",
]

#: comparison operators an alert predicate may use (the same set the
#: gateway's threshold subscriptions accept)
COMPARISONS = {
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
}

#: rule predicate sources and the fields each requires
_RULE_KINDS = {
    "threshold": ("job",),
    "metrics": ("metric",),
    "error_bound": ("job",),
    # fleet rules compare a FleetMonitor quantity (hubs_down,
    # capacity_ratio, ...) named by the same ``metric`` field the
    # metrics kind uses; the gateway resolves it against /v1/fleet state
    "fleet": ("metric",),
}

#: transition events kept for ``GET /v1/alerts``
_EVENT_RING = 256

#: dead-lettered events kept for post-mortems
_DEAD_RING = 64

#: sink dispatches that may queue before new ones are dropped (counted)
_QUEUE_BOUND = 256


class SinkError(RuntimeError):
    """A sink failed to deliver an event (after any internal retries)."""


class WebhookSink:
    """JSON POST with bounded retry/backoff.

    Retries transport-level failures and non-2xx responses up to
    ``retries`` times with exponential backoff starting at
    ``backoff`` seconds; exhaustion raises :class:`SinkError`, which
    the manager counts as a dead letter.
    """

    kind = "webhook"

    def __init__(
        self,
        url: str,
        timeout: float = 5.0,
        retries: int = 2,
        backoff: float = 0.25,
    ):
        if not url or not isinstance(url, str):
            raise ValueError("webhook sink needs a 'url'")
        self.url = url
        self.timeout = float(timeout)
        self.retries = max(0, int(retries))
        self.backoff = max(0.0, float(backoff))

    def emit(self, event: dict) -> None:
        body = json.dumps(event, sort_keys=True).encode()
        last: Optional[Exception] = None
        for attempt in range(self.retries + 1):
            if attempt:
                time.sleep(self.backoff * (2 ** (attempt - 1)))
            request = urllib.request.Request(
                self.url,
                data=body,
                headers={"Content-Type": "application/json"},
                method="POST",
            )
            try:
                with urllib.request.urlopen(
                    request, timeout=self.timeout
                ) as response:
                    if 200 <= response.status < 300:
                        return
                    last = SinkError(
                        f"webhook {self.url} answered {response.status}"
                    )
            except (urllib.error.URLError, OSError, ValueError) as exc:
                last = exc
        raise SinkError(
            f"webhook {self.url} failed after {self.retries + 1} "
            f"attempt(s): {last}"
        ) from last


class ExecSink:
    """Run a command per event, the event as JSON on stdin."""

    kind = "exec"

    def __init__(self, command, timeout: float = 10.0):
        if (
            not command
            or not isinstance(command, (list, tuple))
            or not all(isinstance(part, str) for part in command)
        ):
            raise ValueError(
                "exec sink needs a 'command' list of strings"
            )
        self.command = list(command)
        self.timeout = float(timeout)

    def emit(self, event: dict) -> None:
        try:
            proc = subprocess.run(
                self.command,
                input=json.dumps(event, sort_keys=True).encode(),
                capture_output=True,
                timeout=self.timeout,
            )
        except (OSError, subprocess.TimeoutExpired) as exc:
            raise SinkError(f"exec sink {self.command[0]!r}: {exc}") from exc
        if proc.returncode != 0:
            raise SinkError(
                f"exec sink {self.command[0]!r} exited "
                f"{proc.returncode}: {proc.stderr.decode(errors='replace')[:200]}"
            )


class LogfileSink:
    """Append one JSON line per event (open/append/close — the rate is
    operator-speed, and short-lived handles survive log rotation)."""

    kind = "logfile"

    def __init__(self, path: str):
        if not path or not isinstance(path, str):
            raise ValueError("logfile sink needs a 'path'")
        self.path = path

    def emit(self, event: dict) -> None:
        try:
            with open(self.path, "a") as f:
                f.write(json.dumps(event, sort_keys=True) + "\n")
        except OSError as exc:
            raise SinkError(f"logfile sink {self.path!r}: {exc}") from exc


_SINK_TYPES = {"webhook": WebhookSink, "exec": ExecSink, "logfile": LogfileSink}


def _build_sink(name: str, config: dict):
    if not isinstance(config, dict):
        raise ValueError(f"sink {name!r} must be a JSON object")
    kind = config.get("type")
    if kind not in _SINK_TYPES:
        raise ValueError(
            f"sink {name!r} has unknown type {kind!r}; choose from "
            f"{sorted(_SINK_TYPES)}"
        )
    kwargs = {k: v for k, v in config.items() if k != "type"}
    try:
        return _SINK_TYPES[kind](**kwargs)
    except TypeError as exc:
        raise ValueError(f"sink {name!r}: {exc}") from None


class AlertRule:
    """One rule: a predicate source plus its transition state machine."""

    __slots__ = (
        "name", "spec", "for_s", "rearm_s", "sinks", "labels",
        "state", "pending_since", "rearm_until", "last_value",
        "fired_count",
    )

    def __init__(
        self,
        name: str,
        spec: dict,
        for_s: float = 0.0,
        rearm_s: float = 0.0,
        sinks: Optional[List[str]] = None,
        labels: Optional[dict] = None,
    ):
        if not name or not isinstance(name, str):
            raise ValueError("alert rule needs a non-empty 'name'")
        kind = spec.get("kind")
        if kind not in _RULE_KINDS:
            raise ValueError(
                f"rule {name!r}: 'kind' must be one of "
                f"{sorted(_RULE_KINDS)}"
            )
        for field in _RULE_KINDS[kind]:
            if not spec.get(field) or not isinstance(spec[field], str):
                raise ValueError(
                    f"rule {name!r} ({kind}) needs a {field!r} string"
                )
        if spec.get("op") not in COMPARISONS:
            raise ValueError(
                f"rule {name!r}: 'op' must be one of {sorted(COMPARISONS)}"
            )
        value = spec.get("value")
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ValueError(f"rule {name!r}: 'value' must be a number")
        if for_s < 0 or rearm_s < 0:
            raise ValueError(
                f"rule {name!r}: 'for' and 'rearm' must be >= 0"
            )
        self.name = name
        self.spec = dict(spec)
        self.for_s = float(for_s)
        self.rearm_s = float(rearm_s)
        self.sinks = list(sinks or [])
        self.labels = dict(labels or {})
        self.state = "ok"
        self.pending_since: Optional[float] = None
        self.rearm_until = 0.0
        self.last_value: Optional[float] = None
        self.fired_count = 0

    def active(self, value: float) -> bool:
        """Does ``value`` satisfy the rule's predicate?"""
        return COMPARISONS[self.spec["op"]](
            float(value), float(self.spec["value"])
        )

    def step(self, value: float, now: float) -> Optional[str]:
        """Advance the state machine one evaluation; returns the emitted
        transition (``"firing"`` / ``"resolved"``) or ``None``.

        ``ok → pending`` is gated by the re-arm holdoff; ``pending →
        firing`` by the ``for`` duration (``for=0`` fires on the same
        evaluation).  A predicate that lets go mid-``pending`` returns
        to ``ok`` silently — it never fired, so nothing resolves.
        """
        self.last_value = float(value)
        active = self.active(value)
        if self.state == "ok":
            if active and now >= self.rearm_until:
                self.state = "pending"
                self.pending_since = now
                return self._maybe_fire(now)
            return None
        if self.state == "pending":
            if not active:
                self.state = "ok"
                self.pending_since = None
                return None
            return self._maybe_fire(now)
        # firing
        if not active:
            self.state = "ok"
            self.pending_since = None
            self.rearm_until = now + self.rearm_s
            return "resolved"
        return None

    def _maybe_fire(self, now: float) -> Optional[str]:
        if now - self.pending_since >= self.for_s:
            self.state = "firing"
            self.fired_count += 1
            return "firing"
        return None

    def pending_deadline(self) -> Optional[float]:
        """When a held predicate would fire (``None`` unless pending)."""
        if self.state != "pending" or self.pending_since is None:
            return None
        return self.pending_since + self.for_s

    def describe(self) -> dict:
        return {
            "name": self.name,
            "spec": dict(self.spec),
            "for": self.for_s,
            "rearm": self.rearm_s,
            "sinks": list(self.sinks),
            "labels": dict(self.labels),
            "state": self.state,
            "last_value": self.last_value,
            "fired_count": self.fired_count,
        }


class AlertManager:
    """Rules, sinks, the event ring, and the delivery thread.

    Parameters
    ----------
    rules / sinks:
        Parsed :class:`AlertRule` objects and ``{name: sink}`` — use
        :meth:`from_manifest` for the JSON form the CLI loads.
    registry:
        The :class:`MetricsRegistry` to declare alert metrics on
        (the gateway passes its own); ``None`` makes a private one.
    clock:
        State-machine time source (monotonic; injectable for tests).
    """

    def __init__(
        self,
        rules: List[AlertRule],
        sinks: Optional[Dict[str, object]] = None,
        registry: Optional[MetricsRegistry] = None,
        clock=time.monotonic,
    ):
        self.sinks = dict(sinks or {})
        names = set()
        for rule in rules:
            if rule.name in names:
                raise ValueError(f"duplicate alert rule {rule.name!r}")
            names.add(rule.name)
            for sink in rule.sinks:
                if sink not in self.sinks:
                    raise ValueError(
                        f"rule {rule.name!r} routes to unknown sink "
                        f"{sink!r}; declared: {sorted(self.sinks)}"
                    )
        self.rules: Dict[str, AlertRule] = {r.name: r for r in rules}
        self._clock = clock
        self._events: deque = deque(maxlen=_EVENT_RING)
        self._dead: deque = deque(maxlen=_DEAD_RING)
        self._queue: queue.Queue = queue.Queue(maxsize=_QUEUE_BOUND)
        self._worker: Optional[threading.Thread] = None
        self._closed = False
        registry = registry if registry is not None else MetricsRegistry()
        self.registry = registry
        registry.gauge(
            "repro_alerts_rules", "Alert rules loaded.",
        ).set_function(lambda: len(self.rules))
        registry.gauge(
            "repro_alerts_firing", "Alert rules currently firing.",
        ).set_function(
            lambda: sum(
                1 for r in self.rules.values() if r.state == "firing"
            )
        )
        self.m_transitions = registry.counter(
            "repro_alerts_transitions_total",
            "Rule state transitions emitted, by rule and new state.",
            ["rule", "state"],
        )
        self.m_evals = registry.counter(
            "repro_alerts_evals_total",
            "Rule evaluations stepped through the state machines.",
        )
        self.m_eval_errors = registry.counter(
            "repro_alerts_eval_errors_total",
            "Evaluation rounds where a rule's value was unavailable.",
            ["rule"],
        )
        self.m_sink_seconds = registry.histogram(
            "repro_alerts_sink_dispatch_seconds",
            "Sink delivery latency (retries included), by sink.",
            ["sink"],
            buckets=DEFAULT_BUCKETS,
        )
        self.m_sink_failures = registry.counter(
            "repro_alerts_sink_failures_total",
            "Sink deliveries that failed after retries, by sink.",
            ["sink"],
        )
        self.m_dead_letters = registry.counter(
            "repro_alerts_dead_letters_total",
            "Events a sink could not deliver (kept in the dead ring).",
            ["sink"],
        )
        self.m_dropped = registry.counter(
            "repro_alerts_queue_dropped_total",
            "Dispatches dropped because the delivery queue was full.",
        )
        if self.sinks:
            self._worker = threading.Thread(
                target=self._deliver, name="repro-alert-sinks", daemon=True
            )
            self._worker.start()

    # -- manifest ----------------------------------------------------------

    @classmethod
    def from_manifest(
        cls,
        manifest: dict,
        registry: Optional[MetricsRegistry] = None,
        clock=time.monotonic,
    ) -> "AlertManager":
        """Build a manager from the ``--alert-rules`` JSON document::

            {
              "sinks": {
                "ops":   {"type": "webhook", "url": "http://...",
                          "timeout": 5, "retries": 2, "backoff": 0.25},
                "pager": {"type": "exec", "command": ["./page.sh"],
                          "timeout": 10},
                "audit": {"type": "logfile", "path": "alerts.log"}
              },
              "rules": [
                {"name": "hh-hot", "kind": "threshold", "job": "hh",
                 "method": "estimate", "args": [], "op": ">",
                 "value": 50000, "for": 5, "rearm": 30,
                 "sinks": ["ops", "audit"],
                 "labels": {"severity": "page"}}
              ]
            }
        """
        if not isinstance(manifest, dict):
            raise ValueError("alert manifest must be a JSON object")
        sink_configs = manifest.get("sinks") or {}
        if not isinstance(sink_configs, dict):
            raise ValueError("'sinks' must be an object of name -> config")
        sinks = {
            name: _build_sink(name, config)
            for name, config in sink_configs.items()
        }
        rule_entries = manifest.get("rules")
        if not isinstance(rule_entries, list) or not rule_entries:
            raise ValueError("'rules' must be a non-empty list")
        rules = []
        for entry in rule_entries:
            if not isinstance(entry, dict):
                raise ValueError("each rule must be a JSON object")
            spec = {
                key: entry[key]
                for key in ("kind", "job", "metric", "method", "args",
                            "op", "value")
                if key in entry
            }
            spec.setdefault("kind", "threshold")
            rules.append(
                AlertRule(
                    entry.get("name"),
                    spec,
                    for_s=entry.get("for", 0.0),
                    rearm_s=entry.get("rearm", 0.0),
                    sinks=entry.get("sinks"),
                    labels=entry.get("labels"),
                )
            )
        return cls(rules, sinks=sinks, registry=registry, clock=clock)

    # -- evaluation --------------------------------------------------------

    def step(
        self,
        values: Dict[str, Optional[float]],
        now: Optional[float] = None,
        trace_id: Optional[str] = None,
    ) -> List[dict]:
        """Advance every rule with its freshly evaluated value.

        ``values`` maps rule name to the raw predicate value (``None``
        when evaluation failed — the rule holds its state and the miss
        is counted).  Emitted transitions are appended to the event
        ring, stamped with ``trace_id`` (the ingest round that flipped
        them), and dispatched to the rule's sinks.  Returns the events.
        """
        now = self._clock() if now is None else now
        events = []
        for name, rule in self.rules.items():
            if name not in values:
                continue
            value = values[name]
            if value is None:
                self.m_eval_errors.labels(name).inc()
                continue
            self.m_evals.inc()
            transition = rule.step(value, now)
            if transition is None:
                continue
            event = {
                "rule": name,
                "state": transition,
                "value": rule.last_value,
                "op": rule.spec["op"],
                "threshold": rule.spec["value"],
                "kind": rule.spec["kind"],
                "source": rule.spec.get("job") or rule.spec.get("metric"),
                "for": rule.for_s,
                "labels": dict(rule.labels),
                "at": time.time(),
                "trace_id": trace_id,
            }
            self.m_transitions.labels(name, transition).inc()
            self._events.append(event)
            events.append(event)
            for sink_name in rule.sinks:
                self._enqueue(sink_name, event)
        return events

    def pending_deadline(self) -> Optional[float]:
        """Earliest instant a pending rule would fire if its predicate
        holds (the gateway schedules a re-evaluation for it); ``None``
        when nothing is pending."""
        deadlines = [
            d
            for d in (
                rule.pending_deadline() for rule in self.rules.values()
            )
            if d is not None
        ]
        return min(deadlines) if deadlines else None

    # -- delivery ----------------------------------------------------------

    def _enqueue(self, sink_name: str, event: dict) -> None:
        try:
            self._queue.put_nowait((sink_name, event))
        except queue.Full:
            self.m_dropped.inc()

    def _deliver(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                return
            sink_name, event = item
            self.dispatch_now(sink_name, event)

    def dispatch_now(self, sink_name: str, event: dict) -> bool:
        """Deliver one event synchronously (the worker's inner step;
        also the bench/test hook).  Returns delivery success."""
        sink = self.sinks.get(sink_name)
        if sink is None:
            return False
        started = time.perf_counter()
        try:
            sink.emit(event)
            return True
        except Exception as exc:
            self.m_sink_failures.labels(sink_name).inc()
            self.m_dead_letters.labels(sink_name).inc()
            self._dead.append(
                {"sink": sink_name, "error": str(exc), "event": event}
            )
            return False
        finally:
            self.m_sink_seconds.labels(sink_name).observe(
                time.perf_counter() - started
            )

    def flush(self, timeout: float = 5.0) -> bool:
        """Wait for the delivery queue to drain (tests, shutdown)."""
        deadline = time.monotonic() + timeout
        while not self._queue.empty():
            if time.monotonic() >= deadline:
                return False
            time.sleep(0.01)
        return True

    # -- introspection -----------------------------------------------------

    def events(self, limit: Optional[int] = None) -> List[dict]:
        """Recent transition events, oldest first."""
        events = [dict(e) for e in self._events]
        if limit is not None and limit >= 0:
            events = events[len(events) - limit:] if limit else []
        return events

    def dead_letters(self) -> List[dict]:
        """Events no sink could deliver, oldest first."""
        return [dict(e) for e in self._dead]

    def describe(self) -> dict:
        """The ``GET /v1/alerts`` payload."""
        return {
            "rules": [rule.describe() for rule in self.rules.values()],
            "sinks": {
                name: type(sink).kind for name, sink in self.sinks.items()
            },
            "events": self.events(),
            "dead_letters": self.dead_letters(),
        }

    def close(self, timeout: float = 5.0) -> None:
        """Drain and stop the delivery thread; idempotent."""
        if self._closed:
            return
        self._closed = True
        if self._worker is not None:
            self._queue.put(None)
            self._worker.join(timeout=timeout)
            self._worker = None
