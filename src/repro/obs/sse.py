"""Server-Sent-Events framing and standing-query bookkeeping.

The wire half is :func:`render_sse_event` — the ``event:`` / ``id:`` /
``retry:`` / ``data:`` line protocol from the WHATWG EventSource spec,
with multi-line payloads split across ``data:`` lines and a blank-line
terminator.

The bookkeeping half is :class:`SubscriptionHub`: each
:class:`Subscription` is one standing query (registered via
``POST /v1/subscribe``), holding

* the client's query spec, opaque to this module — evaluation happens
  in the gateway, which owns the service lock;
* the last delivered value, so the evaluator can emit only deltas;
* a replay ring of recent events keyed by a monotonically increasing
  event id, serving ``Last-Event-ID`` reconnects without re-evaluating;
* a set of live :class:`asyncio.Queue` listeners (one per open
  ``GET /v1/stream/<id>`` connection) that :meth:`Subscription.publish`
  fans out to.

This module never touches sockets; the gateway drains listener queues
into hijacked HTTP connections.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import uuid
from collections import deque
from typing import Dict, List, Optional, Tuple

__all__ = ["Subscription", "SubscriptionHub", "render_sse_event"]

#: sentinel for "never evaluated yet" (None is a legitimate value)
_UNSET = object()


def render_sse_event(
    data: str,
    event: Optional[str] = None,
    id: Optional[str] = None,
    retry: Optional[int] = None,
) -> str:
    """One SSE frame, blank-line terminated.

    ``data`` may span lines; each becomes its own ``data:`` line so the
    client reassembles the exact payload.  Field values must not
    contain newlines (ids and event names are caller-controlled here).
    """
    lines = []
    if retry is not None:
        lines.append(f"retry: {int(retry)}")
    if event is not None:
        _reject_newlines(event, "event")
        lines.append(f"event: {event}")
    if id is not None:
        _reject_newlines(str(id), "id")
        lines.append(f"id: {id}")
    for chunk in data.split("\n"):
        lines.append(f"data: {chunk}")
    return "\n".join(lines) + "\n\n"


def _reject_newlines(value: str, field: str) -> None:
    if "\n" in value or "\r" in value:
        raise ValueError(f"SSE {field} field must be a single line")


class Subscription:
    """One standing query and its delivery state."""

    def __init__(self, sid: str, spec: dict, replay: int = 64) -> None:
        self.sid = sid
        self.spec = spec
        self.last_value = _UNSET
        self.events_delivered = 0
        self._ids = itertools.count(1)
        #: (event_id, event_name, json_payload), oldest first
        self._replay: deque = deque(maxlen=replay)
        self._listeners: List[asyncio.Queue] = []

    @property
    def never_evaluated(self) -> bool:
        return self.last_value is _UNSET

    def publish(self, payload: dict, event: str = "delta") -> int:
        """Record one event and wake every live listener.

        Returns the event id (the ``id:`` field, used by clients as
        ``Last-Event-ID``).
        """
        event_id = next(self._ids)
        body = json.dumps(payload, sort_keys=True)
        frame = (event_id, event, body)
        self._replay.append(frame)
        self.events_delivered += 1
        for queue in list(self._listeners):
            queue.put_nowait(frame)
        return event_id

    def replay_after(self, last_id: int) -> List[Tuple[int, str, str]]:
        """Buffered events with id > ``last_id``, oldest first."""
        return [frame for frame in self._replay if frame[0] > last_id]

    def attach_listener(self) -> asyncio.Queue:
        queue: asyncio.Queue = asyncio.Queue()
        self._listeners.append(queue)
        return queue

    def detach_listener(self, queue: asyncio.Queue) -> None:
        try:
            self._listeners.remove(queue)
        except ValueError:
            pass

    @property
    def listeners(self) -> int:
        return len(self._listeners)

    def describe(self) -> dict:
        return {
            "id": self.sid,
            "spec": self.spec,
            "listeners": self.listeners,
            "events_delivered": self.events_delivered,
        }


class SubscriptionHub:
    """The gateway's set of standing queries, capped."""

    def __init__(self, max_subscriptions: int = 64) -> None:
        self.max_subscriptions = max_subscriptions
        self._subs: Dict[str, Subscription] = {}

    def subscribe(self, spec: dict) -> Subscription:
        if len(self._subs) >= self.max_subscriptions:
            raise OverflowError(
                f"subscription limit ({self.max_subscriptions}) reached"
            )
        sid = uuid.uuid4().hex[:12]
        sub = Subscription(sid, spec)
        self._subs[sid] = sub
        return sub

    def unsubscribe(self, sid: str) -> bool:
        return self._subs.pop(sid, None) is not None

    def get(self, sid: str) -> Optional[Subscription]:
        return self._subs.get(sid)

    def all(self) -> List[Subscription]:
        return list(self._subs.values())

    def __len__(self) -> int:
        return len(self._subs)
