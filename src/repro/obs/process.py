"""Process-level self-stats: RSS, open fds, uptime, build info.

Two consumers share this module.  The gateway (and any ``repro hub``
host) registers ``repro_build_info`` and the ``repro_process_*`` gauge
family into its :class:`~repro.obs.metrics.MetricsRegistry` so every
scrape carries the host process's footprint; and the ``hub_stats``
worker command ships the same :func:`process_stats` dict over the exec
plane so the gateway's fleet monitor can see a *remote* hub's RSS and
uptime without that hub exposing an HTTP port.

Everything reads ``/proc`` directly (with a ``resource.getrusage``
fallback for the RSS figure) — the observability core stays free of
third-party dependencies.
"""

from __future__ import annotations

import os
import platform
import sys
import time

__all__ = ["process_stats", "register_process_metrics"]

#: import time stands in for process start; close enough for uptime
#: (the interpreter imports this module within milliseconds of exec on
#: every entry point that reports it).
_STARTED_MONOTONIC = time.monotonic()
_STARTED_WALL = time.time()


def _rss_bytes() -> int:
    try:
        with open("/proc/self/status", "rb") as f:
            for line in f:
                if line.startswith(b"VmRSS:"):
                    return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):
        pass
    try:
        import resource

        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        # ru_maxrss is kilobytes on Linux, bytes on macOS
        return peak if sys.platform == "darwin" else peak * 1024
    except Exception:
        return 0


def _open_fds() -> int:
    try:
        return len(os.listdir("/proc/self/fd"))
    except OSError:
        return 0


def process_stats() -> dict:
    """A flat snapshot of this process: identity + footprint."""
    return {
        "pid": os.getpid(),
        "rss_bytes": _rss_bytes(),
        "open_fds": _open_fds(),
        "uptime_s": time.monotonic() - _STARTED_MONOTONIC,
        "started_at": _STARTED_WALL,
    }


def _build_version() -> str:
    # deferred so the dependency-free obs package never imports the
    # repro root at module-import time (the root imports obs)
    try:
        import repro

        return str(getattr(repro, "__version__", "0"))
    except Exception:
        return "0"


def register_process_metrics(registry) -> None:
    """Register ``repro_build_info`` + ``repro_process_*`` gauges.

    ``repro_build_info`` follows the Prometheus build-info idiom: a
    constant ``1`` carrying the interesting facts as labels.  The
    process gauges are function-backed, so each scrape reads ``/proc``
    fresh; nothing is sampled between scrapes.  Idempotent — the
    registry's get-or-create semantics make a second call a no-op.
    """
    registry.gauge(
        "repro_build_info",
        "Build/runtime identity (constant 1; facts ride the labels).",
        ["version", "python"],
    ).labels(_build_version(), platform.python_version()).set(1.0)
    registry.gauge(
        "repro_process_rss_bytes",
        "Resident set size of this process.",
    ).set_function(_rss_bytes)
    registry.gauge(
        "repro_process_open_fds",
        "Open file descriptors held by this process.",
    ).set_function(_open_fds)
    registry.gauge(
        "repro_process_uptime_seconds",
        "Seconds since this process started.",
    ).set_function(lambda: time.monotonic() - _STARTED_MONOTONIC)
