"""Metric primitives and the process-local registry.

Three instrument kinds, modelled on the Prometheus data model but with
zero dependencies and a deliberately small surface:

* :class:`Counter` — a monotonically increasing total.
* :class:`Gauge` — a value that goes up and down; may be backed by a
  callback (:meth:`Gauge.set_function`) so scrapes read live state
  (queue depth, pending fences) without the owner pushing updates.
* :class:`Histogram` — fixed upper-bound buckets plus ``_sum`` and
  ``_count``; bucket counts are kept per-bucket internally and
  cumulated only at snapshot time, so ``observe`` is one bisect and two
  adds.

Instruments are grouped into :class:`MetricFamily` objects (one name,
one label schema, many children) inside a :class:`MetricsRegistry`.
Two properties keep the hot path honest:

* **No hot-path registry lookups.** Layers either own their instrument
  objects directly (``backend.latency.observe(dt)``) or keep the plain
  counters they always had; the registry bridges the latter at scrape
  time through *collectors* (:meth:`MetricsRegistry.register_collector`)
  and *attached* children (:meth:`MetricFamily.attach`).
* **A label-cardinality guard.** Families cap their child count
  (default 256); past the cap, new label sets collapse into a single
  ``"_overflow"`` child instead of growing without bound, and the
  registry counts the collapses in ``repro_obs_label_overflow_total``.

Instrument mutation is lock-free: under CPython's GIL a lost update on
a float add is the worst case, which is acceptable for telemetry and
keeps ``inc``/``observe`` cheap enough for per-event call sites.
"""

from __future__ import annotations

import bisect
import re
import threading
from typing import Callable, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "LATENCY_BUCKETS",
    "SIZE_BUCKETS",
]

#: default child cap per family before the cardinality guard engages
DEFAULT_MAX_CHILDREN = 256

#: the label value that over-cap label sets collapse into
OVERFLOW_LABEL = "_overflow"

#: general-purpose duration buckets, seconds (micro to tens of seconds)
DEFAULT_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: tighter buckets for sub-millisecond dispatch / request latencies
LATENCY_BUCKETS = (
    0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
    0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
)

#: buckets for counts (batch sizes, candidate-union sizes)
SIZE_BUCKETS = (
    1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
    1000.0, 2500.0, 5000.0, 10000.0, 25000.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("value",)

    kind = "counter"

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def sample(self) -> float:
        return self.value


class Gauge:
    """A value that goes up and down, or reads a live callback."""

    __slots__ = ("value", "_fn")

    kind = "gauge"

    def __init__(self) -> None:
        self.value = 0.0
        self._fn: Optional[Callable[[], float]] = None

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def set_function(self, fn: Callable[[], float]) -> None:
        """Read ``fn()`` at sample time instead of a stored value."""
        self._fn = fn

    def sample(self) -> float:
        if self._fn is not None:
            try:
                return float(self._fn())
            except Exception:
                return self.value
        return self.value


class Histogram:
    """Fixed-bucket histogram with ``_sum`` and ``_count``.

    ``bounds`` are *upper* bounds, strictly increasing; an implicit
    ``+Inf`` bucket always exists.  Internal per-bucket counts are
    non-cumulative; :meth:`sample` cumulates them, matching Prometheus
    exposition semantics.
    """

    __slots__ = ("bounds", "counts", "sum", "count")

    kind = "histogram"

    def __init__(self, bounds: Sequence[float] = DEFAULT_BUCKETS) -> None:
        bounds = tuple(float(b) for b in bounds)
        if list(bounds) != sorted(set(bounds)):
            raise ValueError("histogram bounds must be strictly increasing")
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # last slot is +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def sample(self) -> dict:
        """Cumulative buckets plus sum/count, exposition-shaped."""
        cumulative = []
        running = 0
        for bound, count in zip(self.bounds, self.counts):
            running += count
            cumulative.append((bound, running))
        return {
            "buckets": cumulative,
            "sum": self.sum,
            "count": self.count,
        }


_INSTRUMENTS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """One metric name: a label schema and its children.

    ``labels(*values)`` is get-or-create; with no label names the
    family has exactly one anonymous child and the instrument methods
    (``inc``/``set``/``observe``/...) are available on the family
    itself for convenience.  :meth:`attach` adopts an instrument object
    owned elsewhere (e.g. a backend's latency histogram) so externally
    owned state shows up in scrapes without copying.
    """

    def __init__(
        self,
        name: str,
        help: str,
        kind: str,
        label_names: Sequence[str] = (),
        max_children: int = DEFAULT_MAX_CHILDREN,
        registry: Optional["MetricsRegistry"] = None,
        **instrument_kwargs,
    ) -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in label_names:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        if kind not in _INSTRUMENTS:
            raise ValueError(f"unknown metric kind {kind!r}")
        self.name = name
        self.help = help
        self.kind = kind
        self.label_names = tuple(label_names)
        self.max_children = max_children
        self._registry = registry
        self._instrument_kwargs = instrument_kwargs
        self._children: Dict[Tuple[str, ...], object] = {}
        self._lock = threading.Lock()
        if not self.label_names:
            self.labels()  # materialize the anonymous child eagerly

    def _make(self):
        return _INSTRUMENTS[self.kind](**self._instrument_kwargs)

    def labels(self, *values):
        """The child for this label-value tuple (get-or-create)."""
        key = tuple(str(v) for v in values)
        if len(key) != len(self.label_names):
            raise ValueError(
                f"{self.name} expects labels {self.label_names}, "
                f"got {len(key)} value(s)"
            )
        child = self._children.get(key)
        if child is not None:
            return child
        with self._lock:
            child = self._children.get(key)
            if child is not None:
                return child
            if len(self._children) >= self.max_children:
                key = (OVERFLOW_LABEL,) * len(self.label_names)
                child = self._children.get(key)
                if child is None:
                    child = self._make()
                    self._children[key] = child
                if self._registry is not None:
                    self._registry._overflowed(self.name)
                return child
            child = self._make()
            self._children[key] = child
            return child

    def attach(self, values: Sequence[str], instrument) -> None:
        """Adopt an externally owned instrument as a child.

        The instrument must match the family's kind (duck-typed: same
        ``kind`` attribute).  Re-attaching the same label set replaces
        the previous child — callers re-wire on restore/respawn.
        """
        if getattr(instrument, "kind", None) != self.kind:
            raise ValueError(
                f"cannot attach {type(instrument).__name__} to "
                f"{self.kind} family {self.name}"
            )
        key = tuple(str(v) for v in values)
        if len(key) != len(self.label_names):
            raise ValueError(
                f"{self.name} expects labels {self.label_names}"
            )
        with self._lock:
            self._children[key] = instrument

    def samples(self) -> List[Tuple[Tuple[str, ...], object]]:
        """(label_values, sampled value) per child, unsorted."""
        with self._lock:
            children = list(self._children.items())
        return [(key, child.sample()) for key, child in children]

    # -- no-label convenience ---------------------------------------------

    def _solo(self):
        if self.label_names:
            raise ValueError(
                f"{self.name} has labels {self.label_names}; call "
                f".labels(...) first"
            )
        return self._children[()]

    def inc(self, amount: float = 1.0) -> None:
        self._solo().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._solo().dec(amount)

    def set(self, value: float) -> None:
        self._solo().set(value)

    def set_function(self, fn: Callable[[], float]) -> None:
        self._solo().set_function(fn)

    def observe(self, value: float) -> None:
        self._solo().observe(value)


class MetricsRegistry:
    """A process-local set of metric families plus scrape-time bridges.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create and
    idempotent; re-declaring a name with a different kind or label
    schema raises.  *Collectors* are zero-argument callables run at the
    top of every :meth:`collect` — they pull externally owned plain
    stats (dict counters, transport byte counts) into families, so
    instrumented layers pay nothing between scrapes.
    """

    def __init__(self) -> None:
        self._families: Dict[str, MetricFamily] = {}
        self._collectors: List[Callable[[], None]] = []
        self._lock = threading.Lock()
        self._overflow = self.counter(
            "repro_obs_label_overflow_total",
            "Label sets collapsed by the cardinality guard.",
            ["family"],
        )

    def _family(
        self,
        name: str,
        help: str,
        kind: str,
        label_names: Sequence[str],
        **kwargs,
    ) -> MetricFamily:
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if family.kind != kind or family.label_names != tuple(
                    label_names
                ):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{family.kind}{family.label_names}"
                    )
                return family
            family = MetricFamily(
                name, help, kind, label_names, registry=self, **kwargs
            )
            self._families[name] = family
            return family

    def counter(
        self,
        name: str,
        help: str,
        label_names: Sequence[str] = (),
        max_children: int = DEFAULT_MAX_CHILDREN,
    ) -> MetricFamily:
        return self._family(
            name, help, "counter", label_names, max_children=max_children
        )

    def gauge(
        self,
        name: str,
        help: str,
        label_names: Sequence[str] = (),
        max_children: int = DEFAULT_MAX_CHILDREN,
    ) -> MetricFamily:
        return self._family(
            name, help, "gauge", label_names, max_children=max_children
        )

    def histogram(
        self,
        name: str,
        help: str,
        label_names: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        max_children: int = DEFAULT_MAX_CHILDREN,
    ) -> MetricFamily:
        return self._family(
            name, help, "histogram", label_names,
            max_children=max_children, bounds=buckets,
        )

    def register_collector(self, fn: Callable[[], None]) -> None:
        """Run ``fn()`` at the top of every collect/scrape."""
        self._collectors.append(fn)

    def _overflowed(self, family_name: str) -> None:
        self._overflow.labels(family_name).inc()

    def collect(self) -> List[MetricFamily]:
        """All families, collectors refreshed, sorted by name."""
        for fn in list(self._collectors):
            try:
                fn()
            except Exception:
                # a broken bridge must never take down the scrape
                pass
        with self._lock:
            families = sorted(self._families.values(), key=lambda f: f.name)
        return families

    def as_dict(self) -> dict:
        """JSON-ready exposition (the ``/v1/metrics`` payload)."""
        out = {}
        for family in self.collect():
            children = []
            for key, value in sorted(family.samples(), key=lambda kv: kv[0]):
                children.append(
                    {
                        "labels": dict(zip(family.label_names, key)),
                        "value": value,
                    }
                )
            out[family.name] = {
                "kind": family.kind,
                "help": family.help,
                "samples": children,
            }
        return out
