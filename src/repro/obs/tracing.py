"""Ring-buffered span recording with cross-process trace context.

A *span* is one timed region of the fan-out machinery — ``round`` (a
coalesced ingest round applying on the gateway's writer thread),
``dispatch`` (posting an ingest batch across shard backends), ``merge``
(a cross-shard query merge), ``fence`` (waiting out the relaxed
in-flight window), ``ingest`` (a hub applying its slice, possibly in
another process) — with a wall-clock start, a monotonic duration, and
free-form attributes (event counts, shard counts, relaxed flag).

Spans carry **trace identity**: every span has a ``span_id``, and when
a *trace context* is active (see :func:`trace_scope`) it also carries
the context's ``trace_id`` and the enclosing span's id as
``parent_id``.  The context lives in a thread-local, so synchronous
call chains — gateway writer thread → sharded facade → exec backend
submit — pick it up implicitly; crossing a thread, process or TCP
boundary is explicit: the sender captures :func:`current_trace` into
its envelope and the receiver re-enters it with :func:`trace_scope`.
That is how ``/v1/trace?trace_id=`` stitches one ingest round into a
single cross-process view.

:class:`SpanRecorder` keeps the most recent ``capacity`` spans in a
deque; recording is two clock reads and an append, cheap enough to
leave on permanently.  Spans whose body raised are kept — the most
interesting spans — marked with ``error=True`` and the exception type.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Iterator, List, Optional

__all__ = [
    "SpanRecorder",
    "current_trace",
    "filter_spans",
    "new_trace_id",
    "trace_scope",
]

#: thread-local carrier of the active trace context, a dict of
#: ``{"trace_id": str, "span_id": str | None}`` (``span_id`` is the
#: innermost open span — the parent of anything started below it)
_context = threading.local()

_id_lock = threading.Lock()
_id_counter = 0


def _fresh_id(nbytes: int) -> str:
    """A short unique hex id (urandom + a counter so ids never collide
    within a process even if the entropy pool repeats)."""
    global _id_counter
    with _id_lock:
        _id_counter += 1
        count = _id_counter
    return f"{int.from_bytes(os.urandom(nbytes), 'big'):0{nbytes * 2}x}" \
        f"{count & 0xFFFF:04x}"


def new_trace_id() -> str:
    """A fresh trace id (one per gateway ingest request)."""
    return _fresh_id(6)


def _new_span_id() -> str:
    return _fresh_id(4)


def current_trace() -> Optional[dict]:
    """The active trace context of this thread, or ``None``.

    The returned dict — ``{"trace_id", "span_id"}`` — is what a sender
    captures into a command envelope; the receiving side re-enters it
    with :func:`trace_scope` so remote spans parent correctly.
    """
    return getattr(_context, "trace", None)


@contextmanager
def trace_scope(trace: Optional[dict]) -> Iterator[Optional[dict]]:
    """Make ``trace`` the active context for the body of the ``with``.

    ``trace`` is ``{"trace_id": ..., "span_id": ...}`` (``span_id``
    optional — it becomes the parent of spans opened inside) or
    ``None``, which is a no-op so call sites can pass an envelope's
    trace field through unconditionally.
    """
    if trace is None or not trace.get("trace_id"):
        yield None
        return
    previous = getattr(_context, "trace", None)
    _context.trace = {
        "trace_id": trace["trace_id"],
        "span_id": trace.get("span_id"),
    }
    try:
        yield _context.trace
    finally:
        _context.trace = previous


def filter_spans(
    spans: List[dict],
    name: Optional[str] = None,
    trace_id: Optional[str] = None,
    limit: Optional[int] = None,
) -> List[dict]:
    """Filter a span dump (``/v1/trace`` query params).

    ``name`` and ``trace_id`` match exactly; ``limit`` keeps the
    *newest* N of what survives (dumps are oldest-first).
    """
    if name is not None:
        spans = [s for s in spans if s.get("name") == name]
    if trace_id is not None:
        spans = [s for s in spans if s.get("trace_id") == trace_id]
    if limit is not None and limit >= 0:
        spans = spans[len(spans) - limit:] if limit else []
    return spans


class SpanRecorder:
    """Bounded recorder of completed spans, oldest evicted first."""

    def __init__(self, capacity: int = 512) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._spans: deque = deque(maxlen=capacity)
        self._next_id = 0

    @contextmanager
    def span(self, name: str, **attrs) -> Iterator[dict]:
        """Record one timed region.

        Yields the attribute dict so the body may add outcomes
        (e.g. result sizes) before the span closes.  The span is
        recorded even when the body raises — ``error=True`` plus the
        exception type land in its attrs.  While the body runs, this
        span is the thread's innermost open span, so nested spans (and
        envelopes captured by :func:`current_trace`) parent to it.
        """
        started_wall = time.time()
        started = time.perf_counter()
        record = dict(attrs)
        trace = getattr(_context, "trace", None)
        span_id = _new_span_id()
        if trace is not None:
            trace_id = trace["trace_id"]
            parent_id = trace.get("span_id")
            _context.trace = {"trace_id": trace_id, "span_id": span_id}
        else:
            trace_id = None
            parent_id = None
        try:
            yield record
        except BaseException as exc:
            record["error"] = True
            record["error_type"] = type(exc).__name__
            record["error_message"] = str(exc)
            raise
        finally:
            if trace is not None:
                _context.trace = trace
            self._spans.append(
                {
                    "id": self._next_id,
                    "name": name,
                    "trace_id": trace_id,
                    "span_id": span_id,
                    "parent_id": parent_id,
                    "start": started_wall,
                    "duration_s": time.perf_counter() - started,
                    "attrs": record,
                }
            )
            self._next_id += 1

    def record(self, span: dict) -> None:
        """Adopt one finished span (collected from another process)."""
        self._spans.append(dict(span))

    def dump(self) -> List[dict]:
        """All buffered spans, oldest first, JSON-ready copies."""
        return [dict(span) for span in self._spans]

    def drain(self) -> List[dict]:
        """Dump and clear in one step (the ``collect_spans`` command)."""
        spans = self.dump()
        self._spans.clear()
        return spans

    def clear(self) -> None:
        self._spans.clear()

    def __len__(self) -> int:
        return len(self._spans)
