"""Ring-buffered span recording for the dispatch plane.

A *span* is one timed region of the fan-out machinery — ``dispatch``
(posting an ingest batch across shard backends), ``merge`` (a
cross-shard query merge), ``fence`` (waiting out the relaxed in-flight
window) — with a wall-clock start, a monotonic duration, and free-form
attributes (event counts, shard counts, relaxed flag).

:class:`SpanRecorder` keeps the most recent ``capacity`` spans in a
deque; recording is two clock reads and an append, cheap enough to
leave on permanently.  ``GET /v1/trace`` dumps the buffer as JSON,
newest last.
"""

from __future__ import annotations

import time
from collections import deque
from contextlib import contextmanager
from typing import Iterator, List

__all__ = ["SpanRecorder"]


class SpanRecorder:
    """Bounded recorder of completed spans, oldest evicted first."""

    def __init__(self, capacity: int = 512) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._spans: deque = deque(maxlen=capacity)
        self._next_id = 0

    @contextmanager
    def span(self, name: str, **attrs) -> Iterator[dict]:
        """Record one timed region.

        Yields the attribute dict so the body may add outcomes
        (e.g. result sizes) before the span closes.  The span is
        recorded even when the body raises, with ``error`` set.
        """
        started_wall = time.time()
        started = time.perf_counter()
        record = dict(attrs)
        try:
            yield record
        except BaseException as exc:
            record["error"] = f"{type(exc).__name__}: {exc}"
            raise
        finally:
            self._spans.append(
                {
                    "id": self._next_id,
                    "name": name,
                    "start": started_wall,
                    "duration_s": time.perf_counter() - started,
                    "attrs": record,
                }
            )
            self._next_id += 1

    def dump(self) -> List[dict]:
        """All buffered spans, oldest first, JSON-ready copies."""
        return [dict(span) for span in self._spans]

    def clear(self) -> None:
        self._spans.clear()

    def __len__(self) -> int:
        return len(self._spans)
