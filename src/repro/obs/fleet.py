"""Fleet telemetry: hub liveness/capacity aggregation for the gateway.

The exec plane gives the gateway a command pipe to every shard hub;
this module supervises those pipes.  A :class:`FleetMonitor` polls each
hub's ``hub_stats`` command on an interval, steps a per-hub liveness
state machine, and keeps the capacity picture (space used vs. budget,
overcommit ratio — the MAAS pods-API resource surface) that
``GET /v1/fleet`` and the ``repro_fleet_*`` Prometheus families serve.
It is the observe-only half of the ROADMAP's self-healing control
plane: the next layer up reads this surface to *place* and *heal*;
nothing here mutates the fleet.

Liveness state machine (per hub)::

                 ok, fast                    ok x recovery_polls
    unknown ───────────────▶ up ◀─────────────────────────────┐
       │                      │                               │
       │ fail x down_failures │ slow reply or failed poll     │
       │                      ▼                               │
       │                  degraded ──────────────────────▶ (up)
       │                      │ fail x down_failures
       ▼                      ▼
      down ◀──────────────────┘
        │  ok x recovery_polls: "recovered" (straight to up)
        └─ further failures: silent (one "down" event per episode)

Hysteresis is deliberate on both edges: a hub must *fail*
``down_failures`` consecutive polls to be declared down, and must
*answer* ``recovery_polls`` consecutive polls (fast) to be declared up
again — a flapping hub emits one ``down`` and one ``recovered`` per
episode, never a stream.  A hub that answers but slower than
``stale_after`` is stale: ``degraded``, not ``down``.

The obs package stays dependency-free, so the monitor never imports
the exec plane.  Callers hand it :class:`FleetTarget`\\ s — a name plus
a zero-argument ``poll`` callable (the gateway wires each one to
``backend.dispatch_run("hub_stats")`` under the ingest lock, so polls
never interleave with dispatch on the FIFO command pipes).

Locking: the monitor's own lock guards state and is *never* held while
a poll callable runs — poll callables take the ingest lock, and the
registry collector (which runs under the ingest lock at scrape time)
takes the monitor lock, so holding both in the opposite order would
deadlock the scrape path.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Iterable, Optional, Sequence

from collections import deque

from .metrics import LATENCY_BUCKETS, Histogram
from .tracing import SpanRecorder, new_trace_id, trace_scope

__all__ = ["FleetMonitor", "FleetTarget", "FLEET_RULE_METRICS"]

#: quantities a ``fleet``-kind alert rule may reference
FLEET_RULE_METRICS = (
    "hubs_up",
    "hubs_degraded",
    "hubs_down",
    "hubs_unknown",
    "capacity_ratio",
    "heartbeat_age_seconds",
)

#: liveness states, ordered by health for the numeric state gauge
STATES = ("down", "degraded", "up", "unknown")
_STATE_CODE = {"down": 0.0, "degraded": 1.0, "up": 2.0, "unknown": -1.0}

_EVENTS_RING = 256


class FleetTarget:
    """One pollable hub: a name, an address label, and a poll callable.

    ``poll()`` must return the ``hub_stats`` dict (or raise on a dead /
    unreachable hub).  ``pending`` optionally reports the hub's
    uncollected-command depth (the gateway wires it to the backend's
    ``pending`` property).
    """

    __slots__ = ("name", "address", "poll", "pending")

    def __init__(
        self,
        name: str,
        poll: Callable[[], dict],
        address: Optional[str] = None,
        pending: Optional[Callable[[], int]] = None,
    ) -> None:
        self.name = str(name)
        self.address = address
        self.poll = poll
        self.pending = pending


class _HubState:
    """Mutable per-hub bookkeeping the monitor lock guards."""

    __slots__ = (
        "target", "state", "state_since", "heartbeat", "last_ok",
        "last_seen_wall", "consecutive_failures", "consecutive_ok",
        "polls", "failures", "rtt", "last_rtt_s", "stats", "last_error",
        "last_trace_id",
    )

    def __init__(self, target: FleetTarget) -> None:
        self.target = target
        self.state = "unknown"
        self.state_since = None
        self.heartbeat = 0
        self.last_ok = None       # monotonic clock of last successful poll
        self.last_seen_wall = None
        self.consecutive_failures = 0
        self.consecutive_ok = 0
        self.polls = 0
        self.failures = 0
        self.rtt = Histogram(LATENCY_BUCKETS)
        self.last_rtt_s = None
        self.stats = None         # last hub_stats payload
        self.last_error = None
        self.last_trace_id = None


class FleetMonitor:
    """Background poller stepping every hub's liveness state machine."""

    def __init__(
        self,
        targets: Iterable[FleetTarget],
        interval: float = 2.0,
        stale_after: Optional[float] = None,
        down_failures: int = 2,
        recovery_polls: int = 2,
        clock: Callable[[], float] = time.monotonic,
        spans: Optional[SpanRecorder] = None,
        on_event: Optional[Callable[[dict], None]] = None,
        on_round: Optional[Callable[[], None]] = None,
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        if down_failures < 1 or recovery_polls < 1:
            raise ValueError("hysteresis thresholds must be >= 1")
        self.interval = float(interval)
        #: a reply slower than this is a *stale* heartbeat (degraded)
        self.stale_after = (
            float(stale_after) if stale_after is not None else self.interval
        )
        self.down_failures = int(down_failures)
        self.recovery_polls = int(recovery_polls)
        self._clock = clock
        self.spans = spans if spans is not None else SpanRecorder()
        self._on_event = on_event
        self._on_round = on_round
        self._hubs = [_HubState(t) for t in targets]
        self._lock = threading.Lock()
        self._events: deque = deque(maxlen=_EVENTS_RING)
        self._event_counts: dict = {}
        self._rounds = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Spawn the daemon poll loop (idempotent)."""
        if self._thread is not None and self._thread.is_alive():
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="fleet-monitor", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: float = 5.0) -> None:
        """Stop the poll loop; joins up to ``timeout`` seconds."""
        self._stop.set()
        thread = self._thread
        if thread is not None and thread.is_alive():
            thread.join(timeout)
        self._thread = None

    def _run(self) -> None:
        while not self._stop.is_set():
            try:
                self.poll_round()
            except Exception:  # pragma: no cover - belt and braces
                pass
            self._stop.wait(self.interval)

    # -- polling + state machine -------------------------------------------

    def poll_round(self) -> None:
        """Poll every hub once and step each state machine.

        Synchronous and reentrant-safe; the background thread calls it
        on the interval, tests call it directly with a fake clock.
        """
        for hub in self._hubs:
            self._poll_hub(hub)
        with self._lock:
            self._rounds += 1
        if self._on_round is not None:
            try:
                self._on_round()
            except Exception:  # pragma: no cover
                pass

    def _poll_hub(self, hub: _HubState) -> None:
        trace_id = new_trace_id()
        started = self._clock()
        result = None
        error = None
        try:
            with trace_scope({"trace_id": trace_id}):
                with self.spans.span("fleet_poll", hub=hub.target.name):
                    result = hub.target.poll()
        except Exception as exc:
            error = f"{type(exc).__name__}: {exc}"
        rtt = self._clock() - started
        now = self._clock()
        with self._lock:
            hub.polls += 1
            hub.last_trace_id = trace_id
            if error is None:
                hub.rtt.observe(rtt)
                hub.last_rtt_s = rtt
                hub.last_ok = now
                hub.last_seen_wall = time.time()
                hub.stats = result if isinstance(result, dict) else None
                if hub.stats is not None:
                    hub.heartbeat = int(hub.stats.get("heartbeat", 0))
                hub.consecutive_failures = 0
                if rtt <= self.stale_after:
                    hub.consecutive_ok += 1
                    self._step(hub, "ok", trace_id, None)
                else:
                    hub.consecutive_ok = 0
                    self._step(
                        hub, "stale", trace_id,
                        f"heartbeat rtt {rtt:.3f}s > "
                        f"stale_after {self.stale_after:g}s",
                    )
            else:
                hub.failures += 1
                hub.consecutive_failures += 1
                hub.consecutive_ok = 0
                hub.last_error = error
                self._step(hub, "fail", trace_id, error)

    def _step(self, hub: _HubState, signal: str, trace_id, detail) -> None:
        """One transition of the up/degraded/down machine (lock held)."""
        state = hub.state
        if signal == "fail":
            if hub.consecutive_failures >= self.down_failures:
                if state != "down":
                    self._transition(hub, "down", trace_id, detail)
            elif state in ("up", "unknown"):
                self._transition(hub, "degraded", trace_id, detail)
            return
        if state == "unknown":
            # first successful heartbeat: the hub joined the fleet
            self._transition(
                hub,
                "up" if signal == "ok" else "degraded",
                trace_id,
                detail,
                event="joined",
            )
            return
        if signal == "stale":
            if state == "up":
                self._transition(hub, "degraded", trace_id, detail)
            return
        # signal == "ok"
        if state in ("degraded", "down"):
            if hub.consecutive_ok >= self.recovery_polls:
                self._transition(
                    hub, "up", trace_id, detail, event="recovered"
                )

    def _transition(
        self, hub: _HubState, state: str, trace_id, detail, event=None
    ) -> None:
        previous = hub.state
        hub.state = state
        hub.state_since = self._clock()
        record = {
            "at": time.time(),
            "hub": hub.target.name,
            "event": event or state,
            "from": previous,
            "state": state,
            "heartbeat": hub.heartbeat,
            "trace_id": trace_id,
            "detail": detail,
        }
        self._events.append(record)
        name = record["event"]
        self._event_counts[name] = self._event_counts.get(name, 0) + 1
        if self._on_event is not None:
            try:
                self._on_event(dict(record))
            except Exception:  # pragma: no cover
                pass

    # -- read surfaces -----------------------------------------------------

    def snapshot(self) -> dict:
        """The ``GET /v1/fleet`` view: per-hub state + fleet capacity."""
        now = self._clock()
        with self._lock:
            hubs = [self._hub_view(hub, now) for hub in self._hubs]
            rounds = self._rounds
            events_total = sum(self._event_counts.values())
        states = {name: 0 for name in STATES}
        used_total = 0
        budget_total = 0
        budgeted = False
        for view in hubs:
            states[view["state"]] += 1
            capacity = view.get("capacity") or {}
            used_total += capacity.get("used_words") or 0
            if capacity.get("budget_words") is not None:
                budgeted = True
                budget_total += capacity["budget_words"]
        return {
            "interval_s": self.interval,
            "stale_after_s": self.stale_after,
            "down_failures": self.down_failures,
            "recovery_polls": self.recovery_polls,
            "rounds": rounds,
            "hubs": hubs,
            "states": states,
            "capacity": {
                "used_words": used_total,
                "budget_words": budget_total if budgeted else None,
                "ratio": (
                    used_total / budget_total
                    if budgeted and budget_total
                    else None
                ),
            },
            "events_total": events_total,
        }

    def _hub_view(self, hub: _HubState, now: float) -> dict:
        stats = hub.stats or {}
        process = stats.get("process") or {}
        pending = None
        if hub.target.pending is not None:
            try:
                pending = hub.target.pending()
            except Exception:
                pending = None
        return {
            "hub": hub.target.name,
            "address": hub.target.address,
            "state": hub.state,
            "state_age_s": (
                now - hub.state_since if hub.state_since is not None else None
            ),
            "heartbeat": hub.heartbeat,
            "last_seen_s": (
                now - hub.last_ok if hub.last_ok is not None else None
            ),
            "rtt_ms": {
                "last": (
                    hub.last_rtt_s * 1e3
                    if hub.last_rtt_s is not None else None
                ),
                "mean": (
                    hub.rtt.sum / hub.rtt.count * 1e3
                    if hub.rtt.count else None
                ),
                "count": hub.rtt.count,
            },
            "polls": hub.polls,
            "failures": hub.failures,
            "pending": pending,
            "dispatch_mode": stats.get("dispatch_mode", "lockstep"),
            "elements": stats.get("elements"),
            "rounds": stats.get("rounds"),
            "jobs": stats.get("jobs"),
            "capacity": stats.get("capacity"),
            "process": {
                "rss_bytes": process.get("rss_bytes"),
                "open_fds": process.get("open_fds"),
                "uptime_s": process.get("uptime_s"),
                "pid": process.get("pid"),
            } if process else None,
            "error": hub.last_error,
        }

    def events(self, limit: Optional[int] = None) -> list:
        """Newest-last fleet events (joined/degraded/down/recovered)."""
        with self._lock:
            records = list(self._events)
        if limit is not None:
            records = records[-limit:] if limit > 0 else []
        return [dict(r) for r in records]

    def rule_value(self, metric: str) -> float:
        """The raw value a ``fleet``-kind alert rule compares against."""
        if metric not in FLEET_RULE_METRICS:
            raise ValueError(
                f"unknown fleet metric {metric!r}; "
                f"expected one of {', '.join(FLEET_RULE_METRICS)}"
            )
        now = self._clock()
        with self._lock:
            if metric.startswith("hubs_"):
                state = metric[len("hubs_"):]
                return float(
                    sum(1 for h in self._hubs if h.state == state)
                )
            if metric == "capacity_ratio":
                best = 0.0
                for hub in self._hubs:
                    capacity = (hub.stats or {}).get("capacity") or {}
                    ratio = capacity.get("ratio")
                    if ratio is not None:
                        best = max(best, float(ratio))
                return best
            # heartbeat_age_seconds: the oldest hub's silence; a hub
            # never heard from counts its age since monitoring began
            worst = 0.0
            for hub in self._hubs:
                if hub.last_ok is not None:
                    worst = max(worst, now - hub.last_ok)
                elif hub.polls:
                    worst = max(worst, hub.polls * self.interval)
            return worst

    # -- registry bridge ---------------------------------------------------

    def register_metrics(self, registry) -> None:
        """Declare the ``repro_fleet_*`` families; values land at scrape.

        RTT histograms are the monitor's own instruments, attached; the
        rest are mirror-gauges/counters a collector refreshes from the
        monitor's state, so the poll path never touches the registry.
        """
        fam = registry.histogram(
            "repro_fleet_heartbeat_seconds",
            "hub_stats heartbeat round-trip latency per hub.",
            ["hub"],
            buckets=LATENCY_BUCKETS,
        )
        for hub in self._hubs:
            fam.attach((hub.target.name,), hub.rtt)
        self._m_polls = registry.counter(
            "repro_fleet_heartbeats_total",
            "Heartbeat polls per hub by outcome.",
            ["hub", "outcome"],
        )
        self._m_state = registry.gauge(
            "repro_fleet_hub_state",
            "Liveness state per hub (2=up, 1=degraded, 0=down, "
            "-1=unknown).",
            ["hub"],
        )
        self._m_states = registry.gauge(
            "repro_fleet_hubs",
            "Hubs currently in each liveness state.",
            ["state"],
        )
        self._m_last_seen = registry.gauge(
            "repro_fleet_last_seen_seconds",
            "Seconds since each hub's last successful heartbeat.",
            ["hub"],
        )
        self._m_heartbeat = registry.gauge(
            "repro_fleet_heartbeat_sequence",
            "Monotonic heartbeat sequence reported by each hub "
            "(a restart shows as a reset).",
            ["hub"],
        )
        self._m_used = registry.gauge(
            "repro_fleet_space_used_words",
            "Max per-site sketch words in use, per hub.",
            ["hub"],
        )
        self._m_budget = registry.gauge(
            "repro_fleet_space_budget_words",
            "Configured space budget words, per hub (absent budgets "
            "export 0).",
            ["hub"],
        )
        self._m_ratio = registry.gauge(
            "repro_fleet_capacity_ratio",
            "used/budget space fraction per hub (overcommit ratio).",
            ["hub"],
        )
        self._m_elements = registry.counter(
            "repro_fleet_elements_total",
            "Stream elements applied, per hub.",
            ["hub"],
        )
        self._m_pending = registry.gauge(
            "repro_fleet_pending_commands",
            "Commands posted but not collected, per hub.",
            ["hub"],
        )
        self._m_rss = registry.gauge(
            "repro_fleet_hub_rss_bytes",
            "Resident set size of each hub process.",
            ["hub"],
        )
        self._m_uptime = registry.gauge(
            "repro_fleet_hub_uptime_seconds",
            "Uptime of each hub process.",
            ["hub"],
        )
        self._m_events = registry.counter(
            "repro_fleet_events_total",
            "Fleet liveness transitions by event kind.",
            ["event"],
        )
        registry.register_collector(self._collect)

    def _collect(self) -> None:
        now = self._clock()
        with self._lock:
            states = {name: 0 for name in STATES}
            for hub in self._hubs:
                name = hub.target.name
                states[hub.state] += 1
                self._m_polls.labels(name, "ok").value = float(
                    hub.polls - hub.failures
                )
                self._m_polls.labels(name, "error").value = float(
                    hub.failures
                )
                self._m_state.labels(name).value = _STATE_CODE[hub.state]
                if hub.last_ok is not None:
                    self._m_last_seen.labels(name).value = now - hub.last_ok
                self._m_heartbeat.labels(name).value = float(hub.heartbeat)
                stats = hub.stats or {}
                capacity = stats.get("capacity") or {}
                self._m_used.labels(name).value = float(
                    capacity.get("used_words") or 0
                )
                self._m_budget.labels(name).value = float(
                    capacity.get("budget_words") or 0
                )
                if capacity.get("ratio") is not None:
                    self._m_ratio.labels(name).value = float(
                        capacity["ratio"]
                    )
                self._m_elements.labels(name).value = float(
                    stats.get("elements") or 0
                )
                if hub.target.pending is not None:
                    try:
                        self._m_pending.labels(name).value = float(
                            hub.target.pending()
                        )
                    except Exception:
                        pass
                process = stats.get("process") or {}
                if process:
                    self._m_rss.labels(name).value = float(
                        process.get("rss_bytes") or 0
                    )
                    self._m_uptime.labels(name).value = float(
                        process.get("uptime_s") or 0
                    )
            for state, count in states.items():
                self._m_states.labels(state).value = float(count)
            for event, count in self._event_counts.items():
                self._m_events.labels(event).value = float(count)
