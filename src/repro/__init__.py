"""repro — Randomized distributed tracking of counts, frequencies, ranks.

A production-quality reproduction of Huang, Yi, Zhang, *Randomized
Algorithms for Tracking Distributed Count, Frequencies, and Ranks*
(PODS 2012).  The public API:

* :class:`Simulation` — drive any tracking scheme over a stream of
  ``(site_id, item)`` events with exact communication/space accounting.
* :class:`TrackingService` — multiplex many named tracking jobs over one
  shared site fleet with batched ingestion (:mod:`repro.service`), with
  optional durability: write-ahead logging, snapshots and
  crash-recovery via ``checkpoint_dir`` (:mod:`repro.persistence`).
* :class:`ShardedTrackingService` — the same surface over N shard-local
  hubs with hash-partitioned ingest and a cross-shard query merge plane
  (:mod:`repro.shard`); scales ingest with cores/machines.
* Count: :class:`RandomizedCountScheme` (Theorem 2.1),
  :class:`DeterministicCountScheme` (the trivial optimum).
* Frequency: :class:`RandomizedFrequencyScheme` (Theorem 3.1),
  :class:`DeterministicFrequencyScheme` ([29] baseline).
* Rank: :class:`RandomizedRankScheme` (Theorem 4.1),
  :class:`DeterministicRankScheme`, :class:`Cormode05RankScheme`.
* :class:`DistributedSamplingScheme` — the [9] sampling baseline.
* :class:`MedianBoostedScheme` — the 1-delta whole-horizon booster.
* :mod:`repro.workloads` — arrival patterns and adversarial inputs.
* :mod:`repro.lowerbounds` — the paper's lower-bound experiments.
* :mod:`repro.analysis` — theory formulas and accuracy harnesses.

Quickstart::

    from repro import RandomizedCountScheme, Simulation
    from repro.workloads import uniform_sites

    sim = Simulation(RandomizedCountScheme(epsilon=0.05), num_sites=25)
    sim.run(uniform_sites(n=100_000, k=25))
    print(sim.coordinator.estimate(), sim.comm.total_messages)
"""

from .core import (
    Cormode05RankScheme,
    DeterministicCountScheme,
    DeterministicFrequencyScheme,
    DeterministicRankScheme,
    DistributedSamplingScheme,
    MedianBoostedScheme,
    RandomizedCountScheme,
    RandomizedFrequencyScheme,
    RandomizedRankScheme,
    WindowedCountScheme,
    copies_for_confidence,
)
from .runtime import Simulation, TrackingScheme
from .service import TrackingService
from .shard import ShardedTrackingService

__version__ = "1.2.0"

__all__ = [
    "Cormode05RankScheme",
    "DeterministicCountScheme",
    "DeterministicFrequencyScheme",
    "DeterministicRankScheme",
    "DistributedSamplingScheme",
    "MedianBoostedScheme",
    "RandomizedCountScheme",
    "RandomizedFrequencyScheme",
    "RandomizedRankScheme",
    "WindowedCountScheme",
    "copies_for_confidence",
    "ShardedTrackingService",
    "Simulation",
    "TrackingScheme",
    "TrackingService",
    "__version__",
]
