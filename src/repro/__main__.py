"""``python -m repro`` — the command-line simulator entry point."""

import sys

from .cli import main

sys.exit(main())
