"""Shard execution backends: inline, worker threads, worker processes.

One shard hub is one full :class:`~repro.service.TrackingService` (its
own engine, per-job Network ledgers and — when durability is armed —
its own checkpoint bundle).  The facade drives all hubs through a tiny
command table so the same operations run identically however the hubs
are hosted:

* **inline** — hubs are plain objects in the caller's process, driven
  sequentially.  Deterministic and dependency-free; the mode the
  equivalence tests pin down.
* **thread** — one worker thread per hub.  Hub work is pure Python, so
  on a GIL build this buys overlap only around allocator/numpy releases;
  it is the right mode for free-threaded builds and keeps the facade
  non-blocking per shard.
* **process** — one worker process per hub (fork when available, else
  spawn).  Commands travel a duplex pipe; ingest is *pipelined*: the
  facade posts every shard's sub-batch before collecting any ack, so all
  hubs apply their slices concurrently and ingest scales with cores.

Every backend exposes ``map(op, per_shard_args)`` -> per-shard results
(shard order) and ``close()``.  Worker exceptions are re-raised in the
caller; unpicklable ones degrade to :class:`ShardWorkerError` carrying
the remote traceback.
"""

from __future__ import annotations

import multiprocessing
import pickle
import traceback
from typing import List, Optional

from ..service import TrackingService
from ..service.job import resolve_query

__all__ = [
    "ShardWorkerError",
    "InlineBackend",
    "ThreadBackend",
    "ProcessBackend",
    "make_backend",
    "EXECUTORS",
]

EXECUTORS = ("inline", "thread", "process")


class ShardWorkerError(RuntimeError):
    """A shard worker failed and its exception could not be re-raised."""


# -- the command table (runs wherever the hub lives) -----------------------


def _cmd_register(service, name, scheme, seed, budget):
    service.register(name, scheme, seed=seed, space_budget_words=budget)
    return True


def _cmd_unregister(service, name):
    service.unregister(name)
    return True


def _cmd_ingest(service, local_ids, items):
    if not local_ids:
        return 0
    return service.ingest(local_ids, items)


def _cmd_query(service, name, method, args, kwargs):
    job = service.job(name)
    fn = resolve_query(job.coordinator, method)
    return fn.__name__, fn(*args, **kwargs)


def _cmd_status(service):
    return service.status()


def _cmd_space_overages(service):
    return service.space_overages()


def _cmd_job_manifest(service):
    """Everything the facade needs to rebuild its job views on restore."""
    return [
        {
            "name": job.name,
            "scheme": job.scheme,
            "seed": job.seed,
            "space_budget_words": job.space_budget_words,
            "elements": job.elements_processed,
        }
        for job in service.jobs.values()
    ]


def _cmd_checkpoint(service):
    return service.checkpoint()


def _cmd_elements(service):
    return service.elements_processed


COMMANDS = {
    "register": _cmd_register,
    "unregister": _cmd_unregister,
    "ingest": _cmd_ingest,
    "query": _cmd_query,
    "status": _cmd_status,
    "space_overages": _cmd_space_overages,
    "job_manifest": _cmd_job_manifest,
    "checkpoint": _cmd_checkpoint,
    "elements": _cmd_elements,
}


def _build_service(config: dict) -> TrackingService:
    if config.get("restore_from"):
        return TrackingService.restore(
            config["restore_from"],
            wal_segment_records=config.get("wal_segment_records", 4096),
            wal_sync=config.get("wal_sync", False),
        )
    return TrackingService(**{k: v for k, v in config.items()
                              if k != "restore_from"})


# -- in-process backends ---------------------------------------------------


class InlineBackend:
    """Hubs as plain objects, driven sequentially in the caller."""

    def __init__(self, configs: List[dict]):
        self.services = [_build_service(config) for config in configs]

    def map(self, op: str, per_shard_args: List[tuple]) -> list:
        fn = COMMANDS[op]
        return [
            fn(service, *args)
            for service, args in zip(self.services, per_shard_args)
        ]

    def call(self, shard: int, op: str, args: tuple):
        """Run one command on one hub only."""
        return COMMANDS[op](self.services[shard], *args)

    def close(self) -> None:
        for service in self.services:
            service.close()


class ThreadBackend(InlineBackend):
    """Hubs as plain objects, one worker thread per hub."""

    def __init__(self, configs: List[dict]):
        from concurrent.futures import ThreadPoolExecutor

        super().__init__(configs)
        self._pool = ThreadPoolExecutor(
            max_workers=len(self.services),
            thread_name_prefix="repro-shard",
        )

    def map(self, op: str, per_shard_args: List[tuple]) -> list:
        fn = COMMANDS[op]
        futures = [
            self._pool.submit(fn, service, *args)
            for service, args in zip(self.services, per_shard_args)
        ]
        return [future.result() for future in futures]

    def close(self) -> None:
        self._pool.shutdown(wait=True)
        super().close()


# -- process backend -------------------------------------------------------


def _worker_main(conn, config: dict) -> None:
    """Entry point of one shard worker process."""
    try:
        service = _build_service(config)
    except BaseException as exc:
        conn.send(("err", _shippable(exc)))
        conn.close()
        return
    conn.send(("ok", True))
    while True:
        try:
            op, args = conn.recv()
        except (EOFError, OSError):
            break
        if op == "close":
            try:
                service.close()
                conn.send(("ok", True))
            except BaseException as exc:
                conn.send(("err", _shippable(exc)))
            break
        try:
            result = COMMANDS[op](service, *args)
            conn.send(("ok", result))
        except BaseException as exc:
            conn.send(("err", _shippable(exc)))
    conn.close()


def _shippable(exc: BaseException):
    """An exception as something the parent can re-raise.

    Returns the exception itself when it pickles, else a
    :class:`ShardWorkerError` carrying the formatted remote traceback.
    """
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return ShardWorkerError(
            f"{type(exc).__name__}: {exc}\n"
            f"(remote traceback)\n{traceback.format_exc()}"
        )


class ProcessBackend:
    """One worker process per hub, commands over duplex pipes.

    ``map`` posts every shard's command before collecting any reply, so
    shard hubs execute concurrently — the property the ingest scaling
    benchmark measures.
    """

    def __init__(self, configs: List[dict]):
        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )
        self._conns = []
        self._procs = []
        try:
            for config in configs:
                parent, child = context.Pipe(duplex=True)
                proc = context.Process(
                    target=_worker_main,
                    args=(child, config),
                    daemon=True,
                    name="repro-shard-worker",
                )
                proc.start()
                child.close()
                self._conns.append(parent)
                self._procs.append(proc)
            # Synchronize on construction so a bad config (e.g. a dirty
            # checkpoint dir) fails in the caller, not silently later.
            for conn in self._conns:
                self._collect(conn)
        except BaseException:
            self.close()
            raise

    @staticmethod
    def _collect(conn):
        try:
            status, payload = conn.recv()
        except (EOFError, OSError) as exc:
            raise ShardWorkerError(
                f"shard worker died without replying: {exc}"
            ) from exc
        if status == "err":
            raise payload
        return payload

    def map(self, op: str, per_shard_args: List[tuple]) -> list:
        # Both phases are failure-safe: a dead worker must not leave
        # another shard's posted command unread, or every later map()
        # would read misaligned replies from the surviving pipes.
        sent = []
        first_error: Optional[BaseException] = None
        for conn, args in zip(self._conns, per_shard_args):
            try:
                conn.send((op, args))
                sent.append(True)
            except (BrokenPipeError, OSError) as exc:
                sent.append(False)
                if first_error is None:
                    first_error = ShardWorkerError(
                        f"shard worker pipe is down: {exc}"
                    )
        results = []
        for conn, was_sent in zip(self._conns, sent):
            if not was_sent:
                results.append(None)
                continue
            try:
                results.append(self._collect(conn))
            except BaseException as exc:  # drain all pipes before raising
                if first_error is None:
                    first_error = exc
                results.append(None)
        if first_error is not None:
            raise first_error
        return results

    def call(self, shard: int, op: str, args: tuple):
        """Run one command on one worker only."""
        self._conns[shard].send((op, args))
        return self._collect(self._conns[shard])

    def close(self) -> None:
        if getattr(self, "_closed", False):
            return
        self._closed = True
        for conn in self._conns:
            try:
                conn.send(("close", ()))
            except (BrokenPipeError, OSError):
                pass
        for conn in self._conns:
            try:
                if conn.poll(10):
                    conn.recv()
            except (EOFError, OSError):
                pass
            try:
                conn.close()
            except OSError:
                pass
        for proc in self._procs:
            proc.join(timeout=10)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=5)


def make_backend(executor: str, configs: List[dict]):
    """Build the backend for ``executor`` (one config per shard hub)."""
    if executor == "inline":
        return InlineBackend(configs)
    if executor == "thread":
        return ThreadBackend(configs)
    if executor == "process":
        return ProcessBackend(configs)
    raise ValueError(
        f"unknown shard executor {executor!r}; choose from {EXECUTORS}"
    )
