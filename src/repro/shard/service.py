"""The sharded multi-tenant tracking service.

A :class:`ShardedTrackingService` partitions the site fleet across
``num_shards`` shard-local hubs (each a full
:class:`~repro.service.TrackingService`: engine, per-job Network
ledgers, optional checkpoint bundle) behind the *same*
register/ingest/query surface as a single service, so every frontend —
the HTTP gateway, ``repro serve``-style drivers, the benchmarks — runs
unchanged on top of it.

* **Routing**: a :class:`~repro.shard.router.ShardRouter` hash-
  partitions global site ids; one facade ``ingest`` splits the batch
  and drives every hub through the execution plane (inline, worker
  threads, worker processes, or remote TCP hubs — see
  :mod:`repro.exec`).  Per-shard event order is preserved, so each
  hub's transcript is deterministic given the seed.
* **Query merging**: cross-shard reads go through the merge plane
  (:mod:`repro.shard.merge`): counts sum, frequency candidate sets
  union + re-threshold, rank functions add.  Per-shard hubs run at the
  job's full epsilon; the composed bound is still ``eps * n`` (see the
  merge module's error-composition notes and :meth:`error_bound`).
* **Determinism**: per-shard job seeds derive from the job seed and the
  shard index, so shards draw independent randomness.  With
  ``num_shards=1`` the partition is the identity and seeds are passed
  through untouched — a one-shard facade is transcript-identical to an
  unsharded :class:`TrackingService` (asserted in the equivalence
  tests), which also makes it the honest baseline for scaling runs.
* **Durability**: ``checkpoint_dir`` arms per-hub WAL+snapshot bundles
  under ``shard-NN/`` plus a ``shards.json`` manifest;
  :meth:`restore` rebuilds the facade and recovers every hub.
* **Placement**: hubs are exec-plane workers (:mod:`repro.exec`):
  ``inline`` / ``thread`` / ``process`` place them locally, and
  ``cluster`` places each hub on a ``repro hub`` TCP actor —
  distributed shard hubs behind one facade/gateway.
* **Pipelining**: ``relaxed=True`` posts every hub's sub-batch without
  waiting for acks (per-hub FIFO keeps each hub's transcript exact);
  reads, checkpoints and registry changes fence first.  On remote hubs
  this turns one round trip per batch into none.
"""

from __future__ import annotations

import json
import os
import time
from collections import deque
from typing import Dict, Iterable, List, Optional

from ..exec import EXECUTORS, make_group
from ..exec.workers import hub_spec

try:  # optional accelerator for the windowed run-count scan
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None
from ..obs.metrics import DEFAULT_BUCKETS, SIZE_BUCKETS, Histogram
from ..obs.tracing import SpanRecorder
from ..runtime import TrackingScheme, derive_seed
from ..service.errors import DuplicateJobError, UnknownJobError
from .merge import UnmergeableQueryError, composed_error_bound, merged_query
from .router import ShardRouter

__all__ = ["ShardedTrackingService", "ShardJobView"]

_MANIFEST = "shards.json"
_MANIFEST_FORMAT = "repro-shards-v1"


class ShardJobView:
    """The facade's handle for one registered job.

    Mirrors the slice of :class:`~repro.service.TrackingJob` the
    frontends read (``name``, ``scheme``, ``seed``,
    ``elements_processed``, ``space_budget_words``); protocol state
    lives only in the shard hubs.
    """

    __slots__ = (
        "name", "scheme", "seed", "space_budget_words", "_service",
        "_elements_offset",
    )

    def __init__(self, name, scheme, seed, space_budget_words, service,
                 elements_offset):
        self.name = name
        self.scheme = scheme
        self.seed = seed
        self.space_budget_words = space_budget_words
        self._service = service
        self._elements_offset = elements_offset

    @property
    def elements_processed(self) -> int:
        """Events this job observed (jobs see everything ingested after
        their registration; the facade routes every event)."""
        return self._service.elements_processed - self._elements_offset

    @property
    def problem(self) -> str:
        """Problem family from the scheme's table name."""
        return self.scheme.name.split("/", 1)[0]

    def __repr__(self) -> str:
        return (
            f"ShardJobView(name={self.name!r}, scheme={self.scheme.name!r}, "
            f"elements={self.elements_processed})"
        )


class ShardedTrackingService:
    """Partitioned ingest with merged cross-shard queries.

    Parameters mirror :class:`~repro.service.TrackingService` plus:

    num_shards:
        Shard-local hubs to partition the ``num_sites`` fleet across
        (``1 <= num_shards <= num_sites``).
    executor:
        ``"inline"`` (sequential, deterministic reference),
        ``"thread"`` (one worker thread per hub), ``"process"`` (one
        worker process per hub; ingest is pipelined across hubs and
        scales with cores) or ``"cluster"`` (each hub on a
        ``repro hub`` TCP actor — see ``hub_addresses``).
    hub_addresses:
        For ``executor="cluster"``: addresses of running ``repro hub``
        hosts; hub ``i`` lands on ``hub_addresses[i % len]``.  ``None``
        self-hosts one TCP exec host on an ephemeral local port.
    relaxed:
        Pipelined ingest: post every hub's sub-batch without collecting
        acks (reads/checkpoints fence first).  Per-hub transcripts are
        unchanged — per-hub FIFO preserves each hub's event order — so
        answers are identical to lockstep; an ingest error surfaces at
        the next fencing call instead of the posting call (see
        ``docs/relaxed-mode.md``).  Empty sub-batches are skipped
        entirely (no command, no frame).
    window / per_site_depth:
        Relaxed-mode in-flight bounds (``docs/relaxed-mode.md`` →
        "Windowing"): at most ``window`` runs (maximal same-site
        stretches, counted per posted sub-batch) in flight across the
        fleet and ``per_site_depth`` outstanding sub-batch commands per
        shard hub.  When posting would exceed a credit the facade
        collects the *oldest* outstanding reply only — never a full
        fence — so pipelining continues while memory stays flat on
        unbounded streams.  None (default) leaves a dimension
        unbounded; ignored in lockstep.
    """

    def __init__(
        self,
        num_sites: int,
        num_shards: int = 1,
        seed: int = 0,
        one_way: bool = False,
        uplink_drop_rate: float = 0.0,
        space_sample_interval: int = 4096,
        space_budget_words: Optional[int] = None,
        checkpoint_dir: Optional[str] = None,
        wal_segment_records: int = 4096,
        wal_sync: bool = False,
        executor: str = "inline",
        hub_addresses: Optional[List[str]] = None,
        relaxed: bool = False,
        window: Optional[int] = None,
        per_site_depth: Optional[int] = None,
        _restore: bool = False,
    ):
        self.router = ShardRouter(num_sites, num_shards)
        self.num_sites = num_sites
        self.num_shards = num_shards
        self.seed = seed
        self.one_way = one_way
        self.uplink_drop_rate = uplink_drop_rate
        self.space_budget_words = space_budget_words
        self.executor = executor
        self.relaxed = bool(relaxed)
        if not relaxed and (window is not None or per_site_depth is not None):
            raise ValueError(
                "window/per_site_depth only apply to relaxed dispatch; "
                "pass relaxed=True"
            )
        if window is not None and window < 1:
            raise ValueError("window must be >= 1 (or None for unbounded)")
        if per_site_depth is not None and per_site_depth < 1:
            raise ValueError(
                "per_site_depth must be >= 1 (or None for unbounded)"
            )
        self.window = window
        self.per_site_depth = per_site_depth
        #: in-flight ledger for windowed posting: per shard, a FIFO of
        #: ``(post_seq, run_weight)`` for posted-but-uncollected ingest
        #: commands.  Reconciled lazily against ``backend.pending``
        #: because any fencing call drains replies behind our back.
        self._inflight: List[deque] = [deque() for _ in range(num_shards)]
        self._inflight_runs = 0
        self._post_seq = 0
        self.window_stalls = 0
        self.max_inflight_runs = 0
        #: run weight of each windowed sub-batch actually posted — the
        #: facade-level coalescing figure (runs per command frame)
        self.coalesced_runs = Histogram(SIZE_BUCKETS)
        self.elements_processed = 0
        self._jobs: Dict[str, ShardJobView] = {}
        #: dispatch-plane telemetry, owned here and always on (two
        #: clock reads per fan-out): spans for dispatch/merge/fence,
        #: histograms for merge fan-out latency and candidate-union
        #: sizes.  Scrapers attach these to their registry.
        self.spans = SpanRecorder()
        self.merge_latency = Histogram(DEFAULT_BUCKETS)
        self.merge_candidates = Histogram(SIZE_BUCKETS)
        self._checkpoint_dir = checkpoint_dir
        self._wal_segment_records = wal_segment_records
        self._wal_sync = wal_sync
        if executor not in EXECUTORS:
            raise ValueError(
                f"unknown shard executor {executor!r}; choose from "
                f"{EXECUTORS}"
            )
        if hub_addresses and executor != "cluster":
            raise ValueError(
                "hub_addresses only applies to executor='cluster'"
            )
        configs = []
        for shard in range(num_shards):
            config = {
                "num_sites": self.router.shard_size(shard),
                "seed": self._shard_seed(seed, shard),
                "one_way": one_way,
                "uplink_drop_rate": uplink_drop_rate,
                "space_sample_interval": space_sample_interval,
                "space_budget_words": space_budget_words,
                "wal_segment_records": wal_segment_records,
                "wal_sync": wal_sync,
                "dispatch_mode": self.dispatch_mode,
            }
            if checkpoint_dir is not None:
                shard_dir = self._shard_dir(checkpoint_dir, shard)
                if _restore:
                    config = {
                        "restore_from": shard_dir,
                        "wal_segment_records": wal_segment_records,
                        "wal_sync": wal_sync,
                        "dispatch_mode": self.dispatch_mode,
                    }
                else:
                    config["checkpoint_dir"] = shard_dir
            elif _restore:
                raise ValueError("restore requires a checkpoint_dir")
            configs.append(config)
        if checkpoint_dir is not None and not _restore:
            self._write_manifest(checkpoint_dir)
        self._group = make_group(
            executor,
            [hub_spec(config) for config in configs],
            hub_addresses=hub_addresses,
        )
        if _restore:
            self._rebuild_from_shards()

    # -- seeds & layout ----------------------------------------------------

    def _shard_seed(self, base: int, shard: int) -> int:
        """Per-shard derivation; the one-shard facade passes seeds
        through so it reproduces the unsharded transcript exactly."""
        if self.num_shards == 1:
            return base
        return derive_seed(base, "shard", shard)

    @staticmethod
    def _shard_dir(checkpoint_dir: str, shard: int) -> str:
        return os.path.join(checkpoint_dir, f"shard-{shard:02d}")

    def _write_manifest(self, checkpoint_dir: str) -> None:
        os.makedirs(checkpoint_dir, exist_ok=True)
        path = os.path.join(checkpoint_dir, _MANIFEST)
        if os.path.exists(path):
            raise ValueError(
                f"checkpoint dir {checkpoint_dir!r} already holds a shard "
                "manifest; resume it with ShardedTrackingService.restore(...)"
            )
        manifest = {
            "format": _MANIFEST_FORMAT,
            "num_sites": self.num_sites,
            "num_shards": self.num_shards,
            "seed": self.seed,
            "one_way": self.one_way,
            "uplink_drop_rate": self.uplink_drop_rate,
            "space_budget_words": self.space_budget_words,
        }
        with open(path, "w") as f:
            json.dump(manifest, f, indent=2, sort_keys=True)
            f.write("\n")

    # -- job registry ------------------------------------------------------

    def register(
        self,
        name: str,
        scheme: TrackingScheme,
        seed: Optional[int] = None,
        space_budget_words: Optional[int] = None,
    ) -> ShardJobView:
        """Register a named job on every shard hub.

        The job seed resolves exactly like the unsharded service
        (``derive_seed(service_seed, "job", name)``); each hub then gets
        an independent per-shard derivation of it, so shard randomness
        is uncorrelated and the variance composition argument holds.
        """
        if not name or not isinstance(name, str):
            raise ValueError("job name must be a non-empty string")
        if name in self._jobs:
            raise DuplicateJobError(f"job {name!r} is already registered")
        resolved_seed = (
            derive_seed(self.seed, "job", name) if seed is None else seed
        )
        resolved_budget = (
            self.space_budget_words
            if space_budget_words is None
            else space_budget_words
        )
        self._group.map(
            "register",
            [
                (name, scheme, self._shard_seed(resolved_seed, shard),
                 resolved_budget)
                for shard in range(self.num_shards)
            ],
        )
        view = ShardJobView(
            name, scheme, resolved_seed, resolved_budget, self,
            elements_offset=self.elements_processed,
        )
        self._jobs[name] = view
        return view

    def unregister(self, name: str) -> ShardJobView:
        """Remove a job from every shard hub; returns its view."""
        checked = self._checked(name)
        self._group.map(
            "unregister", [(checked,)] * self.num_shards
        )
        return self._jobs.pop(checked)

    def job(self, name: str) -> ShardJobView:
        return self._jobs[self._checked(name)]

    def _checked(self, name: str) -> str:
        if name not in self._jobs:
            raise UnknownJobError(
                f"no job named {name!r}; registered: {sorted(self._jobs)}"
            )
        return name

    @property
    def jobs(self) -> Dict[str, ShardJobView]:
        return dict(self._jobs)

    def __contains__(self, name: str) -> bool:
        return name in self._jobs

    def __len__(self) -> int:
        return len(self._jobs)

    def __getitem__(self, name: str) -> ShardJobView:
        return self.job(name)

    # -- ingestion ---------------------------------------------------------

    @property
    def dispatch_mode(self) -> str:
        """``"lockstep"``, ``"relaxed"`` or ``"windowed"``."""
        if not self.relaxed:
            return "lockstep"
        if self.window is not None or self.per_site_depth is not None:
            return "windowed"
        return "relaxed"

    def dispatch_stats(self) -> dict:
        """Facade-level dispatch counters, shaped like
        :meth:`~repro.net.actors.CoordinatorHub.dispatch_stats`."""
        frames = self.coalesced_runs.count
        runs = self.coalesced_runs.sum
        return {
            "mode": self.dispatch_mode,
            "window": self.window,
            "per_site_depth": self.per_site_depth,
            "frames_posted": frames,
            "runs_posted": int(runs),
            "runs_per_frame": (runs / frames) if frames else 0.0,
            "max_inflight_runs": self.max_inflight_runs,
            "window_stalls": self.window_stalls,
        }

    def inflight_runs(self) -> int:
        """Runs posted under the window but not yet collected.

        Reconciles the ledger first so a read taken after a fencing
        call (which drains replies behind the ledger's back) reports 0
        rather than the stale pre-fence figure."""
        self._reconcile_inflight()
        return self._inflight_runs

    def _reconcile_inflight(self) -> None:
        """Drop ledger entries whose replies a fencing call already
        drained (oldest first — collections are FIFO per backend)."""
        for shard, entries in enumerate(self._inflight):
            pending = self._group.backends[shard].pending
            while len(entries) > pending:
                self._inflight_runs -= entries.popleft()[1]

    def _collect_oldest(self) -> bool:
        """Collect the globally oldest outstanding sub-batch reply;
        False when nothing is in flight.  Deferred ingest errors from
        that sub-batch raise here, exactly as they would at a fence."""
        best = None
        for shard, entries in enumerate(self._inflight):
            if entries and (
                best is None or entries[0][0] < self._inflight[best][0][0]
            ):
                best = shard
        if best is None:
            return False
        self._inflight_runs -= self._inflight[best].popleft()[1]
        self._group.backends[best].collect_one()
        return True

    def _post_windowed(self, per_shard) -> None:
        """Credit-based relaxed posting: free the oldest in-flight
        slot(s) before a post that would exceed ``window`` total runs
        or ``per_site_depth`` commands on one hub."""
        self._reconcile_inflight()
        backends = self._group.backends
        for shard, (local_ids, shard_items) in enumerate(per_shard):
            if len(local_ids) == 0:
                continue
            weight = _run_count(local_ids) if self.window is not None else 1
            entries = self._inflight[shard]
            while self._inflight_runs > 0:
                if (
                    self.window is not None
                    and self._inflight_runs + weight > self.window
                ):
                    pass  # over the global run credit — collect one
                elif (
                    self.per_site_depth is not None
                    and len(entries) >= self.per_site_depth
                ):
                    pass  # this hub's pipe at depth — collect one
                else:
                    break
                self.window_stalls += 1
                if not self._collect_oldest():
                    break
            backends[shard].submit("ingest", local_ids, shard_items)
            self._post_seq += 1
            entries.append((self._post_seq, weight))
            self._inflight_runs += weight
            self.coalesced_runs.observe(weight)
            if self._inflight_runs > self.max_inflight_runs:
                self.max_inflight_runs = self._inflight_runs

    def ingest(self, site_ids, items=None) -> int:
        """Route one ordered batch across the shard hubs.

        Site ids are validated (and the batch rejected atomically) before
        any hub sees an event.  Every hub's sub-batch is posted before
        any ack is collected, so placed hubs (process/cluster) apply
        their slices concurrently; with ``relaxed=True`` no ack is
        collected at all — the next fencing operation (query, status,
        checkpoint, registry change) drains outstanding batches and
        surfaces any deferred ingest error.
        """
        parts = self.router.split(site_ids, items)
        if not parts:
            return 0
        per_shard = [([], None) for _ in range(self.num_shards)]
        total = 0
        for shard, local_ids, shard_items in parts:
            per_shard[shard] = (local_ids, shard_items)
            total += len(local_ids)
        with self.spans.span(
            "dispatch",
            events=total,
            shards=len(parts),
            relaxed=self.relaxed,
        ):
            if not self.relaxed:
                total = sum(self._group.map("ingest", per_shard))
            elif self.window is not None or self.per_site_depth is not None:
                # The router already validated and sized the batch;
                # counts are known without acks, so posting (under the
                # in-flight credits) is the whole job.
                self._post_windowed(per_shard)
            else:
                for shard, (local_ids, shard_items) in enumerate(per_shard):
                    if len(local_ids) == 0:
                        continue  # no events for this hub: no frame
                    self._group.backends[shard].submit(
                        "ingest", local_ids, shard_items
                    )
        self.elements_processed += total
        return total

    def fence(self) -> None:
        """Drain outstanding relaxed batches (no-op in lockstep mode).

        Every read/checkpoint/registry operation fences implicitly;
        call this to surface deferred ingest errors at a point of your
        choosing (e.g. at the end of a load phase).
        """
        pending = self._group.pending
        if pending:
            with self.spans.span("fence", pending_commands=pending):
                self._group.collect()

    def ingest_stream(self, stream: Iterable, batch_size: int = 8192) -> int:
        """Drain an iterable of ``(site_id, item)`` pairs in batches."""
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        total = 0
        site_ids: list = []
        items: list = []
        for site_id, item in stream:
            site_ids.append(site_id)
            items.append(item)
            if len(site_ids) >= batch_size:
                total += self.ingest(site_ids, items)
                site_ids, items = [], []
        if site_ids:
            total += self.ingest(site_ids, items)
        return total

    # -- queries -----------------------------------------------------------

    def query(self, name: str, method: Optional[str] = None, *args, **kwargs):
        """Run a merged cross-shard query on one job.

        Additive queries (``estimate``, ``estimate_total``,
        ``estimate_rank``, ``estimate_frequency`` and the default query)
        sum per-shard answers; ``quantile``, ``heavy_hitters`` and
        ``top_items`` run the candidate-union merges.  Anything else
        raises :class:`UnmergeableQueryError` — reach one hub's full
        surface with :meth:`query_shard`.
        """
        view = self.job(name)
        if self.num_shards == 1:
            # Degenerate partition: the single hub *is* the service, so
            # its entire query surface is available unmerged.
            _, result = self._group.map(
                "query", [(name, method, args, kwargs)]
            )[0]
            return result

        def fanout(sub_method, *sub_args, **sub_kwargs):
            return self._group.map(
                "query",
                [(name, sub_method, sub_args, sub_kwargs)] * self.num_shards,
            )

        started = time.perf_counter()
        with self.spans.span(
            "merge",
            job=name,
            method=method or "default",
            shards=self.num_shards,
        ) as attrs:
            def observe(size):
                self.merge_candidates.observe(size)
                attrs["candidates"] = size

            result = merged_query(
                fanout, view.problem, method, args, kwargs,
                observe_candidates=observe,
            )
        self.merge_latency.observe(time.perf_counter() - started)
        return result

    def query_shard(self, shard: int, name: str,
                    method: Optional[str] = None, *args, **kwargs):
        """Run a query on one shard hub only (its full query surface)."""
        if not 0 <= shard < self.num_shards:
            raise ValueError(
                f"shard {shard} out of range [0, {self.num_shards})"
            )
        self._checked(name)
        _, result = self._group.call(
            shard, "query", name, method, args, kwargs
        )
        return result

    def error_bound(self, name: str) -> dict:
        """Composed additive error accounting for one job's merges.

        ``bound`` is ``epsilon * n_total`` — identical to the unsharded
        guarantee; see :func:`repro.shard.merge.composed_error_bound`.
        """
        view = self.job(name)
        epsilon = getattr(view.scheme, "epsilon", None)
        if epsilon is None:
            raise ValueError(
                f"job {name!r} scheme {view.scheme.name!r} has no epsilon"
            )
        shard_elements = self._group.map(
            "elements", [()] * self.num_shards
        )
        return composed_error_bound(epsilon, shard_elements)

    # -- budgets -----------------------------------------------------------

    def has_space_budgets(self) -> bool:
        """True when any registered job carries a space budget."""
        return any(
            view.space_budget_words is not None
            for view in self._jobs.values()
        )

    def space_overages(self) -> dict:
        """Jobs whose high-water site space exceeds their budget.

        The per-job overage is evaluated on every shard hub and the
        worst shard reported, mirroring the unsharded semantics (the
        budget bounds any single site's footprint).
        """
        merged: dict = {}
        for shard_overages in self._group.map(
            "space_overages", [()] * self.num_shards
        ):
            for job_name, info in shard_overages.items():
                current = merged.get(job_name)
                if current is None or info["used"] > current["used"]:
                    merged[job_name] = info
        return merged

    # -- status ------------------------------------------------------------

    def status(self) -> dict:
        """Fleet snapshot: merged per-job ledgers + per-shard detail."""
        shard_statuses = self._group.map("status", [()] * self.num_shards)
        jobs: dict = {}
        for view in self._jobs.values():
            per_shard = [s["jobs"][view.name] for s in shard_statuses]
            comm = _sum_dicts([j["comm"] for j in per_shard])
            used = {
                "max_site_words": max(
                    j["space"]["used"]["max_site_words"] for j in per_shard
                ),
                "mean_site_words": sum(
                    j["space"]["used"]["mean_site_words"] for j in per_shard
                ) / len(per_shard),
                "coordinator_words": sum(
                    j["space"]["used"]["coordinator_words"]
                    for j in per_shard
                ),
            }
            budget = view.space_budget_words
            estimate = None
            try:
                estimate = self.query(view.name)
            except (AttributeError, UnmergeableQueryError):
                pass  # jobs without a (mergeable) default query stay None
            jobs[view.name] = {
                "name": view.name,
                "scheme": view.scheme.name,
                "elements": view.elements_processed,
                "comm": comm,
                "dropped_uplink_messages": sum(
                    j["dropped_uplink_messages"] for j in per_shard
                ),
                "space": {
                    "total": budget,
                    "used": used,
                    "available": (
                        None if budget is None
                        else budget - used["max_site_words"]
                    ),
                },
                "accuracy": {
                    "epsilon": getattr(view.scheme, "epsilon", None),
                    "estimate": estimate,
                },
            }
        return {
            "sites": self.num_sites,
            "shards": self.num_shards,
            "executor": self.executor,
            "relaxed": self.relaxed,
            "dispatch_mode": self.dispatch_mode,
            "window": self.window,
            "per_site_depth": self.per_site_depth,
            "one_way": self.one_way,
            "uplink_drop_rate": self.uplink_drop_rate,
            "elements": self.elements_processed,
            "comm": _sum_dicts([s["comm"] for s in shard_statuses]),
            "jobs": jobs,
            "shard_detail": [
                {
                    "shard": shard,
                    "sites": self.router.shard_size(shard),
                    "elements": status["elements"],
                    "comm": status["comm"],
                }
                for shard, status in enumerate(shard_statuses)
            ],
        }

    def collect_spans(self) -> list:
        """Drain every hub's span buffer (cross-process trace stitching).

        Hub-side ``ingest`` spans are recorded wherever the hub lives —
        another thread, a subprocess, a remote ``repro hub`` actor —
        and buffered there; this fans the ``collect_spans`` command out
        (fencing outstanding relaxed batches like any collecting call)
        and returns the union, each span annotated with its shard
        index.  Draining means a span is shipped exactly once; the
        caller (the gateway's ``/v1/trace``) retains what it needs.

        Collection is best-effort per hub: a dead shard's buffered
        spans are unreachable anyway, and the trace surface must stay
        readable while the fleet plane is reporting that hub ``down``
        (the alert exemplar points here) — so unreachable hubs are
        skipped rather than failing the whole fan-out.
        """
        collected: list = []
        for shard, backend in enumerate(self._group.backends):
            try:
                spans = backend.dispatch_run("collect_spans")
            except Exception:
                continue
            for span in spans or ():
                span["shard"] = shard
                collected.append(span)
        return collected

    def metrics_sample(self) -> dict:
        """Fleet telemetry: merged totals plus per-shard detail.

        Fans the cheap hub-side ``metrics_sample`` command out (no
        query evaluation anywhere), so the gateway's scrape path sees
        remote hubs' engine/WAL/space numbers.  Like every collecting
        command this fences outstanding relaxed batches first.
        """
        samples = self._group.map("metrics_sample", [()] * self.num_shards)
        jobs: dict = {}
        for view in self._jobs.values():
            per_shard = [s["jobs"][view.name] for s in samples]
            space = {
                "max_site_words": max(
                    j["space"]["max_site_words"] for j in per_shard
                ),
                "mean_site_words": sum(
                    j["space"]["mean_site_words"] for j in per_shard
                ) / len(per_shard),
                "coordinator_words": sum(
                    j["space"]["coordinator_words"] for j in per_shard
                ),
            }
            jobs[view.name] = {
                "elements": view.elements_processed,
                "comm": _sum_dicts([j["comm"] for j in per_shard]),
                "space": space,
                "budget": view.space_budget_words,
                "shards": [
                    {"shard": shard, "space": j["space"]}
                    for shard, j in enumerate(per_shard)
                ],
            }
        return {
            "elements": self.elements_processed,
            "engine": _sum_dicts([s["engine"] for s in samples]),
            "comm": _sum_dicts([s["comm"] for s in samples]),
            "wal_bytes": sum(s["wal_bytes"] for s in samples),
            "wal_records": sum(s["wal_records"] for s in samples),
            "jobs": jobs,
            "shards": [
                {
                    "shard": shard,
                    "elements": s["elements"],
                    "wal_bytes": s["wal_bytes"],
                }
                for shard, s in enumerate(samples)
            ],
        }

    # -- persistence -------------------------------------------------------

    def checkpoint(self) -> list:
        """Snapshot every shard hub; returns the per-shard paths."""
        if self._checkpoint_dir is None:
            raise RuntimeError(
                "no checkpoint_dir configured; pass checkpoint_dir= to "
                "ShardedTrackingService"
            )
        return self._group.map("checkpoint", [()] * self.num_shards)

    @classmethod
    def restore(
        cls,
        checkpoint_dir: str,
        executor: str = "inline",
        wal_segment_records: int = 4096,
        wal_sync: bool = False,
        hub_addresses: Optional[List[str]] = None,
        relaxed: bool = False,
        window: Optional[int] = None,
        per_site_depth: Optional[int] = None,
    ) -> "ShardedTrackingService":
        """Recover a sharded service from its checkpoint directory.

        Reads ``shards.json``, restores every ``shard-NN/`` bundle
        (snapshot + WAL tail, exactly like a single service), and
        rebuilds the facade's job views from the recovered hubs.  With
        ``executor="cluster"`` the bundles are restored *on the hub
        hosts* (paths are resolved on their filesystem), so remote
        shard hubs recover in place behind the same facade.
        """
        path = os.path.join(checkpoint_dir, _MANIFEST)
        try:
            with open(path) as f:
                manifest = json.load(f)
        except FileNotFoundError:
            raise FileNotFoundError(
                f"no shard manifest at {path!r}; was this directory "
                "created by ShardedTrackingService(checkpoint_dir=...)?"
            ) from None
        if manifest.get("format") != _MANIFEST_FORMAT:
            raise ValueError(
                f"unsupported shard manifest format "
                f"{manifest.get('format')!r} in {path!r}"
            )
        return cls(
            num_sites=manifest["num_sites"],
            num_shards=manifest["num_shards"],
            seed=manifest["seed"],
            one_way=manifest["one_way"],
            uplink_drop_rate=manifest["uplink_drop_rate"],
            space_budget_words=manifest["space_budget_words"],
            checkpoint_dir=checkpoint_dir,
            wal_segment_records=wal_segment_records,
            wal_sync=wal_sync,
            executor=executor,
            hub_addresses=hub_addresses,
            relaxed=relaxed,
            window=window,
            per_site_depth=per_site_depth,
            _restore=True,
        )

    def _rebuild_from_shards(self) -> None:
        """Reconstruct job views and counters from restored hubs.

        One ``multi`` round trip per hub (manifest + element counter
        together), posted to every hub before collecting from any, so
        placed hubs answer concurrently.
        """
        for backend in self._group.backends:
            backend.submit_many([("job_manifest", ()), ("elements", ())])
        replies = [
            backend.drain()[-1] for backend in self._group.backends
        ]
        manifests = [reply[0] for reply in replies]
        totals = [reply[1] for reply in replies]
        self.elements_processed = sum(totals)
        for entry in manifests[0]:
            per_shard_elements = sum(
                next(
                    e["elements"]
                    for e in shard_manifest
                    if e["name"] == entry["name"]
                )
                for shard_manifest in manifests
            )
            # The per-shard job seed of shard 0 equals the facade-level
            # resolved seed only when num_shards == 1; reconstruct the
            # facade seed where possible, else keep shard 0's (views
            # only report it).
            self._jobs[entry["name"]] = ShardJobView(
                entry["name"],
                entry["scheme"],
                entry["seed"],
                entry["space_budget_words"],
                self,
                elements_offset=self.elements_processed
                - per_shard_elements,
            )

    @property
    def backends(self) -> list:
        """The per-shard exec backends, in shard order.

        The telemetry surface of the exec plane: each backend's
        ``latency`` histogram (submit-to-collect, i.e. the relaxed
        in-flight window) and ``pending`` count, plus the byte counters
        of cluster backends' transports.
        """
        return list(self._group.backends)

    @property
    def pending_commands(self) -> int:
        """Commands posted but not collected (the pending-fence gauge)."""
        return self._group.pending

    @property
    def checkpoint_dir(self) -> Optional[str]:
        return self._checkpoint_dir

    def close(self) -> None:
        """Shut down every hub (and worker/host) cleanly."""
        self._group.close()

    def __repr__(self) -> str:
        return (
            f"ShardedTrackingService(sites={self.num_sites}, "
            f"shards={self.num_shards}, executor={self.executor!r}, "
            f"jobs={len(self._jobs)}, elements={self.elements_processed})"
        )


def _run_count(site_ids) -> int:
    """Number of maximal same-site stretches in one ordered id list —
    the unit the in-flight ``window`` is accounted in (matching the
    hub-level run decomposition).  Numpy collapses the scan to two
    vector ops when available."""
    n = len(site_ids)
    if n == 0:
        return 0
    if _np is not None and n >= 512:
        try:
            arr = _np.asarray(site_ids)
            if arr.dtype.kind in "iu":
                return int((arr[1:] != arr[:-1]).sum()) + 1
        except (TypeError, ValueError):
            pass
    count = 1
    last = site_ids[0]
    for site_id in site_ids:
        if site_id != last:
            count += 1
            last = site_id
    return count


def _sum_dicts(dicts: list) -> dict:
    """Field-wise sum of same-shaped numeric dicts (comm snapshots)."""
    out: dict = {}
    for d in dicts:
        for key, value in d.items():
            out[key] = out.get(key, 0) + value
    return out
