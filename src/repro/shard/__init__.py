"""Sharded ingest: partitioned shard-local hubs + a query merge plane.

The sharded service is the first layer that lets ingest scale past one
engine: :class:`ShardRouter` hash-partitions the site fleet across
``N`` shard-local hubs (each a full
:class:`~repro.service.TrackingService`), :class:`ShardedTrackingService`
exposes the unsharded register/ingest/query surface over them (inline,
worker-thread or worker-process execution), and the merge plane
(:mod:`repro.shard.merge`) recombines per-shard answers — counts sum,
frequency candidate sets union + re-threshold, rank functions add —
with the composed error still meeting the job's ``eps * n`` target.
"""

from .merge import (
    MERGEABLE_METHODS,
    UnmergeableQueryError,
    composed_error_bound,
    merge_counts,
    merged_query,
)
from .router import ShardRouter
from .service import ShardedTrackingService, ShardJobView

__all__ = [
    "MERGEABLE_METHODS",
    "ShardJobView",
    "ShardRouter",
    "ShardedTrackingService",
    "UnmergeableQueryError",
    "composed_error_bound",
    "merge_counts",
    "merged_query",
]
