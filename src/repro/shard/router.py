"""Hash partitioning of the site fleet across shard-local hubs.

A :class:`ShardRouter` owns the one routing decision of the sharded
service: which shard hub hosts which global site.  The assignment is a
*deterministic hash partition* — global site ids are ordered by a
64-bit mixing hash and dealt round-robin into shards — so it is

* **balanced**: shard sizes differ by at most one site, and no shard is
  ever empty (``num_shards <= num_sites`` is enforced);
* **stable**: a function of ``(num_sites, num_shards)`` only, so a
  restarted or re-built service routes identically;
* **order-preserving within a shard**: local site ids follow ascending
  global site order, and :meth:`split` emits each shard's sub-batch in
  global arrival order.  A single shard is therefore the *identity*
  partition: local ids equal global ids and the shard hub replays the
  exact transcript an unsharded service would.

Events for different shards have no ordering relationship — that is the
point: shard hubs are independent protocol instances whose answers the
merge plane (:mod:`repro.shard.merge`) recombines at query time.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

try:  # gate: keep the router importable on numpy-less installs
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

__all__ = ["ShardRouter"]


def _mix64(x: int) -> int:
    """SplitMix64 finalizer: a cheap, well-distributed 64-bit mixer."""
    x = (x + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return x ^ (x >> 31)


class ShardRouter:
    """Deterministic site -> (shard, local site id) partition.

    Parameters
    ----------
    num_sites:
        Global fleet size ``k``.
    num_shards:
        Number of shard-local hubs; must satisfy
        ``1 <= num_shards <= num_sites`` so every hub owns at least one
        site (an siteless hub could never be a valid protocol instance).
    """

    def __init__(self, num_sites: int, num_shards: int):
        if num_sites < 1:
            raise ValueError("need at least one site")
        if not 1 <= num_shards <= num_sites:
            raise ValueError(
                f"num_shards must be in [1, num_sites]; got "
                f"{num_shards} shards for {num_sites} sites"
            )
        self.num_sites = num_sites
        self.num_shards = num_shards
        order = sorted(range(num_sites), key=lambda s: (_mix64(s), s))
        shard_of = [0] * num_sites
        for position, site in enumerate(order):
            shard_of[site] = position % num_shards
        members: List[List[int]] = [[] for _ in range(num_shards)]
        local_of = [0] * num_sites
        for site in range(num_sites):  # ascending: local order == global order
            local_of[site] = len(members[shard_of[site]])
            members[shard_of[site]].append(site)
        self._shard_of = shard_of
        self._local_of = local_of
        self._members = members
        if _np is not None:
            self._shard_lut = _np.asarray(shard_of, dtype=_np.int64)
            self._local_lut = _np.asarray(local_of, dtype=_np.int64)

    # -- lookups -----------------------------------------------------------

    def shard_of(self, site_id: int) -> int:
        """The shard hosting global site ``site_id``."""
        return self._shard_of[self._checked(site_id)]

    def local_id(self, site_id: int) -> int:
        """The site's id inside its shard hub."""
        return self._local_of[self._checked(site_id)]

    def shard_size(self, shard: int) -> int:
        """Number of global sites hosted by ``shard``."""
        return len(self._members[shard])

    def members(self, shard: int) -> List[int]:
        """Global site ids of ``shard``, in local-id order."""
        return list(self._members[shard])

    @property
    def shard_sizes(self) -> List[int]:
        return [len(m) for m in self._members]

    def _checked(self, site_id: int) -> int:
        if not 0 <= site_id < self.num_sites:
            raise ValueError(
                f"site id {site_id} out of range [0, {self.num_sites})"
            )
        return site_id

    # -- batch routing -----------------------------------------------------

    def split(
        self, site_ids, items=None
    ) -> List[Tuple[int, list, Optional[list]]]:
        """Route one ordered event batch to its shards.

        Returns ``(shard, local_site_ids, items)`` triples — one per
        shard that receives at least one event — with per-shard arrival
        order preserved (the property shard-local transcripts rest on).
        ``items=None`` (count-style unit streams) stays ``None``.
        Raises :class:`ValueError` on any out-of-range site id *before*
        any routing, so a bad batch is rejected atomically.
        """
        if _np is not None:
            ids = _np.asarray(site_ids, dtype=_np.int64)
            n = int(ids.shape[0])
            if n == 0:
                return []
            if int(ids.min()) < 0 or int(ids.max()) >= self.num_sites:
                bad = int(ids.min()) if int(ids.min()) < 0 else int(ids.max())
                raise ValueError(
                    f"site id {bad} out of range [0, {self.num_sites})"
                )
            items = self._item_list(items, n)
            if self.num_shards == 1:
                return [(0, ids.tolist(), items)]
            shards = self._shard_lut[ids]
            out = []
            for shard in range(self.num_shards):
                idx = _np.flatnonzero(shards == shard)
                if idx.shape[0] == 0:
                    continue
                sub = ids[idx]
                local = self._local_lut[sub].tolist()
                if items is None:
                    out.append((shard, local, None))
                else:
                    index_list = idx.tolist()
                    out.append(
                        (shard, local, [items[i] for i in index_list])
                    )
            return out
        return self._split_python(site_ids, items)

    def _split_python(self, site_ids, items):
        sids = list(site_ids)
        n = len(sids)
        if n == 0:
            return []
        for s in sids:
            self._checked(s)
        items = self._item_list(items, n)
        locals_by_shard: dict = {}
        items_by_shard: dict = {}
        for position, site in enumerate(sids):
            shard = self._shard_of[site]
            locals_by_shard.setdefault(shard, []).append(
                self._local_of[site]
            )
            if items is not None:
                items_by_shard.setdefault(shard, []).append(items[position])
        return [
            (shard, locals_by_shard[shard], items_by_shard.get(shard))
            for shard in sorted(locals_by_shard)
        ]

    @staticmethod
    def _item_list(items, n: int) -> Optional[list]:
        if items is None:
            return None
        if _np is not None and isinstance(items, _np.ndarray):
            items = items.tolist()
        elif not isinstance(items, list):
            items = list(items)
        if len(items) != n:
            raise ValueError(
                f"site_ids and items length mismatch: {n} vs {len(items)}"
            )
        return items

    def __repr__(self) -> str:
        return (
            f"ShardRouter(sites={self.num_sites}, shards={self.num_shards}, "
            f"sizes={self.shard_sizes})"
        )
