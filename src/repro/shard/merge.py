"""The cross-shard query merge plane.

Each shard hub runs a full, independent protocol instance over its slice
of the site fleet, so a cross-shard answer is a *merge* of per-shard
answers.  The paper's trackers are exactly the mergeable kind:

* **counts sum** — every count-style estimate (``estimate``,
  ``estimate_total``, ``estimate_rank``, ``estimate_frequency``) is a
  sum of per-site contributions, so the merged answer is the plain sum
  of per-shard answers;
* **frequency summaries merge** — heavy-hitter sets are recombined by
  taking the union of per-shard candidates, summing each candidate's
  per-shard frequency estimates, and re-thresholding against the global
  stream length (an item with global frequency ``>= phi * n`` must reach
  ``phi * n_s`` on at least one shard — pigeonhole — so the union of
  per-shard heavy hitters contains every true global heavy hitter);
* **quantile summaries merge** — rank estimators are additive, so the
  merged rank function is the per-candidate sum of per-shard rank
  estimates and a merged quantile is read off it by the same binary
  search the single-hub coordinators use.

**Error composition.**  Per-shard hubs run at the job's *full* target
``eps`` — no budget splitting is needed:

* deterministic trackers have additive absolute error at most
  ``eps * n_s`` per shard, and ``sum_s eps * n_s = eps * n``: the merged
  answer meets the same ``eps * n`` bound as a single hub;
* randomized trackers are unbiased with per-shard variance
  ``O((eps * n_s)^2)``; shards draw independent randomness (per-shard
  derived job seeds), so the merged variance is
  ``sum_s O((eps n_s)^2) <= O((eps n)^2)`` — by Chebyshev the merged
  estimate is within ``eps * n`` with at least the same constant
  probability as a single hub.  (No union bound over shards is paid:
  the composition is on variances, not on per-shard failure events.)

:func:`composed_error_bound` exposes this accounting so callers and
tests can assert against it.

The merge plane is transport-agnostic: it sees shards only through a
``fanout(method, *args)`` callable that queries every shard hub and
returns the per-shard results (inline objects, worker threads or worker
processes — the facade decides).  Methods with no merge rule raise
:class:`UnmergeableQueryError` naming the mergeable surface.
"""

from __future__ import annotations

from typing import Callable, List, Sequence

from ..service.errors import ServiceError

__all__ = [
    "UnmergeableQueryError",
    "MERGEABLE_METHODS",
    "merge_counts",
    "merged_query",
    "composed_error_bound",
]


class UnmergeableQueryError(ServiceError):
    """The query method has no cross-shard merge rule."""


#: query methods the merge plane can answer across shards, per problem
#: family (``None`` = the job's default query, resolved per scheme)
MERGEABLE_METHODS = (
    "estimate",
    "estimate_total",
    "estimate_rank",
    "estimate_frequency",
    "quantile",
    "heavy_hitters",
    "top_items",
)


def merge_counts(values: Sequence[float]) -> float:
    """Sum per-shard count-style answers (the additive merge rule).

    Empty input (no shards answered — e.g. all shards empty of a
    windowed job's mirrors) merges to ``0.0``; a single value merges to
    itself, so one shard degenerates to the unsharded answer.
    """
    return float(sum(values))


def composed_error_bound(epsilon: float, shard_elements: Sequence[int]) -> dict:
    """The merged additive error bound for a job at target ``epsilon``.

    ``shard_elements`` is the per-shard ingested element count.  The
    composed bound is ``epsilon * sum(shard_elements)`` — identical to
    the single-hub bound — because per-shard absolute errors
    ``epsilon * n_s`` are additive (deterministic) or compose on
    variances (randomized, independent shard seeds); see the module
    docstring.  Returns the full accounting for reporting/tests.
    """
    per_shard = [epsilon * n for n in shard_elements]
    total = sum(shard_elements)
    return {
        "epsilon": epsilon,
        "elements": total,
        "per_shard_bounds": per_shard,
        "bound": epsilon * total,
    }


def _require_single_method(replies) -> str:
    names = {name for name, _ in replies}
    if len(names) != 1:
        raise UnmergeableQueryError(
            f"shards resolved the default query differently: {sorted(names)}"
        )
    return next(iter(names))


def merged_query(
    fanout: Callable, problem: str, method, args: tuple, kwargs: dict,
    observe_candidates: Callable = None,
):
    """Answer one query across shards.

    Parameters
    ----------
    fanout:
        ``fanout(method, *args, **kwargs)`` queries every shard hub and
        returns a list of ``(resolved_method_name, result)`` pairs, one
        per shard, in shard order.
    problem:
        The job's problem family (``count``/``frequency``/``rank``/
        ``window``), used to pick family-specific rules.
    method / args / kwargs:
        The query as the caller issued it (``method=None`` = the job's
        default query).
    observe_candidates:
        Optional ``fn(size)`` telemetry hook called with the
        candidate-union size of each candidate-set merge (quantile /
        heavy_hitters / top_items); additive merges never call it.
    """
    if method in (None, "estimate", "estimate_total", "estimate_rank",
                  "estimate_frequency"):
        if problem == "window" and method in (None, "estimate") and not args:
            # Shards see different newest timestamps; evaluate every
            # mirror at the globally newest one so silent shards decay
            # consistently instead of each reporting its own "now".
            nows = [now for _, now in fanout("latest_timestamp")
                    if now is not None]
            if not nows:
                return 0.0
            return merge_counts(
                r for _, r in fanout("estimate", max(nows))
            )
        replies = fanout(method, *args, **kwargs)
        _require_single_method(replies)
        return merge_counts(r for _, r in replies)

    if method == "quantile":
        if len(args) != 1 or kwargs:
            raise UnmergeableQueryError(
                "cross-shard quantile takes exactly one argument (phi)"
            )
        from ..core.rank.util import quantile_from_rank_fn

        phi = args[0]
        candidates: set = set()
        for _, values in fanout("rank_candidates"):
            candidates.update(values)
        ordered = sorted(candidates)
        if observe_candidates is not None:
            observe_candidates(len(ordered))
        if not ordered:
            raise ValueError("no candidate values to search")
        total = merge_counts(r for _, r in fanout("estimate_total"))
        target = min(max(phi, 0.0), 1.0) * total

        def merged_rank(x):
            # Lazily evaluated: the binary search touches O(log C)
            # candidates, each one fan-out, instead of ranking the
            # whole candidate union on every shard.
            return merge_counts(r for _, r in fanout("estimate_rank", x))

        return quantile_from_rank_fn(ordered, merged_rank, target)

    if method == "heavy_hitters":
        if len(args) != 1 or kwargs:
            raise UnmergeableQueryError(
                "cross-shard heavy_hitters takes exactly one argument (phi)"
            )
        phi = args[0]
        candidates = set()
        for _, hitters in fanout("heavy_hitters", phi):
            candidates.update(hitters)
        ordered = sorted(candidates, key=repr)
        if observe_candidates is not None:
            observe_candidates(len(ordered))
        if not ordered:
            return {}
        sums = _summed_frequencies(fanout, ordered)
        basis = merge_counts(r for _, r in fanout("frequency_basis"))
        threshold = phi * max(1.0, basis)
        return {
            item: f for item, f in zip(ordered, sums) if f >= threshold
        }

    if method == "top_items":
        if len(args) != 1 or kwargs:
            raise UnmergeableQueryError(
                "cross-shard top_items takes exactly one argument (m)"
            )
        m = args[0]
        candidates = set()
        for _, scored in fanout("top_items", m):
            candidates.update(item for item, _ in scored)
        ordered = sorted(candidates, key=repr)
        if observe_candidates is not None:
            observe_candidates(len(ordered))
        sums = _summed_frequencies(fanout, ordered)
        merged = sorted(zip(ordered, sums), key=lambda t: -t[1])
        return merged[:m]

    raise UnmergeableQueryError(
        f"{method!r} has no cross-shard merge rule; mergeable methods: "
        f"{list(MERGEABLE_METHODS)} (use query_shard() for one shard's "
        f"full query surface)"
    )


def _summed_frequencies(fanout, items: list) -> List[float]:
    """Per-item frequency estimates summed over all shards."""
    per_shard = [r for _, r in fanout("estimate_frequencies", items)]
    return [float(sum(col)) for col in zip(*per_shard)]
