"""Versioned snapshot codec: protocol state <-> JSON-safe dicts.

Every protocol component in this library keeps its state in plain Python
containers — ints, floats, strings, lists, tuples, dicts (sometimes with
tuple keys), deques, ``random.Random`` generators and nested helper
objects (``LocalDoubler``, ``StickySampler``, ``QuantileSketchBuilder``,
...).  The codec turns any such object graph into a JSON-serializable
tree and back, preserving two properties that matter for deterministic
replay:

* **RNG streams** round-trip exactly (``random.Random`` internal state
  is captured verbatim), so a restored component continues drawing the
  same random sequence the original would have drawn.
* **Shared references** are preserved: if a site and its chunk tree hold
  the *same* ``Random`` instance, the restored objects share one
  instance too (encoded once, referenced afterwards — the same memo
  trick pickle uses).  Without this, an aliased generator would fork
  into independent copies and the transcript would diverge.

Restoration is a *merge*: ``load_object_state`` fills state into an
already-constructed component (fresh from its scheme factory), so wiring
that is rebuilt by constructors — network references, bound sites —
stays intact and is never serialized.  Classes opt attributes out of
snapshots with a ``_persist_transient_`` tuple (e.g. ``Site`` excludes
``network``); everything else in ``__dict__``/``__slots__`` is state.

Only classes defined under the ``repro`` package are encoded; anything
else is a bug in the caller and raises immediately rather than producing
a snapshot that cannot be restored.
"""

from __future__ import annotations

import importlib
import math
import random
from collections import deque

__all__ = [
    "StateEncoder",
    "StateDecoder",
    "StateCodecError",
    "PersistableState",
    "object_state",
    "load_object_state",
    "encode_value",
    "decode_value",
]

#: bump when the encoded layout changes incompatibly
CODEC_VERSION = 1

_SCALARS = (bool, int, float, str, type(None))

# Tag keys.  Every non-scalar container is a dict with exactly one of
# these reserved keys, so raw JSON objects never collide with tags
# (plain dicts are themselves encoded through TAG_DICT pair lists).
TAG_TUPLE = "__tuple__"
TAG_NTUPLE = "__ntuple__"
TAG_SET = "__set__"
TAG_FROZENSET = "__frozenset__"
TAG_DEQUE = "__deque__"
TAG_DICT = "__dict__"
TAG_RNG = "__rng__"
TAG_OBJ = "__obj__"
TAG_REF = "__ref__"
TAG_FLOAT = "__float__"


class StateCodecError(TypeError):
    """A value in a component's state cannot be snapshotted."""


def _transient_names(cls) -> frozenset:
    """Union of ``_persist_transient_`` tuples along the MRO."""
    names = set()
    for klass in cls.__mro__:
        names.update(getattr(klass, "_persist_transient_", ()))
    return frozenset(names)


def _state_attrs(obj) -> list:
    """(name, value) pairs of an object's persistent attributes.

    Covers ``__dict__`` (in insertion order, which is deterministic per
    class) and any ``__slots__`` along the MRO, minus transient names.
    """
    transient = _transient_names(type(obj))
    out = []
    seen = set()
    for name, value in getattr(obj, "__dict__", {}).items():
        if name not in transient:
            out.append((name, value))
            seen.add(name)
    for klass in type(obj).__mro__:
        for name in getattr(klass, "__slots__", ()):
            if name in seen or name in transient or name == "__dict__":
                continue
            if hasattr(obj, name):
                out.append((name, getattr(obj, name)))
                seen.add(name)
    return out


def _type_tag(cls) -> str:
    return f"{cls.__module__}:{cls.__qualname__}"


def _resolve_type(tag: str):
    module_name, _, qualname = tag.partition(":")
    if not (module_name == "repro" or module_name.startswith("repro.")):
        raise StateCodecError(f"refusing to resolve non-repro type {tag!r}")
    obj = importlib.import_module(module_name)
    for part in qualname.split("."):
        obj = getattr(obj, part)
    return obj


class StateEncoder:
    """Encode an object graph into a JSON-safe tree.

    One encoder instance = one snapshot scope: objects and RNGs shared
    across everything encoded through it are written once and referenced
    afterwards.
    """

    def __init__(self):
        self._memo = {}  # id(obj) -> ref index
        self._keep = []  # keep encoded objects alive so ids stay unique
        self._next_ref = 0

    def _remember(self, obj) -> int:
        ref = self._next_ref
        self._next_ref += 1
        self._memo[id(obj)] = ref
        self._keep.append(obj)
        return ref

    def encode(self, value):
        if isinstance(value, float):
            # bool/int/str/None pass through; floats need the non-finite
            # escape (JSON has no inf/nan).
            if math.isfinite(value):
                return value
            return {TAG_FLOAT: repr(value)}
        if isinstance(value, _SCALARS):
            return value
        if isinstance(value, list):
            return [self.encode(v) for v in value]
        if isinstance(value, tuple):
            cls = type(value)
            if (
                cls is not tuple
                and cls.__module__.split(".", 1)[0] == "repro"
            ):
                # repro-defined tuple subclasses (e.g. the protocol
                # Message namedtuple, which rides *inside* payloads when
                # schemes wrap each other) keep their class, so decoding
                # rebuilds a real Message, not an anonymous triple.
                return {
                    TAG_NTUPLE: _type_tag(cls),
                    "values": [self.encode(v) for v in value],
                }
            return {TAG_TUPLE: [self.encode(v) for v in value]}
        if isinstance(value, dict):
            return {
                TAG_DICT: [
                    [self.encode(k), self.encode(v)] for k, v in value.items()
                ]
            }
        if isinstance(value, deque):
            return {TAG_DEQUE: [self.encode(v) for v in value]}
        if isinstance(value, (set, frozenset)):
            tag = TAG_FROZENSET if isinstance(value, frozenset) else TAG_SET
            # Order the *elements* before encoding (not the encoded
            # forms): memo refs are assigned in encode order, so a
            # definition always precedes its references, and the output
            # does not depend on set-iteration order.
            return {tag: [self.encode(v) for v in sorted(value, key=repr)]}
        if isinstance(value, random.Random):
            ref = self._memo.get(id(value))
            if ref is not None:
                return {TAG_REF: ref}
            version, internal, gauss = value.getstate()
            return {
                TAG_RNG: self._remember(value),
                "state": [version, list(internal), gauss],
            }
        if type(value).__module__.split(".", 1)[0] == "repro":
            ref = self._memo.get(id(value))
            if ref is not None:
                return {TAG_REF: ref}
            ref = self._remember(value)
            state = {
                name: self.encode(v) for name, v in _state_attrs(value)
            }
            return {TAG_OBJ: _type_tag(type(value)), "id": ref, "state": state}
        raise StateCodecError(
            f"cannot snapshot {type(value).__module__}.{type(value).__qualname__}"
        )


class StateDecoder:
    """Decode a JSON-safe tree, merging into live objects where possible.

    ``merge(target, encoded)`` returns the restored value.  When
    ``target`` is an existing object of the encoded type, state is loaded
    *into* it (preserving constructor-built wiring such as network
    references) and the object itself is returned; otherwise a fresh
    instance is built via ``__new__`` and filled.  Shared references
    resolve to one restored object either way.
    """

    def __init__(self):
        self._by_ref = {}

    def merge(self, target, encoded):
        if isinstance(encoded, _SCALARS):
            return encoded
        if isinstance(encoded, list):
            if (
                isinstance(target, list)
                and len(target) == len(encoded)
            ):
                # Elementwise merge: keeps constructor-built element
                # objects (e.g. a boosted site's inner sites) alive.
                return [self.merge(t, e) for t, e in zip(target, encoded)]
            return [self.merge(None, e) for e in encoded]
        if not isinstance(encoded, dict):
            raise StateCodecError(f"malformed snapshot node: {encoded!r}")
        if TAG_FLOAT in encoded:
            return float(encoded[TAG_FLOAT])
        if TAG_REF in encoded:
            return self._by_ref[encoded[TAG_REF]]
        if TAG_TUPLE in encoded:
            return tuple(self.merge(None, e) for e in encoded[TAG_TUPLE])
        if TAG_NTUPLE in encoded:
            cls = _resolve_type(encoded[TAG_NTUPLE])
            return cls(*(self.merge(None, e) for e in encoded["values"]))
        if TAG_DEQUE in encoded:
            return deque(self.merge(None, e) for e in encoded[TAG_DEQUE])
        if TAG_SET in encoded:
            return {self.merge(None, e) for e in encoded[TAG_SET]}
        if TAG_FROZENSET in encoded:
            return frozenset(
                self.merge(None, e) for e in encoded[TAG_FROZENSET]
            )
        if TAG_DICT in encoded:
            out = {}
            source = target if isinstance(target, dict) else {}
            for enc_key, enc_value in encoded[TAG_DICT]:
                key = self.merge(None, enc_key)
                out[key] = self.merge(source.get(key), enc_value)
            return out
        if TAG_RNG in encoded:
            rng = target if isinstance(target, random.Random) else random.Random()
            version, internal, gauss = encoded["state"]
            rng.setstate((version, tuple(internal), gauss))
            self._by_ref[encoded[TAG_RNG]] = rng
            return rng
        if TAG_OBJ in encoded:
            cls = _resolve_type(encoded[TAG_OBJ])
            obj = target if isinstance(target, cls) else cls.__new__(cls)
            self._by_ref[encoded["id"]] = obj
            for name, enc_value in encoded["state"].items():
                current = getattr(obj, name, None)
                setattr(obj, name, self.merge(current, enc_value))
            return obj
        raise StateCodecError(f"unknown snapshot tag in {sorted(encoded)!r}")


def object_state(obj) -> dict:
    """Snapshot one component into a JSON-safe dict (fresh scope)."""
    return StateEncoder().encode(obj)


def load_object_state(obj, state) -> None:
    """Restore a component in place from :func:`object_state` output."""
    decoder = StateDecoder()
    restored = decoder.merge(obj, state)
    if restored is not obj:
        raise StateCodecError(
            f"state is for {state.get(TAG_OBJ)!r}, not {type(obj).__qualname__}"
        )


class PersistableState:
    """Inheritable ``state_dict`` / ``load_state_dict`` pair.

    Mixed into sketches and protocol helpers so every stateful building
    block exposes the same two persistence hooks the runtime base
    classes define.  The codec itself reflects over attributes (it does
    not call these hooks when recursing), so inheriting adds the public
    API without changing the encoded layout.
    """

    def state_dict(self) -> dict:
        """Snapshot this component's state (JSON-safe, versioned)."""
        return object_state(self)

    def load_state_dict(self, state: dict) -> None:
        """Restore state captured by :meth:`state_dict` in place."""
        load_object_state(self, state)


def encode_value(value):
    """Encode a standalone value (fresh scope); see :class:`StateEncoder`."""
    return StateEncoder().encode(value)


def decode_value(encoded):
    """Inverse of :func:`encode_value` for values without live targets."""
    return StateDecoder().merge(None, encoded)
