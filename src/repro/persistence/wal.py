"""Write-ahead event log with segment rotation.

The durability contract of the tracking service: every mutation of
protocol state — an ingested batch, a job (un)registration — is appended
here *before* it is applied to the in-memory protocol stacks.  A crash
therefore loses at most the mutation being written, never an applied
one; recovery replays the tail after the latest snapshot through the
normal batched engine and lands on transcript-identical state.

Records are JSON lines, grouped into fixed-size segments named by the
sequence number of their first record (``wal-000000000123.seg``).
Rotation keeps individual files small so snapshot-covered prefixes can
be deleted wholesale (:meth:`WriteAheadLog.truncate_through`) without
rewriting anything.

A torn final line (crash mid-append) is silently discarded on both
replay and reopen: by the write-ahead ordering, a record that never
finished writing was never applied, and it was never acknowledged.

Batch payloads keep item values exact: scalar items are stored raw and
tuple-or-richer items go through the snapshot codec, so replayed events
compare (and hash) identically to the originals.
"""

from __future__ import annotations

import base64
import json
import os
from typing import Iterator, List, Optional, Tuple

try:  # gate: the log must work on numpy-less installs
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

from .codec import _SCALARS as _codec_scalars
from .codec import decode_value, encode_value

__all__ = [
    "WriteAheadLog",
    "WalCorruptionError",
    "encode_int_array",
    "decode_int_array",
    "encode_items",
    "decode_items",
]

#: record type tags
REC_BATCH = "batch"
REC_REGISTER = "register"
REC_UNREGISTER = "unregister"

_SEGMENT_PREFIX = "wal-"
_SEGMENT_SUFFIX = ".seg"


class WalCorruptionError(RuntimeError):
    """A WAL segment is unreadable somewhere other than its final line."""


def _segment_name(first_seq: int) -> str:
    return f"{_SEGMENT_PREFIX}{first_seq:012d}{_SEGMENT_SUFFIX}"


_SCALAR_TYPES = frozenset(_codec_scalars)
_INT32_MIN, _INT32_MAX = -(2**31), 2**31 - 1


def _pack_int_array(arr) -> dict:
    """Base64-pack a numpy integer array (int32 when it fits).

    An order of magnitude cheaper to write than a JSON number list on
    the ingest hot path, and decoded back to exact Python ints.
    """
    lo, hi = int(arr.min()), int(arr.max())
    if _INT32_MIN <= lo and hi <= _INT32_MAX:
        arr, tag = arr.astype(_np.int32, copy=False), "i4"
    else:
        arr, tag = arr.astype(_np.int64, copy=False), "i8"
    return {tag: base64.b64encode(arr.tobytes()).decode("ascii")}


def encode_int_array(values):
    """Pack a site-id or all-int item list into a JSON-safe payload.

    Values outside int64 (or anything numpy rejects) fall back to the
    raw JSON list path, which is lossless for arbitrary Python ints.
    Shared with the network wire format (:mod:`repro.net.wire`), so
    batches cost the same whether they hit the log or the wire.
    """
    if _np is not None:
        try:
            if isinstance(values, _np.ndarray):
                if values.size == 0:
                    return []
                return _pack_int_array(values)
            if values:
                return _pack_int_array(_np.asarray(values, dtype=_np.int64))
        except (OverflowError, TypeError, ValueError):
            pass
    return values if isinstance(values, list) else list(values)


def decode_int_array(payload) -> list:
    """Inverse of :func:`encode_int_array`; always a list of exact ints."""
    if isinstance(payload, dict):
        if _np is None:  # pragma: no cover
            raise WalCorruptionError(
                "WAL was written with numpy-packed arrays; numpy is "
                "required to replay it"
            )
        (tag, blob), = payload.items()
        dtype = _np.int32 if tag == "i4" else _np.int64
        return _np.frombuffer(base64.b64decode(blob), dtype=dtype).tolist()
    return payload


def encode_items(items) -> Tuple[Optional[object], bool]:
    """(payload, codec_flag) for a batch's item list.

    All-int payloads take the packed-array fast path, other scalar mixes
    are stored as raw JSON, and anything richer (tuples, e.g. the
    labeled multi-tenant items) goes through the snapshot codec so
    decoding restores identical — hashable — values.
    """
    if items is None:
        return None, False
    items = list(items)
    types = set(map(type, items))
    if types <= {int}:
        return encode_int_array(items), False
    if (
        _np is not None
        and types
        and all(
            t is not bool and issubclass(t, (int, _np.integer)) for t in types
        )
    ):
        # numpy scalars smuggled in a plain list: replay as exact ints
        # (== and hash-equivalent, so transcripts are unaffected).
        return encode_int_array([int(v) for v in items]), False
    if types <= _SCALAR_TYPES:
        return items, False
    return [
        v if type(v) in _SCALAR_TYPES else encode_value(v) for v in items
    ], True


def decode_items(payload, coded: bool = False) -> Optional[list]:
    """Inverse of :func:`encode_items`; items compare and hash exactly."""
    if payload is None:
        return None
    if isinstance(payload, dict):
        return decode_int_array(payload)
    if coded:
        return [
            decode_value(v) if isinstance(v, (dict, list)) else v
            for v in payload
        ]
    return payload


def _peek_seq(line: bytes) -> Optional[int]:
    """Sequence number of a record line without a full JSON parse.

    Every record is ``["<type>",<seq>,...]``; the bytes between the
    first two commas are the seq.  Returns None when the line does not
    match that shape (caller falls back to a full parse).
    """
    first = line.find(b",")
    if first < 0:
        return None
    second = line.find(b",", first + 1)
    if second < 0:
        second = line.find(b"]", first + 1)
        if second < 0:
            return None
    try:
        return int(line[first + 1 : second])
    except ValueError:
        return None


class WriteAheadLog:
    """Append-only, segment-rotated event log under one directory.

    Parameters
    ----------
    directory:
        Where segments live; created if missing.
    segment_records:
        Records per segment before rotating to a new file.
    sync:
        Force an ``fsync`` after every append.  Off by default: the
        service's durability point is then the OS page cache (process
        death safe, power loss not), which is the usual trade for a
        negligible-overhead hot path.
    """

    def __init__(self, directory: str, segment_records: int = 4096,
                 sync: bool = False):
        if segment_records < 1:
            raise ValueError("segment_records must be positive")
        self.directory = directory
        self.segment_records = segment_records
        self.sync = sync
        os.makedirs(directory, exist_ok=True)
        self._file = None
        self._records_in_segment = 0
        self._undo = None
        self.last_seq = -1
        #: bytes appended by this process (monotonic; rollbacks do not
        #: subtract — the write happened, which is what telemetry asks)
        self.bytes_appended = 0
        self.records_appended = 0
        self._recover_tail()

    # -- segment bookkeeping ----------------------------------------------

    def _segments(self) -> List[Tuple[int, str]]:
        """Sorted (first_seq, path) pairs of existing segments."""
        out = []
        for name in os.listdir(self.directory):
            if name.startswith(_SEGMENT_PREFIX) and name.endswith(_SEGMENT_SUFFIX):
                seq_text = name[len(_SEGMENT_PREFIX):-len(_SEGMENT_SUFFIX)]
                try:
                    first_seq = int(seq_text)
                except ValueError:
                    continue
                out.append((first_seq, os.path.join(self.directory, name)))
        out.sort()
        return out

    def _recover_tail(self) -> None:
        """Find the last complete record; drop a torn final line.

        Only newline structure is scanned (C speed) and only the final
        line is parsed — reopening a multi-megabyte segment costs
        milliseconds, which keeps recovery dominated by actual replay.
        """
        segments = self._segments()
        if not segments:
            return
        first_seq, path = segments[-1]
        with open(path, "rb") as f:
            data = f.read()
        keep = len(data)
        last_seq = None
        while keep > 0:
            end = data.rfind(b"\n", 0, keep)
            if end + 1 != keep:
                keep = end + 1  # torn tail: record never applied/acked
                continue
            start = data.rfind(b"\n", 0, end) + 1
            last_seq = _peek_seq(data[start:end])
            if last_seq is not None:
                break
            keep = start  # trailing garbage line: drop it too
        if keep < len(data):
            with open(path, "r+b") as f:
                f.truncate(keep)
        self.last_seq = first_seq - 1 if last_seq is None else last_seq
        self._records_in_segment = data.count(b"\n", 0, keep)
        # Older segments must be complete; their last seq is implied by
        # the next segment's first seq, so no scan is needed here.

    def _open_for_append(self) -> None:
        if self._file is not None:
            return
        segments = self._segments()
        if segments and self._records_in_segment < self.segment_records:
            self._file = open(segments[-1][1], "ab")
        else:
            self._rotate()

    def _rotate(self) -> None:
        if self._file is not None:
            self._file.close()
        path = os.path.join(self.directory, _segment_name(self.last_seq + 1))
        self._file = open(path, "ab")
        self._records_in_segment = 0

    # -- appends -----------------------------------------------------------

    def _append(self, record: list) -> int:
        self._open_for_append()
        if self._records_in_segment >= self.segment_records:
            self._rotate()
        seq = self.last_seq + 1
        record[1] = seq
        line = json.dumps(record, separators=(",", ":")) + "\n"
        self._undo = (self._file.tell(), self.last_seq, self._records_in_segment)
        encoded = line.encode()
        self._file.write(encoded)
        self._file.flush()
        if self.sync:
            os.fsync(self._file.fileno())
        self.last_seq = seq
        self._records_in_segment += 1
        self.bytes_appended += len(encoded)
        self.records_appended += 1
        return seq

    def ensure_seq_floor(self, seq: int) -> None:
        """Never hand out sequence numbers at or below ``seq``.

        A checkpoint that covers every record truncates the log to
        nothing; on the next recovery the files alone cannot tell where
        numbering left off.  The recovery manager calls this with the
        snapshot's ``wal_seq`` so post-restore appends (and the
        snapshots they lead to) stay monotonic.
        """
        if seq > self.last_seq:
            if self._segments():
                raise RuntimeError(
                    "snapshot is ahead of a non-empty WAL; the log "
                    "directory has been tampered with"
                )
            self.last_seq = seq

    def rollback_last(self) -> None:
        """Erase the most recent append (write-ahead + failed apply).

        The service logs a mutation ahead of applying it; if the apply
        raises, the logged record must not survive to poison recovery.
        Truncating the active segment back to its pre-append length
        restores the exact on-disk state.
        """
        if self._undo is None or self._file is None:
            raise RuntimeError("no append to roll back")
        offset, last_seq, records = self._undo
        self._undo = None
        self._file.truncate(offset)
        self._file.seek(offset)
        self.last_seq = last_seq
        self._records_in_segment = records

    def append_batch(self, site_ids, items=None) -> int:
        """Log one ingested batch ahead of applying it; returns its seq."""
        if hasattr(items, "tolist"):  # numpy array
            items = items.tolist()
        payload, coded = encode_items(items)
        return self._append(
            [REC_BATCH, -1, encode_int_array(site_ids), payload, coded]
        )

    def append_register(self, name: str, scheme_state, seed: int,
                        space_budget_words) -> int:
        """Log a job registration (scheme encoded via the codec)."""
        return self._append(
            [REC_REGISTER, -1, name, scheme_state, seed, space_budget_words]
        )

    def append_unregister(self, name: str) -> int:
        """Log a job removal."""
        return self._append([REC_UNREGISTER, -1, name])

    # -- replay ------------------------------------------------------------

    def records(self, after_seq: int = -1) -> Iterator[list]:
        """Yield complete records with seq > ``after_seq``, in order.

        Batch records come out as ``[type, seq, site_ids, items]`` with
        items decoded back to their original values.
        """
        segments = self._segments()
        for index, (first_seq, path) in enumerate(segments):
            last_segment = index == len(segments) - 1
            if index + 1 < len(segments) and segments[index + 1][0] <= after_seq:
                continue  # wholly covered by the snapshot
            with open(path, "rb") as f:
                for raw in f:
                    if not raw.endswith(b"\n"):
                        if last_segment:
                            break  # torn tail
                        raise WalCorruptionError(f"truncated record in {path}")
                    # Cheap seq peek skips snapshot-covered records
                    # without paying for a full JSON parse.
                    peeked = _peek_seq(raw)
                    if peeked is not None and peeked <= after_seq:
                        continue
                    try:
                        record = json.loads(raw)
                    except ValueError:
                        if last_segment:
                            break
                        raise WalCorruptionError(f"corrupt record in {path}")
                    if record[1] <= after_seq:
                        continue
                    if record[0] == REC_BATCH:
                        _, seq, site_ids, payload, coded = record
                        yield [
                            REC_BATCH,
                            seq,
                            decode_int_array(site_ids),
                            decode_items(payload, coded),
                        ]
                    else:
                        yield record

    # -- maintenance -------------------------------------------------------

    def truncate_through(self, seq: int) -> int:
        """Delete segments whose records are all <= ``seq``.

        Called after a snapshot covering ``seq`` is durably written.
        Returns the number of segments removed.  When *everything* is
        covered the active segment goes too (recovery then reads no
        records at all); appends continue into a fresh segment.
        """
        segments = self._segments()
        removed = 0
        if segments and seq >= self.last_seq:
            if self._file is not None:
                self._file.close()
                self._file = None
            for _, path in segments:
                os.remove(path)
            self._records_in_segment = 0
            return len(segments)
        for index, (first_seq, path) in enumerate(segments):
            next_first = (
                segments[index + 1][0] if index + 1 < len(segments) else None
            )
            if next_first is None or next_first > seq + 1:
                break  # segment may contain records beyond seq (or is active)
            os.remove(path)
            removed += 1
        return removed

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
