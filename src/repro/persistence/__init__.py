"""Durability subsystem: snapshot codec, write-ahead log, recovery.

Three layers, usable separately or through
:class:`~repro.service.TrackingService`'s ``checkpoint_dir`` wiring:

* :mod:`repro.persistence.codec` — versioned snapshot codec.  Every
  protocol component (sites, coordinators, sketches, ledgers, RNG
  streams) round-trips to JSON-safe dicts via ``state_dict()`` /
  ``load_state_dict()``, preserving shared-RNG aliasing so restored
  components draw the same random sequences.
* :mod:`repro.persistence.wal` — segment-rotated write-ahead event log;
  ingested batches and job (un)registrations are logged ahead of the
  hot path and replayed on recovery.
* :mod:`repro.persistence.recovery` — :class:`CheckpointManager` and
  :func:`restore_service`: newest snapshot + WAL tail -> a service
  transcript-identical to one that never died.

Quickstart::

    service = TrackingService(num_sites=32, seed=7, checkpoint_dir="ckpt")
    service.register("total", RandomizedCountScheme(0.01))
    service.ingest(site_ids, items)       # WAL'd ahead of the hot path
    service.checkpoint()                  # snapshot + WAL prune
    ...                                   # process dies here
    service = TrackingService.restore("ckpt")   # identical state, resumes
"""

from .codec import (
    StateCodecError,
    StateDecoder,
    StateEncoder,
    decode_value,
    encode_value,
    load_object_state,
    object_state,
)
from .recovery import CheckpointManager, restore_service
from .snapshot import (
    SnapshotError,
    latest_snapshot,
    list_snapshots,
    prune_snapshots,
    read_snapshot,
    write_snapshot,
)
from .wal import (
    WalCorruptionError,
    WriteAheadLog,
    decode_int_array,
    decode_items,
    encode_int_array,
    encode_items,
)

__all__ = [
    "CheckpointManager",
    "SnapshotError",
    "StateCodecError",
    "StateDecoder",
    "StateEncoder",
    "WalCorruptionError",
    "WriteAheadLog",
    "decode_int_array",
    "decode_items",
    "decode_value",
    "encode_int_array",
    "encode_items",
    "encode_value",
    "latest_snapshot",
    "list_snapshots",
    "load_object_state",
    "object_state",
    "prune_snapshots",
    "read_snapshot",
    "restore_service",
    "write_snapshot",
]
