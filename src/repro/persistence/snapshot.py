"""Versioned snapshot files: atomic write, latest-first discovery.

A snapshot is one JSON document holding a full ``TrackingService`` state
dict (see :meth:`TrackingService.state_dict`) plus the WAL position it
covers.  Files are named ``snapshot-<covered>.json`` where ``covered``
is the number of WAL records folded in (``wal_seq + 1``), so sorting by
name finds the newest.  Writes go through a temp file + ``rename`` so a
crash mid-checkpoint can never leave a half-written snapshot where the
recovery manager would find it.
"""

from __future__ import annotations

import json
import os
from typing import List, Optional, Tuple

__all__ = [
    "SNAPSHOT_FORMAT",
    "SNAPSHOT_VERSION",
    "SnapshotError",
    "write_snapshot",
    "read_snapshot",
    "list_snapshots",
    "latest_snapshot",
    "prune_snapshots",
]

SNAPSHOT_FORMAT = "repro-tracking-snapshot"
SNAPSHOT_VERSION = 1

_PREFIX = "snapshot-"
_SUFFIX = ".json"


class SnapshotError(RuntimeError):
    """Snapshot file missing, malformed, or from an unknown version."""


def _snapshot_path(directory: str, covered: int) -> str:
    return os.path.join(directory, f"{_PREFIX}{covered:012d}{_SUFFIX}")


def list_snapshots(directory: str) -> List[Tuple[int, str]]:
    """Sorted (covered_records, path) pairs, oldest first."""
    if not os.path.isdir(directory):
        return []
    out = []
    for name in os.listdir(directory):
        if name.startswith(_PREFIX) and name.endswith(_SUFFIX):
            try:
                covered = int(name[len(_PREFIX):-len(_SUFFIX)])
            except ValueError:
                continue
            out.append((covered, os.path.join(directory, name)))
    out.sort()
    return out


def write_snapshot(directory: str, state: dict) -> str:
    """Atomically persist one service state dict; returns the path.

    ``state`` must carry ``wal_seq`` (the last WAL record it covers,
    ``-1`` for none); the envelope adds format and version markers.
    """
    os.makedirs(directory, exist_ok=True)
    covered = state.get("wal_seq", -1) + 1
    document = {
        "format": SNAPSHOT_FORMAT,
        "version": SNAPSHOT_VERSION,
        "state": state,
    }
    path = _snapshot_path(directory, covered)
    tmp = path + ".tmp"
    with open(tmp, "w") as f:
        json.dump(document, f, separators=(",", ":"))
        f.flush()
        os.fsync(f.fileno())
    os.replace(tmp, path)
    return path


def read_snapshot(path: str) -> dict:
    """Load and validate one snapshot file; returns the state dict."""
    try:
        with open(path) as f:
            document = json.load(f)
    except (OSError, ValueError) as exc:
        raise SnapshotError(f"unreadable snapshot {path}: {exc}") from exc
    if document.get("format") != SNAPSHOT_FORMAT:
        raise SnapshotError(f"{path} is not a tracking-service snapshot")
    if document.get("version") != SNAPSHOT_VERSION:
        raise SnapshotError(
            f"{path} is snapshot version {document.get('version')!r}; "
            f"this build reads version {SNAPSHOT_VERSION}"
        )
    return document["state"]


def latest_snapshot(directory: str) -> Optional[dict]:
    """State dict of the newest snapshot in ``directory``, or None."""
    snapshots = list_snapshots(directory)
    if not snapshots:
        return None
    return read_snapshot(snapshots[-1][1])


def prune_snapshots(directory: str, keep: int = 2) -> int:
    """Delete all but the ``keep`` newest snapshots; returns count removed."""
    snapshots = list_snapshots(directory)
    removed = 0
    for _, path in snapshots[:-keep] if keep > 0 else snapshots:
        os.remove(path)
        removed += 1
    return removed
