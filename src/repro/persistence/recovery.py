"""Recovery manager: snapshot + WAL tail -> a transcript-identical service.

One :class:`CheckpointManager` owns a checkpoint directory::

    <dir>/
        snapshot-000000000000.json      # oldest retained snapshot
        snapshot-000000000042.json      # newest (name = WAL records covered)
        wal/wal-000000000042.seg        # records past the newest snapshot
        ...

Recovery (:func:`restore_service`) loads the newest snapshot — protocol
state, RNG streams, comm/space ledgers, everything — and replays the WAL
records it does not cover through the service's normal registration and
batched-ingestion paths.  Because every component's randomness and
counters were restored exactly, the replayed tail produces the same
messages in the same order as the original run: a killed-and-restarted
service is indistinguishable (transcripts, ledgers, query answers) from
one that never died.

Checkpointing (:meth:`CheckpointManager.save`) is the inverse: write the
state atomically, then drop WAL segments and old snapshots the new
snapshot has made redundant.
"""

from __future__ import annotations

import os
from typing import Optional

from .codec import decode_value
from .snapshot import latest_snapshot, prune_snapshots, write_snapshot
from .wal import (
    REC_BATCH,
    REC_REGISTER,
    REC_UNREGISTER,
    WriteAheadLog,
)

__all__ = ["CheckpointManager", "restore_service"]

_WAL_SUBDIR = "wal"


class CheckpointManager:
    """Snapshot files plus the write-ahead log under one directory."""

    def __init__(self, directory: str, segment_records: int = 4096,
                 sync: bool = False, keep_snapshots: int = 2):
        self.directory = directory
        self.keep_snapshots = max(1, keep_snapshots)
        os.makedirs(directory, exist_ok=True)
        self.wal = WriteAheadLog(
            os.path.join(directory, _WAL_SUBDIR),
            segment_records=segment_records,
            sync=sync,
        )

    def has_data(self) -> bool:
        """True if the directory already holds a snapshot or WAL records."""
        return self.latest_state() is not None or self.wal.last_seq >= 0

    def latest_state(self) -> Optional[dict]:
        return latest_snapshot(self.directory)

    def save(self, service) -> str:
        """Checkpoint a service: snapshot, then prune covered WAL/snapshots."""
        return self.save_state(service.state_dict())

    def save_state(self, state: dict) -> str:
        """Checkpoint a pre-collected state dict (``wal_seq`` required).

        The state-collection side of :meth:`save`, split out for callers
        whose state does not live in one object — the distributed runtime
        (:mod:`repro.net.cluster`) gathers actor snapshots over the wire
        and hands the assembled bundle here.
        """
        path = write_snapshot(self.directory, state)
        self.wal.truncate_through(state["wal_seq"])
        prune_snapshots(self.directory, self.keep_snapshots)
        return path

    def close(self) -> None:
        self.wal.close()


def replay_into(service, manager: CheckpointManager, after_seq: int) -> int:
    """Replay WAL records past ``after_seq`` into a restored service.

    Registration and batch records go through the service's normal code
    paths (flagged as replay so they are not re-logged).  Returns the
    number of records applied.
    """
    applied = 0
    service._replaying = True
    try:
        for record in manager.wal.records(after_seq):
            kind, seq = record[0], record[1]
            if kind == REC_BATCH:
                _, _, site_ids, items = record
                service.ingest(site_ids, items)
            elif kind == REC_REGISTER:
                _, _, name, scheme_state, seed, budget = record
                service.register(
                    name,
                    decode_value(scheme_state),
                    seed=seed,
                    space_budget_words=budget,
                )
            elif kind == REC_UNREGISTER:
                service.unregister(record[2])
            service._wal_seq = seq
            applied += 1
    finally:
        service._replaying = False
    return applied


def restore_service(directory: str, segment_records: int = 4096,
                    sync: bool = False, keep_snapshots: int = 2):
    """Rebuild a :class:`~repro.service.TrackingService` from disk.

    Loads the newest snapshot under ``directory``, replays the WAL tail,
    and hands back a live service that continues logging to the same
    directory.  Raises ``FileNotFoundError`` if the directory holds no
    snapshot (a service with ``checkpoint_dir`` always writes an initial
    one, so this means the directory was never a checkpoint dir).
    """
    from ..service.service import TrackingService  # deferred: import cycle

    # Probe before CheckpointManager touches the filesystem: restoring a
    # mistyped path must not conjure an empty checkpoint directory.
    state = latest_snapshot(directory)
    if state is None:
        raise FileNotFoundError(
            f"no snapshot under {directory!r}; nothing to restore"
        )
    manager = CheckpointManager(
        directory,
        segment_records=segment_records,
        sync=sync,
        keep_snapshots=keep_snapshots,
    )
    # A fully truncated WAL carries no sequence history; re-anchor it at
    # the snapshot's position so post-restore records stay monotonic.
    manager.wal.ensure_seq_floor(state.get("wal_seq", -1))
    service = TrackingService.from_state(state)
    replay_into(service, manager, state.get("wal_seq", -1))
    service._attach_checkpoints(manager)
    return service
