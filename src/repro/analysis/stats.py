"""Accuracy evaluation: run a scheme against ground truth.

The paper's guarantees are of the form "at any time, the estimate is
within eps*n with probability >= 0.9".  These helpers drive a simulation
while maintaining exact truth, sample the estimate at checkpoints, and
report success rates and error profiles.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass, field

from ..runtime import Simulation

__all__ = [
    "AccuracyReport",
    "evaluate_count_accuracy",
    "evaluate_frequency_accuracy",
    "evaluate_rank_accuracy",
    "repeat_success_rate",
]


@dataclass
class AccuracyReport:
    """Error profile of one tracking run."""

    checkpoints: int = 0
    within_eps: int = 0
    errors: list = field(default_factory=list)  # |err| / n per checkpoint

    @property
    def success_rate(self) -> float:
        return self.within_eps / self.checkpoints if self.checkpoints else 1.0

    @property
    def mean_relative_error(self) -> float:
        return sum(self.errors) / len(self.errors) if self.errors else 0.0

    @property
    def max_relative_error(self) -> float:
        return max(self.errors) if self.errors else 0.0


def evaluate_count_accuracy(
    scheme, k: int, stream, eps: float, checkpoint_every: int = 500
) -> tuple:
    """Run a count tracker; compare estimate() to the true count."""
    sim = Simulation(scheme, k)
    report = AccuracyReport()
    truth = 0
    for site_id, item in stream:
        sim.process(site_id, item)
        truth += 1
        if truth % checkpoint_every == 0:
            estimate = sim.coordinator.estimate()
            rel = abs(estimate - truth) / truth
            report.checkpoints += 1
            report.errors.append(rel)
            if rel <= eps:
                report.within_eps += 1
    return report, sim


def evaluate_frequency_accuracy(
    scheme,
    k: int,
    stream,
    eps: float,
    track_items,
    checkpoint_every: int = 500,
) -> tuple:
    """Run a frequency tracker; compare per-item estimates to truth.

    ``track_items`` are the query items checked at every checkpoint;
    the error unit is eps * n (n = current total count) per the paper.
    """
    sim = Simulation(scheme, k)
    report = AccuracyReport()
    truth = {}
    n = 0
    for site_id, item in stream:
        sim.process(site_id, item)
        truth[item] = truth.get(item, 0) + 1
        n += 1
        if n % checkpoint_every == 0:
            for q in track_items:
                estimate = sim.coordinator.estimate_frequency(q)
                rel = abs(estimate - truth.get(q, 0)) / n
                report.checkpoints += 1
                report.errors.append(rel)
                if rel <= eps:
                    report.within_eps += 1
    return report, sim


def evaluate_rank_accuracy(
    scheme,
    k: int,
    stream,
    eps: float,
    query_points,
    checkpoint_every: int = 1000,
) -> tuple:
    """Run a rank tracker; compare estimate_rank to the exact rank."""
    sim = Simulation(scheme, k)
    report = AccuracyReport()
    seen = []
    n = 0
    for site_id, value in stream:
        sim.process(site_id, value)
        bisect.insort(seen, value)
        n += 1
        if n % checkpoint_every == 0:
            for q in query_points:
                true_rank = bisect.bisect_left(seen, q)
                estimate = sim.coordinator.estimate_rank(q)
                rel = abs(estimate - true_rank) / n
                report.checkpoints += 1
                report.errors.append(rel)
                if rel <= eps:
                    report.within_eps += 1
    return report, sim


def repeat_success_rate(run_once, repetitions: int) -> float:
    """Fraction of ``repetitions`` independent runs where ``run_once(seed)``
    returns True.  Used for fixed-time-instance probability claims."""
    wins = sum(1 for seed in range(repetitions) if run_once(seed))
    return wins / repetitions
