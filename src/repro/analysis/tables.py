"""Fixed-width table rendering for benchmark and example output."""

from __future__ import annotations

__all__ = ["render_table", "format_number"]


def format_number(value) -> str:
    """Compact human formatting: ints as ints, floats to 3 sig figs."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return f"{value:,}"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.3g}"
        return f"{value:.3g}"
    return str(value)


def render_table(headers, rows, title: str = "") -> str:
    """Render rows (lists of cells) under headers as a fixed-width table."""
    cells = [[format_number(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in cells:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
