"""Closed-form cost formulas from Table 1 of the paper.

All formulas are stated with constant 1 (the paper gives asymptotics);
benchmarks print them next to measured numbers so the *shape* (scaling in
k, eps, N and the sqrt(k) separations) can be compared, not absolute
constants.
"""

from __future__ import annotations

import math

__all__ = [
    "det_count_comm",
    "rand_count_comm",
    "det_frequency_comm",
    "rand_frequency_comm",
    "det_rank_comm",
    "rand_rank_comm",
    "sampling_comm",
    "rand_frequency_space",
    "rand_rank_space",
    "cormode05_rank_comm",
    "improvement_factor",
]


def _log(x: float) -> float:
    return math.log2(max(2.0, x))


def det_count_comm(k: int, eps: float, n: int) -> float:
    """Theta(k/eps * log N): the trivial deterministic tracker."""
    return k / eps * _log(n)


def rand_count_comm(k: int, eps: float, n: int) -> float:
    """Theta(sqrt(k)/eps * log N): Theorem 2.1 (plus the k log N term)."""
    return (math.sqrt(k) / eps + k) * _log(n)


def det_frequency_comm(k: int, eps: float, n: int) -> float:
    """Theta(k/eps * log N): the deterministic optimum [29]."""
    return k / eps * _log(n)


def rand_frequency_comm(k: int, eps: float, n: int) -> float:
    """O(sqrt(k)/eps * log N): Theorem 3.1."""
    return (math.sqrt(k) / eps + k) * _log(n)


def det_rank_comm(k: int, eps: float, n: int) -> float:
    """O(k/eps * log N * log^2(1/eps)): the deterministic bound of [29]."""
    return k / eps * _log(n) * _log(1.0 / eps) ** 2


def rand_rank_comm(k: int, eps: float, n: int) -> float:
    """O(sqrt(k)/eps * log N * log^1.5(1/(eps sqrt(k)))): Theorem 4.1."""
    h = max(1.0, _log(1.0 / (eps * math.sqrt(k))))
    return (math.sqrt(k) / eps + k) * _log(n) * h**1.5


def cormode05_rank_comm(k: int, eps: float, n: int) -> float:
    """O(k/eps^2 * log N): the Cormode et al. [6] baseline."""
    return k / eps**2 * _log(n)


def sampling_comm(k: int, eps: float, n: int) -> float:
    """O((1/eps^2 + k) * log N): continuous sampling [9]."""
    return (1.0 / eps**2 + k) * _log(n)


def rand_frequency_space(k: int, eps: float) -> float:
    """O(1/(eps sqrt(k))) words per site (Theorem 3.1)."""
    return 1.0 / (eps * math.sqrt(k))


def rand_rank_space(k: int, eps: float) -> float:
    """O(1/(eps sqrt(k)) * log^1.5(1/eps) * log^0.5(1/(eps sqrt(k))))."""
    h = max(1.0, _log(1.0 / (eps * math.sqrt(k))))
    return (
        1.0
        / (eps * math.sqrt(k))
        * _log(1.0 / eps) ** 1.5
        * math.sqrt(h)
    )


def improvement_factor(k: int) -> float:
    """The headline sqrt(k) separation between det and randomized."""
    return math.sqrt(k)
