"""Theory formulas, accuracy evaluation, and table rendering."""

from .stats import (
    AccuracyReport,
    evaluate_count_accuracy,
    evaluate_frequency_accuracy,
    evaluate_rank_accuracy,
    repeat_success_rate,
)
from .tables import format_number, render_table
from .theory import (
    cormode05_rank_comm,
    det_count_comm,
    det_frequency_comm,
    det_rank_comm,
    improvement_factor,
    rand_count_comm,
    rand_frequency_comm,
    rand_frequency_space,
    rand_rank_comm,
    rand_rank_space,
    sampling_comm,
)

__all__ = [
    "AccuracyReport",
    "evaluate_count_accuracy",
    "evaluate_frequency_accuracy",
    "evaluate_rank_accuracy",
    "repeat_success_rate",
    "format_number",
    "render_table",
    "cormode05_rank_comm",
    "det_count_comm",
    "det_frequency_comm",
    "det_rank_comm",
    "improvement_factor",
    "rand_count_comm",
    "rand_frequency_comm",
    "rand_frequency_space",
    "rand_rank_comm",
    "rand_rank_space",
    "sampling_comm",
]
