"""The `ExecBackend` contract and the fan-out group.

An :class:`ExecBackend` hosts exactly **one worker** (a shard hub or a
protocol stack — see :mod:`repro.exec.workers`) somewhere — in the
caller's process, on a thread, in a subprocess, or on a remote TCP
actor — and executes that worker's command table against it.  The core
is asynchronous-by-construction:

* :meth:`ExecBackend.submit` posts one command without waiting;
* :meth:`ExecBackend.drain` collects every outstanding reply in FIFO
  order (failure-safe: it always consumes all replies before raising,
  so a failed command can never desynchronize the reply stream).

Everything else — ``dispatch_run`` (post one command, wait for it),
``dispatch_batch`` (the ingest hot path, optionally *relaxed* so the
caller overlaps batches across workers between protocol barriers),
``query`` / ``checkpoint`` / ``restore`` / ``close`` — is defined here
once, on top of that core, so the four substrates cannot drift apart.

:class:`ExecGroup` fans one command out across many backends (the
sharded service's shard fan-out): it posts to every backend before
collecting from any, which is what lets process- and TCP-hosted hubs
apply their slices concurrently, and it drains every backend before
re-raising the first failure so surviving workers stay usable.
"""

from __future__ import annotations

import abc
import time
from collections import deque
from typing import Callable, List, Optional, Sequence

from ..obs.metrics import LATENCY_BUCKETS, Histogram
from ..obs.tracing import current_trace

__all__ = [
    "EXECUTORS",
    "ExecBackend",
    "ExecError",
    "ExecGroup",
    "ExecWorkerError",
]

#: executor names accepted by :func:`repro.exec.make_group` (and the
#: sharded service / gateway CLI): where each worker is placed.
EXECUTORS = ("inline", "thread", "process", "cluster")


class ExecError(RuntimeError):
    """Base class for execution-plane failures."""


class ExecWorkerError(ExecError):
    """A worker failed and its exception could not be re-raised as-is."""


class ExecBackend(abc.ABC):
    """One worker, one placement; a submit/drain command pipe.

    Subclasses implement :meth:`_post` (enqueue one command towards the
    worker) and :meth:`_take` (block for the oldest outstanding reply),
    plus lifecycle (:meth:`close`, :meth:`_respawn`).  The public
    surface — ``dispatch_run``, ``dispatch_batch``, ``query``,
    ``checkpoint``, ``restore``, ``close`` — is shared.
    """

    def __init__(self, spec: dict):
        self.spec = spec
        self._outstanding = 0
        #: submit-to-collect latency per command.  Under relaxed
        #: dispatch a reply is collected at the next fence, so this
        #: histogram measures the *in-flight window* — exactly the
        #: pipelining the relaxed mode buys — rather than pure worker
        #: time.  Owned here, attached to a registry by whoever scrapes.
        self.latency = Histogram(LATENCY_BUCKETS)
        self._post_clock: deque = deque()

    # -- core (subclass contract) ------------------------------------------

    @abc.abstractmethod
    def _post(self, op: str, args: tuple, trace=None) -> None:
        """Enqueue one command; must not wait for the worker's reply.

        ``trace`` is the caller's trace context (see
        :func:`repro.obs.tracing.current_trace`) or ``None``; placed
        backends carry it in their command envelope so worker-side
        spans join the caller's trace.  A delivery failure (dead pipe,
        closed connection) must be recorded and surfaced by the
        matching :meth:`_take`, never swallowed and never allowed to
        desynchronize later replies.
        """

    @abc.abstractmethod
    def _take(self):
        """Collect the oldest outstanding reply (raises worker errors)."""

    @abc.abstractmethod
    def close(self) -> None:
        """Shut the worker (and its placement) down; idempotent."""

    @abc.abstractmethod
    def _respawn(self, spec: dict) -> None:
        """Replace the worker with one freshly built from ``spec``."""

    # -- shared surface ----------------------------------------------------

    @property
    def pending(self) -> int:
        """Commands posted but not yet collected."""
        return self._outstanding

    def submit(self, op: str, *args) -> None:
        """Post one command without waiting for its result.

        The caller's active trace context (if any) is captured into the
        command envelope, so spans the worker records — in a thread, a
        subprocess, or on a remote hub host — parent to the span that
        was open at submit time.
        """
        self._post(op, args, current_trace())
        self._outstanding += 1
        self._post_clock.append(time.perf_counter())

    def drain(self) -> list:
        """Collect every outstanding reply, in submission order.

        Always consumes all replies before raising, so one failed
        command cannot leave later replies misaligned; the first
        failure is re-raised after the drain.
        """
        results = []
        first_error: Optional[BaseException] = None
        while self._outstanding > 0:
            self._outstanding -= 1
            posted = self._post_clock.popleft() if self._post_clock else None
            try:
                results.append(self._take())
            except BaseException as exc:
                if first_error is None:
                    first_error = exc
                results.append(None)
            finally:
                if posted is not None:
                    self.latency.observe(time.perf_counter() - posted)
        if first_error is not None:
            raise first_error
        return results

    def collect_one(self) -> object:
        """Collect the single oldest outstanding reply (FIFO).

        The credit-based windowed dispatch loop uses this to free
        exactly one in-flight slot before posting the next sub-batch,
        instead of fencing the whole pipe with :meth:`drain`.  Raises
        the reply's worker error (the reply is still consumed, so the
        stream never desynchronizes); raises :class:`ExecError` when
        nothing is outstanding.
        """
        if self._outstanding <= 0:
            raise ExecError("no outstanding command to collect")
        self._outstanding -= 1
        posted = self._post_clock.popleft() if self._post_clock else None
        try:
            return self._take()
        finally:
            if posted is not None:
                self.latency.observe(time.perf_counter() - posted)

    def submit_many(self, commands) -> None:
        """Post several commands as ONE ``multi`` round trip.

        ``commands`` is a sequence of ``(op, args_tuple)`` pairs; the
        worker runs them in order and replies once with the list of
        results (see the ``multi`` entry in
        :mod:`repro.exec.workers`).  On placed backends this collapses
        N pipe/TCP round trips into one — the restore path uses it to
        fetch a hub's manifest and counters in a single trip.
        """
        self.submit("multi", [(op, tuple(args)) for op, args in commands])

    def dispatch_many(self, commands) -> list:
        """Run several commands in one round trip; list of results."""
        self.submit_many(commands)
        return self.drain()[-1]

    def dispatch_run(self, op: str, *args):
        """Run one command in lockstep: post it, wait, return its result."""
        self.submit(op, *args)
        return self.drain()[-1]

    def dispatch_batch(self, site_ids, items=None, relaxed: bool = False) -> int:
        """Ingest one ordered event batch into the worker.

        Lockstep (default) waits for the worker's ack and returns the
        applied count.  ``relaxed=True`` posts the batch and returns its
        length immediately — per-worker FIFO keeps the worker's
        transcript identical; only the *caller* stops paying one round
        trip per batch.  Errors from a relaxed batch surface at the next
        collecting call (``drain``/``dispatch_run``/...).
        """
        self.submit("ingest", site_ids, items)
        if relaxed:
            return len(site_ids)
        return self.drain()[-1]

    def query(self, *args):
        """Run the worker's query command (lockstep).

        Hub workers take ``(name, method, args, kwargs)``; sim workers
        ``(method, args, kwargs)`` — see :mod:`repro.exec.workers`.
        """
        return self.dispatch_run("query", *args)

    def checkpoint(self):
        """Persist the worker's durable state (lockstep); returns the
        worker's checkpoint handle (a path for hub workers)."""
        return self.dispatch_run("checkpoint")

    def restore(self) -> None:
        """Rebuild the worker from its durable source.

        Requires the worker spec to carry a checkpoint directory (hub
        workers with ``checkpoint_dir``/``restore_from``); the old
        worker is discarded and a fresh one is recovered from the
        newest snapshot plus the WAL tail.  Placed workers (process,
        cluster) are replaced even when wedged mid-command; in-process
        placements (inline, thread) cannot preempt a command that is
        still running — thread restore abandons it on the old pool.
        """
        from .workers import restore_spec  # deferred: service-layer import

        self._outstanding = 0
        self._post_clock.clear()
        self._respawn(restore_spec(self.spec))

    # -- context management ------------------------------------------------

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        kind = self.spec.get("kind", "hub")
        return (
            f"{type(self).__name__}(kind={kind!r}, "
            f"pending={self._outstanding})"
        )


class ExecGroup:
    """A fixed fleet of backends driven with post-all-then-collect fan-out.

    ``map`` posts one command to every backend before collecting from
    any — across process pipes and TCP connections the workers execute
    concurrently — and its collect phase drains *every* backend before
    re-raising the first failure, so a dead worker never leaves a
    surviving worker's reply stream misaligned.
    """

    def __init__(
        self,
        backends: Sequence[ExecBackend],
        owned: Optional[List[Callable[[], None]]] = None,
    ):
        self.backends = list(backends)
        self._owned = list(owned or [])
        self._closed = False

    def __len__(self) -> int:
        return len(self.backends)

    @property
    def pending(self) -> int:
        """Total commands posted but not collected, over all backends."""
        return sum(backend.pending for backend in self.backends)

    def map(self, op: str, per_worker_args: Sequence[tuple],
            collect: bool = True):
        """Post ``op`` to every backend; collect per-backend results.

        ``collect=False`` (relaxed fan-out) returns ``None`` immediately
        — results and errors surface at the next :meth:`collect`.
        """
        for backend, args in zip(self.backends, per_worker_args):
            backend.submit(op, *args)
        if not collect:
            return None
        return self.collect()

    def collect(self) -> list:
        """Drain every backend; per-backend *latest* results, in order.

        Failure-safe like :meth:`ExecBackend.drain`: every backend is
        drained before the first error re-raises, and a failed backend
        contributes ``None``.
        """
        results = []
        first_error: Optional[BaseException] = None
        for backend in self.backends:
            try:
                drained = backend.drain()
                results.append(drained[-1] if drained else None)
            except BaseException as exc:
                if first_error is None:
                    first_error = exc
                results.append(None)
        if first_error is not None:
            raise first_error
        return results

    def call(self, index: int, op: str, *args):
        """Run one command on one backend only (lockstep)."""
        return self.backends[index].dispatch_run(op, *args)

    def close(self) -> None:
        """Close every backend, then group-owned resources (hosts, loops)."""
        if self._closed:
            return
        self._closed = True
        for backend in self.backends:
            try:
                backend.close()
            except Exception:  # a dead worker must not block shutdown
                pass
        for closer in self._owned:
            try:
                closer()
            except Exception:
                pass

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"ExecGroup(backends={len(self.backends)}, "
            f"pending={self.pending})"
        )
