"""The unified execution plane: one backend abstraction, four substrates.

Every plane in the repo ultimately plays the same game — dispatch work
units (event runs, hub commands) to workers, collect replies, keep FIFO
order per worker — yet before this package the in-process simulator,
the shard facade and the actor cluster each had a private dispatch
loop.  :mod:`repro.exec` is the shared substrate:

* :mod:`repro.exec.base` — :class:`ExecBackend` (``dispatch_run`` /
  ``dispatch_batch`` / ``query`` / ``checkpoint`` / ``restore`` /
  ``close`` over a submit/drain core) and :class:`ExecGroup`, the
  failure-safe fan-out used by the sharded service.
* :mod:`repro.exec.dispatch` — the run dispatchers: ``drive_runs``
  (the in-process lockstep loop behind ``Simulation.run_batched`` and
  the batched ingest engine) plus ``dispatch_lockstep`` /
  ``dispatch_relaxed`` (the distributed hub's two modes).
* :mod:`repro.exec.workers` — worker kinds and their command tables:
  ``hub`` (a full :class:`~repro.service.TrackingService`) and ``sim``
  (one protocol stack), buildable wherever the backend places them.
* :mod:`repro.exec.local` — :class:`InprocBackend`,
  :class:`ThreadBackend`, :class:`ProcessBackend`.
* :mod:`repro.exec.remote` — :class:`ClusterBackend` and
  :class:`ExecHost`: workers on ``repro hub`` TCP actors.

Imports of the heavier backends are lazy (module ``__getattr__``) so
the runtime package can import the dispatchers without cycling through
the service layer.
"""

from .base import EXECUTORS, ExecBackend, ExecError, ExecGroup, ExecWorkerError
from .dispatch import dispatch_lockstep, dispatch_relaxed, drive_runs

__all__ = [
    "EXECUTORS",
    "ClusterBackend",
    "ExecBackend",
    "ExecError",
    "ExecGroup",
    "ExecHost",
    "ExecWorkerError",
    "InprocBackend",
    "ProcessBackend",
    "ThreadBackend",
    "dispatch_lockstep",
    "dispatch_relaxed",
    "drive_runs",
    "make_backend",
    "make_group",
]

_LAZY = {
    "InprocBackend": "local",
    "ThreadBackend": "local",
    "ProcessBackend": "local",
    "make_backend": "local",
    "make_group": "local",
    "ClusterBackend": "remote",
    "ExecHost": "remote",
}


def __getattr__(name):
    """Lazily resolve backend classes (avoids runtime<->service cycles)."""
    try:
        module_name = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module 'repro.exec' has no attribute {name!r}")
    import importlib

    module = importlib.import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value
