"""Worker kinds and their command tables.

A *worker* is the stateful object an :class:`~repro.exec.ExecBackend`
hosts; a *command table* maps operation names to plain functions
``fn(worker, *args)`` that run wherever the worker lives (the caller's
process, a subprocess, a ``repro hub`` actor).  Two kinds exist:

``hub``
    One full :class:`~repro.service.TrackingService` — engine, per-job
    ledgers, optional WAL+snapshot bundle.  This is the shard hub the
    sharded service places N of; its command table is the one the old
    ``repro.shard.workers`` module owned.
``sim``
    One bare protocol stack (:class:`~repro.runtime.Simulation`): one
    scheme, ``k`` sites, the exact transcript semantics of the paper.
    Lets the conformance suite pin that the *same* seeded protocol run
    answers identically however it is placed.

Specs are plain dicts — ``{"kind": ..., "config": {...}}`` — so they
cross process boundaries by pickle and TCP boundaries through the
snapshot codec unchanged.
"""

from __future__ import annotations

import os

from .base import ExecError

__all__ = [
    "HUB_KIND",
    "SIM_KIND",
    "build_worker",
    "close_worker",
    "worker_commands",
    "restore_spec",
    "hub_spec",
    "hub_stats",
    "sim_spec",
]

HUB_KIND = "hub"
SIM_KIND = "sim"


def hub_spec(config: dict) -> dict:
    """A hub-worker spec from a :class:`TrackingService` config dict."""
    return {"kind": HUB_KIND, "config": dict(config)}


def sim_spec(config: dict) -> dict:
    """A sim-worker spec from a :class:`Simulation` config dict."""
    return {"kind": SIM_KIND, "config": dict(config)}


def build_worker(spec: dict):
    """Build the worker a spec describes (runs on the worker's side)."""
    kind = spec.get("kind", HUB_KIND)
    config = dict(spec.get("config") or {})
    if kind == HUB_KIND:
        return _build_hub(config)
    if kind == SIM_KIND:
        return _build_sim(config)
    raise ExecError(f"unknown worker kind {spec.get('kind')!r}")


def worker_commands(spec: dict) -> dict:
    """The command table for a spec's worker kind."""
    kind = spec.get("kind", HUB_KIND)
    if kind == HUB_KIND:
        return HUB_COMMANDS
    if kind == SIM_KIND:
        return SIM_COMMANDS
    raise ExecError(f"unknown worker kind {spec.get('kind')!r}")


def close_worker(worker) -> None:
    """Release a worker's resources (WAL handles); tolerant of kinds."""
    close = getattr(worker, "close", None)
    if callable(close):
        close()


def restore_spec(spec: dict) -> dict:
    """The spec that rebuilds a worker from its durable source.

    Hub workers with a ``checkpoint_dir`` (or already built via
    ``restore_from``) recover from their bundle; anything else has no
    durable source and raises :class:`ExecError`.
    """
    kind = spec.get("kind", HUB_KIND)
    config = dict(spec.get("config") or {})
    if kind != HUB_KIND:
        raise ExecError(
            f"{kind!r} workers have no durable source to restore from"
        )
    source = config.get("restore_from") or config.get("checkpoint_dir")
    if not source:
        raise ExecError(
            "worker has no checkpoint_dir; nothing to restore from"
        )
    return hub_spec(
        {
            "restore_from": source,
            "wal_segment_records": config.get("wal_segment_records", 4096),
            "wal_sync": config.get("wal_sync", False),
        }
    )


# -- hub workers -----------------------------------------------------------


def _build_hub(config: dict):
    from ..service import TrackingService  # deferred: service layer

    # Not a TrackingService parameter: the facade driving this hub
    # stamps its negotiated dispatch mode (lockstep/relaxed/windowed)
    # into the spec so hub_stats can report it from any placement —
    # including a `repro hub` actor on another machine.
    dispatch_mode = config.pop("dispatch_mode", None)
    if config.get("restore_from"):
        service = TrackingService.restore(
            config["restore_from"],
            wal_segment_records=config.get("wal_segment_records", 4096),
            wal_sync=config.get("wal_sync", False),
        )
    else:
        service = TrackingService(
            **{k: v for k, v in config.items() if k != "restore_from"}
        )
    if dispatch_mode is not None:
        service.dispatch_mode = dispatch_mode
    return service


def _hub_register(service, name, scheme, seed, budget):
    service.register(name, scheme, seed=seed, space_budget_words=budget)
    return True


def _hub_unregister(service, name):
    service.unregister(name)
    return True


def _hub_ingest(service, site_ids, items):
    if site_ids is None or len(site_ids) == 0:
        return 0
    return service.ingest(site_ids, items)


def _hub_query(service, name, method, args, kwargs):
    from ..service.job import resolve_query  # deferred: service layer

    job = service.job(name)
    fn = resolve_query(job.coordinator, method)
    return fn.__name__, fn(*args, **kwargs)


def _hub_status(service):
    return service.status()


def _hub_metrics_sample(service):
    """Flat telemetry sample (no query evaluation; scrape-safe)."""
    return service.metrics_sample()


def _hub_space_overages(service):
    return service.space_overages()


def _hub_job_manifest(service):
    """Everything a facade needs to rebuild its job views on restore."""
    return [
        {
            "name": job.name,
            "scheme": job.scheme,
            "seed": job.seed,
            "space_budget_words": job.space_budget_words,
            "elements": job.elements_processed,
        }
        for job in service.jobs.values()
    ]


def _hub_checkpoint(service):
    return service.checkpoint()


def _hub_elements(service):
    return service.elements_processed


def _hub_collect_spans(service):
    """Drain the hub's span buffer (return-and-clear).

    The facade fans this out so `/v1/trace` can stitch hub-side spans
    (recorded in another process or on another machine) into the
    gateway's cross-process trace view; draining keeps a span from
    being shipped twice.
    """
    spans = getattr(service, "spans", None)
    return spans.drain() if spans is not None else []


def hub_stats(service) -> dict:
    """Capacity + liveness sample for the fleet telemetry plane.

    Modeled on ``collect_spans``: one cheap command every placement of
    the hub kind answers identically — in-process, subprocess, or a
    ``repro hub`` actor on another machine — so the gateway's
    :class:`~repro.obs.fleet.FleetMonitor` can heartbeat the whole
    fleet through the exec plane it already holds.  Returns per-job
    space used vs. budget (refreshed with a sweep, like
    ``metrics_sample``), aggregate capacity with an overcommit-style
    ``used/budget`` ratio, process footprint (RSS/fds/uptime via
    :func:`~repro.obs.process.process_stats`), and a monotonic
    heartbeat sequence — a restart shows up as the sequence going
    backwards.
    """
    from ..obs.process import process_stats  # deferred: keep import light

    seq = getattr(service, "_hub_heartbeat_seq", 0) + 1
    service._hub_heartbeat_seq = seq
    jobs = {}
    used_total = 0
    budget_total = 0
    budgeted = False
    for name, job in service.jobs.items():
        job.sample_space()
        used = job.space.max_site_words
        budget = job.space_budget_words
        jobs[name] = {
            "elements": job.elements_processed,
            "space_words": used,
            "space_budget_words": budget,
        }
        used_total += used
        if budget is not None:
            budgeted = True
            budget_total += budget
    return {
        "heartbeat": seq,
        "dispatch_mode": getattr(service, "dispatch_mode", "lockstep"),
        "elements": service.elements_processed,
        "rounds": int(service.engine.stats.get("batches", 0)),
        "jobs": jobs,
        "capacity": {
            "used_words": used_total,
            "budget_words": budget_total if budgeted else None,
            "ratio": (
                used_total / budget_total
                if budgeted and budget_total
                else None
            ),
        },
        "process": process_stats(),
    }


def _make_multi(table):
    """A ``multi`` command over ``table``: run ``(op, args)`` pairs in
    order, reply once with the list of results.  One round trip where a
    lockstep caller would pay one per command (see
    :meth:`~repro.exec.ExecBackend.submit_many`)."""

    def _multi(worker, commands):
        return [table[op](worker, *args) for op, args in commands]

    return _multi


def _hub_ping(service):
    return True


def _hub_crash(service):
    """Failure injection: die without replying (process workers only).

    Exercises the dead-pipe collect path — a worker that vanishes
    between receiving a command and acking it.  On an in-process
    backend this kills the caller, which is exactly what colocating a
    hub with its driver means; only post it to process workers.
    """
    os._exit(13)


HUB_COMMANDS = {
    "register": _hub_register,
    "unregister": _hub_unregister,
    "ingest": _hub_ingest,
    "query": _hub_query,
    "status": _hub_status,
    "metrics_sample": _hub_metrics_sample,
    "space_overages": _hub_space_overages,
    "job_manifest": _hub_job_manifest,
    "checkpoint": _hub_checkpoint,
    "elements": _hub_elements,
    "collect_spans": _hub_collect_spans,
    "hub_stats": hub_stats,
    "ping": _hub_ping,
    "crash": _hub_crash,
}
HUB_COMMANDS["multi"] = _make_multi(HUB_COMMANDS)


# -- sim workers -----------------------------------------------------------


def _build_sim(config: dict):
    from ..runtime import Simulation  # deferred: runtime layer

    return Simulation(
        config["scheme"],
        config["num_sites"],
        seed=config.get("seed", 0),
        one_way=config.get("one_way", False),
        space_sample_interval=config.get("space_sample_interval", 64),
        uplink_drop_rate=config.get("uplink_drop_rate", 0.0),
    )


def _sim_ingest(sim, site_ids, items):
    if site_ids is None or len(site_ids) == 0:
        return 0
    before = sim.elements_processed
    sim.run_batched(site_ids, items)
    return sim.elements_processed - before


def _sim_query(sim, method, args, kwargs):
    from ..service.job import resolve_query  # deferred: service layer

    fn = resolve_query(sim.coordinator, method)
    return fn.__name__, fn(*args, **kwargs)


def _sim_summary(sim):
    return sim.summary()


def _sim_elements(sim):
    return sim.elements_processed


def _sim_checkpoint(sim):
    """Snapshot the full protocol stack (one codec scope, like a job)."""
    from ..persistence.codec import StateEncoder  # deferred: cycle

    encoder = StateEncoder()
    return {
        "elements_processed": sim.elements_processed,
        "scheme": encoder.encode(sim.scheme),
        "network": encoder.encode(sim.network),
        "coordinator": encoder.encode(sim.coordinator),
        "sites": encoder.encode(sim.sites),
        "space": encoder.encode(sim.space),
    }


def _sim_load_state(sim, state):
    """Merge a :func:`_sim_checkpoint` bundle into a fresh stack."""
    from ..persistence.codec import StateDecoder  # deferred: cycle

    decoder = StateDecoder()
    sim.elements_processed = state["elements_processed"]
    for attr in ("scheme", "network", "coordinator"):
        decoder.merge(getattr(sim, attr), state[attr])
    sim.sites = decoder.merge(sim.sites, state["sites"])
    sim.space = decoder.merge(sim.space, state["space"])
    return True


def _sim_ping(sim):
    return True


SIM_COMMANDS = {
    "ingest": _sim_ingest,
    "query": _sim_query,
    "summary": _sim_summary,
    "elements": _sim_elements,
    "checkpoint": _sim_checkpoint,
    "load_state": _sim_load_state,
    "ping": _sim_ping,
}
SIM_COMMANDS["multi"] = _make_multi(SIM_COMMANDS)
