"""Remote placement: workers on ``repro hub`` TCP actors.

:class:`ExecHost` is the server half — a ``repro site``-style asyncio
actor (one per ``repro hub`` process) that serves worker sessions: each
inbound connection spawns one worker from the client's spec (a shard
hub :class:`~repro.service.TrackingService`, possibly restored from its
checkpoint bundle) on a dedicated thread and executes its command
table, FIFO.  One host carries any number of workers — all of a small
deployment's shard hubs, or one per machine.

:class:`ClusterBackend` is the client half: it speaks the same framed
transport as the distributed runtime (:mod:`repro.net.transport` — JSON
control + binary payload envelope over length-prefixed TCP frames),
encoding command arguments and results through the snapshot codec so
schemes, tuples and rich query answers round-trip exactly.  ``submit``
sends without awaiting the reply; per-connection FIFO makes drains
align, which is what lets a sharded facade post every hub's sub-batch
before collecting any ack — remote hubs apply their slices
concurrently, exactly like process workers, but on other machines.

Remote exceptions re-raise under their original type when it is a
builtin or a service error; anything else degrades to
:class:`ExecWorkerError` carrying the remote traceback.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import queue
import threading
import traceback
from typing import Optional

from ..obs.metrics import MetricsRegistry
from ..obs.process import register_process_metrics
from ..obs.tracing import trace_scope
from .base import ExecBackend, ExecError, ExecWorkerError
from .workers import build_worker, close_worker, worker_commands

__all__ = ["ClusterBackend", "ExecHost", "LoopThread"]

#: ceiling for one remote command round trip; a hung host surfaces as
#: an error instead of a silently stuck caller
DEFAULT_OP_TIMEOUT = 600.0


class LoopThread:
    """An asyncio event loop on a background thread, driven by blocking
    callers (the synchronous facade world talking to the async net
    stack).  Shared by every :class:`ClusterBackend` of one facade."""

    def __init__(self, name: str = "repro-exec-loop"):
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name=name, daemon=True
        )
        self._thread.start()
        self._closed = False

    def call(self, coro, timeout: float = DEFAULT_OP_TIMEOUT):
        """Run one coroutine on the loop; block for its result."""
        if self._closed:
            raise ExecError("loop thread is closed")
        future = asyncio.run_coroutine_threadsafe(coro, self._loop)
        try:
            return future.result(timeout)
        except concurrent.futures.TimeoutError:
            future.cancel()
            raise ExecWorkerError(
                f"remote operation timed out after {timeout}s"
            ) from None

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=30)
        if not self._thread.is_alive():
            self._loop.close()


class ExecHost:
    """Asyncio server hosting exec workers, one per inbound connection.

    The wire protocol per session (all frames through the transport's
    codec):

    ``{"t": "spawn", "spec": <encoded>}`` -> ``{"t": "ok"}``
        build the worker (hub configs may carry ``restore_from``).
    ``{"t": "op", "op": NAME, "args": <encoded list>[, "trace": {...}]}``
        run one command (under the caller's trace context when the
        frame carries one, so hub-side spans join the caller's trace);
        replies ``{"t": "ok", "result": <encoded>}`` or
        ``{"t": "err", "type": ..., "error": ..., "tb": ...}``.  The
        ``close`` op shuts the worker down and ends the session.
    ``{"t": "ping"}`` -> ``{"t": "pong"}``
        liveness probe.

    Command execution happens on a thread per session; the event loop
    only pumps frames, so one host serves many workers concurrently.
    """

    def __init__(self, transport, address: str, registry=None):
        self.transport = transport
        self._requested_address = address
        self._listener = None
        self._active_sessions = 0
        self._idle: Optional[asyncio.Event] = None
        # every hub host carries build/process self-stats, so the
        # fleet plane (and `repro hub` logs) can identify it even
        # though the host itself exposes no scrape endpoint
        if registry is None:
            registry = MetricsRegistry()
        self.registry = registry
        register_process_metrics(self.registry)

    async def start(self) -> "ExecHost":
        self._idle = asyncio.Event()
        self._idle.set()
        self._listener = await self.transport.listen(
            self._requested_address, self._serve
        )
        return self

    @property
    def address(self) -> str:
        """The bound address (differs from requested for port 0)."""
        if self._listener is None:
            return self._requested_address
        return self._listener.address

    async def _serve(self, conn) -> None:
        self._active_sessions += 1
        self._idle.clear()
        try:
            await self._serve_session(conn)
        finally:
            self._active_sessions -= 1
            if self._active_sessions == 0:
                self._idle.set()

    async def _serve_session(self, conn) -> None:
        loop = asyncio.get_running_loop()
        inbox: queue.Queue = queue.Queue()

        def send_threadsafe(obj) -> None:
            future = asyncio.run_coroutine_threadsafe(conn.send(obj), loop)
            try:
                future.result(DEFAULT_OP_TIMEOUT)
            except Exception as exc:
                raise ConnectionError(str(exc)) from exc

        thread = threading.Thread(
            target=_session_main,
            args=(send_threadsafe, inbox.get),
            name="repro-hub-worker",
            daemon=True,
        )
        thread.start()
        try:
            while True:
                message = await conn.recv()
                inbox.put(message)
                if message is None:
                    break
        finally:
            inbox.put(None)  # a second EOF is harmless; worker exits once
            await loop.run_in_executor(None, thread.join)

    async def close(self) -> None:
        if self._listener is not None:
            await self._listener.close()
            self._listener = None
        if self._idle is not None:
            # Let disconnecting sessions finish their teardown so no
            # half-closed sockets outlive the host's event loop.
            try:
                await asyncio.wait_for(self._idle.wait(), timeout=5)
            except asyncio.TimeoutError:  # pragma: no cover - slow peer
                pass


def _session_main(send, recv) -> None:
    """One worker session: spawn, serve commands, close on EOF."""
    from ..persistence.codec import decode_value, encode_value  # deferred

    worker = None
    commands = None
    try:
        while True:
            frame = recv()
            if frame is None:
                return
            kind = frame.get("t")
            try:
                if kind == "spawn":
                    spec = decode_value(frame["spec"])
                    worker = build_worker(spec)
                    commands = worker_commands(spec)
                    send({"t": "ok"})
                elif kind == "ping":
                    send({"t": "pong"})
                elif kind == "op":
                    op = frame.get("op")
                    if worker is None:
                        raise ExecError("no worker spawned on this session")
                    if op == "close":
                        close_worker(worker)
                        worker = None
                        send({"t": "ok", "result": True})
                        return
                    args = decode_value(frame.get("args"))
                    with trace_scope(frame.get("trace")):
                        result = commands[op](worker, *args)
                    send({"t": "ok", "result": encode_value(result)})
                else:
                    send({"t": "err", "type": "ExecError",
                          "error": f"unknown frame {kind!r}", "tb": ""})
            except ConnectionError:
                return
            except BaseException as exc:  # report, keep serving
                try:
                    send(
                        {
                            "t": "err",
                            "type": type(exc).__name__,
                            "error": str(exc),
                            "tb": traceback.format_exc(),
                        }
                    )
                except ConnectionError:
                    return
    finally:
        if worker is not None:
            try:
                close_worker(worker)
            except Exception:
                pass


def _raise_remote(frame) -> None:
    """Re-raise a remote error frame under its original type if known."""
    name = frame.get("type", "ExecWorkerError")
    message = frame.get("error", "")
    exc_type = _known_exception(name)
    if exc_type is not None:
        raise exc_type(message)
    raise ExecWorkerError(
        f"{name}: {message}\n(remote traceback)\n{frame.get('tb', '')}"
    )


def _known_exception(name: str):
    import builtins

    from ..service import errors as service_errors

    candidate = getattr(service_errors, name, None)
    if isinstance(candidate, type) and issubclass(candidate, BaseException):
        return candidate
    if name in ("ExecError", "ExecWorkerError"):
        return ExecError if name == "ExecError" else ExecWorkerError
    candidate = getattr(builtins, name, None)
    if isinstance(candidate, type) and issubclass(candidate, Exception):
        return candidate
    return None


class ClusterBackend(ExecBackend):
    """The worker on a remote :class:`ExecHost`, commands over TCP.

    Parameters
    ----------
    spec:
        The worker spec (see :mod:`repro.exec.workers`).  Hub configs
        with ``checkpoint_dir``/``restore_from`` refer to paths *on the
        host's filesystem*.
    address:
        ``host:port`` of a running exec host (``repro hub``); ``None``
        self-hosts one on an ephemeral local port (owned, closed with
        the backend) — the zero-config mode.
    loop:
        A shared :class:`LoopThread` (the sharded facade passes one for
        all its shards); ``None`` creates an owned loop.
    """

    def __init__(
        self,
        spec: dict,
        address: Optional[str] = None,
        loop: Optional[LoopThread] = None,
        op_timeout: float = DEFAULT_OP_TIMEOUT,
    ):
        super().__init__(spec)
        self.op_timeout = op_timeout
        self._own_loop = loop is None
        self._loop = loop if loop is not None else LoopThread()
        self._own_host = None
        self._conn = None
        self._closed = False
        self._send_failures: list = []
        try:
            from ..net.transport import TcpTransport

            self._transport = TcpTransport()
            if address is None:
                self._own_host = self._loop.call(
                    ExecHost(self._transport, "127.0.0.1:0").start()
                )
                address = self._own_host.address
            self.address = address
            self._connect_and_spawn(spec)
        except BaseException:
            self.close()
            raise

    def _connect_and_spawn(self, spec: dict) -> None:
        from ..persistence.codec import encode_value  # deferred

        self._conn = self._loop.call(self._transport.connect(self.address))
        self._send({"t": "spawn", "spec": encode_value(spec)})
        reply = self._recv()
        if reply.get("t") != "ok":
            raise ExecWorkerError(
                f"hub host refused spawn: {reply.get('error', reply)}"
            )

    # -- framed plumbing ---------------------------------------------------

    def _send(self, frame: dict) -> None:
        self._loop.call(self._conn.send(frame), timeout=self.op_timeout)

    def _recv(self) -> dict:
        frame = self._loop.call(self._conn.recv(), timeout=self.op_timeout)
        if frame is None:
            raise ExecWorkerError(
                f"hub host {self.address} closed the connection"
            )
        if frame.get("t") == "err":
            _raise_remote(frame)
        return frame

    # -- ExecBackend core --------------------------------------------------

    def _post(self, op: str, args: tuple, trace=None) -> None:
        from ..persistence.codec import encode_value  # deferred

        frame = {"t": "op", "op": op, "args": encode_value(list(args))}
        if trace is not None:
            # plain strings; rides the JSON control frame untouched
            frame["trace"] = trace
        try:
            self._send(frame)
            self._send_failures.append(None)
        except Exception as exc:
            self._send_failures.append(
                ExecWorkerError(f"hub connection is down: {exc}")
            )

    def _take(self):
        from ..persistence.codec import decode_value  # deferred

        send_error = self._send_failures.pop(0)
        if send_error is not None:
            raise send_error
        reply = self._recv()
        if reply.get("t") != "ok":
            raise ExecWorkerError(f"unexpected reply {reply.get('t')!r}")
        return decode_value(reply.get("result"))

    def _respawn(self, spec: dict) -> None:
        self._send_failures.clear()
        if self._conn is not None:
            try:
                self._loop.call(self._conn.close(), timeout=10)
            except Exception:
                pass
        self._connect_and_spawn(spec)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._conn is not None:
            try:
                self.drain()
            except Exception:
                pass
            try:
                self._send({"t": "op", "op": "close", "args": None})
                self._loop.call(self._conn.recv(), timeout=10)
            except Exception:
                pass
            try:
                self._loop.call(self._conn.close(), timeout=10)
            except Exception:
                pass
            self._conn = None
        if self._own_host is not None:
            try:
                self._loop.call(self._own_host.close(), timeout=10)
            except Exception:
                pass
            self._own_host = None
        if self._own_loop:
            self._loop.close()
