"""The shared run dispatchers: one loop, every plane.

Three dispatch shapes cover every driving loop in the repo:

* :func:`drive_runs` — the in-process lockstep loop.  This is the loop
  behind :meth:`Simulation.run_batched` *and* the multi-tenant batched
  ingest engine: deliver decomposed per-site runs to a host's sites in
  global arrival order with amortized space bookkeeping.  Keeping it
  here (rather than one copy per plane) is what makes "a job driven by
  the engine is transcript-identical to a standalone simulation" a
  structural fact instead of a test assertion.
* :func:`dispatch_lockstep` — the distributed hub's default mode: one
  run at a time, in global arrival order, waiting for each run's ack
  (and servicing its protocol cascade) before posting the next.  This
  is the mode whose transcripts are byte-identical to the simulator.
* :func:`dispatch_relaxed` — the pipelined mode: post *every* run of
  the batch up front (per-site FIFO keeps each site's local order
  exact), then collect run completions and protocol messages as they
  arrive.  Runs targeting disjoint sites overlap between protocol
  messages, so a transport that charges a round trip per run stops
  paying it per run and starts paying it per batch.  The coordinator
  may now observe uplinks in a different interleaving — see
  ``docs/relaxed-mode.md`` for the accuracy contract.

On top of the relaxed shape, two hot-path stages make pipelined
dispatch columnar and memory-bounded:

* :func:`coalesce_runs` — merge runs into *super-runs* before posting.
  In order-preserving mode only consecutive same-site runs merge (an
  identity on one batch's decomposition, useful when concatenating
  sub-batches).  In per-site (relaxed) mode the run sequence is cut
  into consecutive windows of at most ``window`` runs and, inside each
  window, **all** of a site's runs merge into one super-run — per-site
  concatenation order is exactly per-site arrival order, which is the
  only order relaxed mode promises.  A fine-grained interleaving
  (round-robin: one element per run) collapses from one frame per
  element to one frame per site per window.  Super-run chunks are
  lifted to typed numpy arrays when numpy is available and the chunk
  is large homogeneous numerics, so the frame codec packs them via
  ``tobytes`` instead of a per-element ``struct.pack`` walk.
* :func:`dispatch_windowed` — the credit-based posting loop: at most
  ``window`` original runs in flight in total and ``per_site_depth``
  super-run frames in flight per site.  When posting would exceed a
  credit, the dispatcher services inbound completions/messages until
  credit frees up, so memory stays flat on huge batches and the
  fence/checkpoint tail is bounded by the window, not the batch.

This module is dependency-free on purpose: the runtime, service, shard
and net layers all import it, so it must not import any of them.
(numpy is an optional accelerator, import-guarded like everywhere
else in the repo.)
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Tuple

try:  # gate: keep the dispatcher importable on numpy-less installs
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

__all__ = [
    "drive_runs",
    "dispatch_lockstep",
    "dispatch_relaxed",
    "coalesce_runs",
    "dispatch_windowed",
]

#: shortest merged chunk worth lifting into a typed numpy array; below
#: this the conversion costs more than the packing it accelerates
_COLUMNAR_MIN = 1024


def drive_runs(host, runs, space_sample_interval: int) -> int:
    """Deliver decomposed runs to ``host``'s sites with amortized space
    bookkeeping; returns the new ``host.elements_processed``.

    ``host`` is anything exposing the driving surface shared by
    :class:`~repro.runtime.Simulation` and service jobs: ``sites``,
    ``space``, ``elements_processed`` and ``sample_space()``.  A full
    space sweep runs every ``space_sample_interval`` elements, replacing
    the per-event bookkeeping that dominates the looped hot path (space
    high-water marks are samples either way; comm ledgers stay exact).
    """
    sites = host.sites
    interval = max(1, space_sample_interval)
    processed = host.elements_processed
    next_sweep = processed + interval
    for site_id, chunk in runs:
        sites[site_id].on_elements(chunk)
        processed += len(chunk)
        if processed >= next_sweep:
            host.elements_processed = processed
            host.sample_space()
            next_sweep = processed + interval
    host.elements_processed = processed
    return processed


def dispatch_lockstep(
    runs: Iterable[Tuple[int, list]],
    run_one: Callable[[int, list], int],
) -> int:
    """Dispatch runs one at a time, in global arrival order.

    ``run_one(site_id, chunk)`` must fully apply the run — including
    every protocol message it triggers — before returning its element
    count.  This is the transcript-exact mode: the interleaving the
    coordinator observes is precisely the stream's arrival order.
    """
    total = 0
    for site_id, chunk in runs:
        total += run_one(site_id, chunk)
    return total


def dispatch_relaxed(
    runs: Iterable[Tuple[int, list]],
    post_run: Callable[[int, list], None],
    collect_outstanding: Callable[[], int],
) -> int:
    """Post every run up front, then collect completions as they land.

    ``post_run(site_id, chunk)`` enqueues one run without waiting (the
    carrier must preserve per-site FIFO order); ``collect_outstanding``
    blocks until every posted run has completed — servicing protocol
    messages from *any* site as they arrive — and returns the total
    element count.  Per-site transcripts stay exact; the cross-site
    interleaving at the coordinator becomes arrival-order.
    """
    for site_id, chunk in runs:
        post_run(site_id, chunk)
    return collect_outstanding()


def _columnar(chunk: list):
    """Lift a merged chunk into a typed numpy array when profitable.

    Only large homogeneous int/float chunks are lifted (the frame codec
    then packs them via ``tobytes`` instead of a per-element struct
    walk).  Anything else — small chunks, mixed types, rich payloads,
    ints outside 64 bits — ships as the plain list it already is.
    """
    if _np is None or len(chunk) < _COLUMNAR_MIN:
        return chunk
    first = chunk[0]
    if type(first) is int:
        try:
            arr = _np.asarray(chunk, dtype=_np.int64)
        except (TypeError, ValueError, OverflowError):
            return chunk
        return arr
    if type(first) is float:
        try:
            arr = _np.asarray(chunk, dtype=_np.float64)
        except (TypeError, ValueError):
            return chunk
        return arr
    return chunk


def _merged(chunks: List[list]) -> list:
    if len(chunks) == 1:
        out = chunks[0]
    else:
        out = []
        for chunk in chunks:
            out.extend(chunk)
    return _columnar(out)


def coalesce_runs(
    runs: Iterable[Tuple[int, list]],
    *,
    window: Optional[int] = None,
    per_site: bool = False,
) -> List[Tuple[int, list, int]]:
    """Merge runs into super-runs; returns ``(site_id, chunk, weight)``.

    ``weight`` is the number of original runs a super-run carries — the
    unit :func:`dispatch_windowed` accounts in-flight credit in.

    With ``per_site=False`` only *consecutive* same-site runs merge, so
    the global interleaving is preserved exactly (safe even for
    lockstep).  With ``per_site=True`` — the relaxed mode — the run
    sequence is cut into consecutive groups of at most ``window``
    original runs (one group for the whole batch when ``window`` is
    None) and within each group **all** of a site's runs merge into one
    super-run, emitted in order of the site's first appearance.  Each
    site's elements are concatenated in arrival order, so per-site
    streams — the only order relaxed mode promises — are untouched;
    applying one merged ``on_elements`` is exactly equivalent to
    applying the original runs back to back.
    """
    if window is not None and window < 1:
        raise ValueError("window must be >= 1 (or None for unbounded)")
    if not per_site:
        out: List[Tuple[int, list, int]] = []
        last_site = None
        for site_id, chunk in runs:
            if site_id == last_site:
                prev_site, prev_chunk, prev_weight = out[-1]
                if prev_weight == 1:
                    prev_chunk = list(prev_chunk)  # don't mutate caller's chunk
                prev_chunk.extend(chunk)
                out[-1] = (prev_site, prev_chunk, prev_weight + 1)
            else:
                out.append((site_id, chunk, 1))
                last_site = site_id
        return [(s, _columnar(c) if w > 1 else c, w) for s, c, w in out]

    out = []
    group_order: List[int] = []  # sites in first-appearance order
    group_chunks = {}  # site_id -> list of chunks
    group_weights = {}  # site_id -> run count
    in_group = 0

    def flush_group() -> None:
        for site_id in group_order:
            out.append(
                (
                    site_id,
                    _merged(group_chunks[site_id]),
                    group_weights[site_id],
                )
            )
        group_order.clear()
        group_chunks.clear()
        group_weights.clear()

    for site_id, chunk in runs:
        if window is not None and in_group >= window:
            flush_group()
            in_group = 0
        if site_id in group_chunks:
            group_chunks[site_id].append(chunk)
            group_weights[site_id] += 1
        else:
            group_order.append(site_id)
            group_chunks[site_id] = [chunk]
            group_weights[site_id] = 1
        in_group += 1
    flush_group()
    return out


def dispatch_windowed(
    runs: Iterable[Tuple[int, list, int]],
    post_run: Callable[[int, list, int], None],
    collect_outstanding: Callable[[], int],
    *,
    window: Optional[int] = None,
    per_site_depth: Optional[int] = None,
    inflight_total: Optional[Callable[[], int]] = None,
    inflight_site: Optional[Callable[[int], int]] = None,
    service_one: Optional[Callable[[], None]] = None,
    on_stall: Optional[Callable[[], None]] = None,
) -> int:
    """Credit-based relaxed posting over ``(site_id, chunk, weight)``.

    At most ``window`` original runs (sum of in-flight weights) and
    ``per_site_depth`` super-run frames per site are in flight at once.
    When posting the next super-run would exceed a credit, the
    dispatcher calls ``service_one()`` — which must block until one
    inbound completion/protocol frame has been serviced — until credit
    frees up, invoking ``on_stall`` once per wait iteration.  With both
    bounds None this degenerates to :func:`dispatch_relaxed` (post
    everything, then collect).

    ``inflight_total()`` / ``inflight_site(site_id)`` report the
    carrier's current in-flight weight / per-site frame count.  A
    super-run heavier than the whole window still posts once the pipe
    is empty, so progress is unconditional.
    """
    bounded = (window is not None or per_site_depth is not None) and (
        inflight_total is not None and service_one is not None
    )
    for site_id, chunk, weight in runs:
        if bounded:
            while True:
                total = inflight_total()
                if total <= 0:
                    break
                if window is not None and total + weight > window:
                    pass  # over the global credit — service and retry
                elif (
                    per_site_depth is not None
                    and inflight_site is not None
                    and inflight_site(site_id) >= per_site_depth
                ):
                    pass  # site pipe at depth — service and retry
                else:
                    break
                if on_stall is not None:
                    on_stall()
                service_one()
        post_run(site_id, chunk, weight)
    return collect_outstanding()
