"""The shared run dispatchers: one loop, every plane.

Three dispatch shapes cover every driving loop in the repo:

* :func:`drive_runs` — the in-process lockstep loop.  This is the loop
  behind :meth:`Simulation.run_batched` *and* the multi-tenant batched
  ingest engine: deliver decomposed per-site runs to a host's sites in
  global arrival order with amortized space bookkeeping.  Keeping it
  here (rather than one copy per plane) is what makes "a job driven by
  the engine is transcript-identical to a standalone simulation" a
  structural fact instead of a test assertion.
* :func:`dispatch_lockstep` — the distributed hub's default mode: one
  run at a time, in global arrival order, waiting for each run's ack
  (and servicing its protocol cascade) before posting the next.  This
  is the mode whose transcripts are byte-identical to the simulator.
* :func:`dispatch_relaxed` — the pipelined mode: post *every* run of
  the batch up front (per-site FIFO keeps each site's local order
  exact), then collect run completions and protocol messages as they
  arrive.  Runs targeting disjoint sites overlap between protocol
  messages, so a transport that charges a round trip per run stops
  paying it per run and starts paying it per batch.  The coordinator
  may now observe uplinks in a different interleaving — see
  ``docs/relaxed-mode.md`` for the accuracy contract.

This module is dependency-free on purpose: the runtime, service, shard
and net layers all import it, so it must not import any of them.
"""

from __future__ import annotations

from typing import Callable, Iterable, Tuple

__all__ = ["drive_runs", "dispatch_lockstep", "dispatch_relaxed"]


def drive_runs(host, runs, space_sample_interval: int) -> int:
    """Deliver decomposed runs to ``host``'s sites with amortized space
    bookkeeping; returns the new ``host.elements_processed``.

    ``host`` is anything exposing the driving surface shared by
    :class:`~repro.runtime.Simulation` and service jobs: ``sites``,
    ``space``, ``elements_processed`` and ``sample_space()``.  A full
    space sweep runs every ``space_sample_interval`` elements, replacing
    the per-event bookkeeping that dominates the looped hot path (space
    high-water marks are samples either way; comm ledgers stay exact).
    """
    sites = host.sites
    interval = max(1, space_sample_interval)
    processed = host.elements_processed
    next_sweep = processed + interval
    for site_id, chunk in runs:
        sites[site_id].on_elements(chunk)
        processed += len(chunk)
        if processed >= next_sweep:
            host.elements_processed = processed
            host.sample_space()
            next_sweep = processed + interval
    host.elements_processed = processed
    return processed


def dispatch_lockstep(
    runs: Iterable[Tuple[int, list]],
    run_one: Callable[[int, list], int],
) -> int:
    """Dispatch runs one at a time, in global arrival order.

    ``run_one(site_id, chunk)`` must fully apply the run — including
    every protocol message it triggers — before returning its element
    count.  This is the transcript-exact mode: the interleaving the
    coordinator observes is precisely the stream's arrival order.
    """
    total = 0
    for site_id, chunk in runs:
        total += run_one(site_id, chunk)
    return total


def dispatch_relaxed(
    runs: Iterable[Tuple[int, list]],
    post_run: Callable[[int, list], None],
    collect_outstanding: Callable[[], int],
) -> int:
    """Post every run up front, then collect completions as they land.

    ``post_run(site_id, chunk)`` enqueues one run without waiting (the
    carrier must preserve per-site FIFO order); ``collect_outstanding``
    blocks until every posted run has completed — servicing protocol
    messages from *any* site as they arrive — and returns the total
    element count.  Per-site transcripts stay exact; the cross-site
    interleaving at the coordinator becomes arrival-order.
    """
    for site_id, chunk in runs:
        post_run(site_id, chunk)
    return collect_outstanding()
