"""Local backends: in-process, worker-thread, worker-process placement.

All three host one worker (see :mod:`repro.exec.workers`) behind the
submit/drain pipe of :class:`~repro.exec.ExecBackend`:

* :class:`InprocBackend` — the worker is a plain object in the caller's
  process; ``submit`` executes eagerly, so it is the deterministic,
  dependency-free reference placement (the one equivalence tests pin).
* :class:`ThreadBackend` — one worker thread; commands run off the
  caller's thread, FIFO (a single-thread pool serializes them).
* :class:`ProcessBackend` — one worker subprocess (fork when available,
  else spawn), commands over a duplex pipe.  Because ``submit`` posts
  without collecting, fanning a batch across several process backends
  applies every slice concurrently — this is what the shard scaling
  benchmark measures.  Worker exceptions re-raise in the caller;
  unpicklable ones degrade to :class:`ExecWorkerError` carrying the
  remote traceback.

:func:`make_group` builds the :class:`~repro.exec.ExecGroup` fleet the
sharded service drives, mapping executor names (``inline`` / ``thread``
/ ``process`` / ``cluster``) to placements.
"""

from __future__ import annotations

import multiprocessing
import pickle
import traceback
from collections import deque
from typing import List, Optional, Sequence

from ..obs.tracing import trace_scope
from .base import EXECUTORS, ExecBackend, ExecError, ExecGroup, ExecWorkerError
from .workers import build_worker, close_worker, worker_commands

__all__ = [
    "InprocBackend",
    "ThreadBackend",
    "ProcessBackend",
    "make_backend",
    "make_group",
]


class InprocBackend(ExecBackend):
    """The worker as a plain object in the caller's process.

    ``submit`` executes the command immediately (there is nothing to
    overlap in-process); results and errors queue for :meth:`drain`, so
    the submit/drain discipline — and therefore failure ordering — is
    identical to the placed backends.
    """

    def __init__(self, spec: dict):
        super().__init__(spec)
        self._worker = build_worker(spec)
        self._commands = worker_commands(spec)
        self._results: deque = deque()
        self._closed = False

    def _post(self, op: str, args: tuple, trace=None) -> None:
        try:
            with trace_scope(trace):
                self._results.append(
                    ("ok", self._commands[op](self._worker, *args))
                )
        except BaseException as exc:
            self._results.append(("err", exc))

    def _take(self):
        status, payload = self._results.popleft()
        if status == "err":
            raise payload
        return payload

    def _respawn(self, spec: dict) -> None:
        close_worker(self._worker)
        self._results.clear()
        self._worker = build_worker(spec)
        self._commands = worker_commands(spec)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        close_worker(self._worker)


class ThreadBackend(InprocBackend):
    """The worker behind one dedicated thread (FIFO, off-caller)."""

    def __init__(self, spec: dict):
        from concurrent.futures import ThreadPoolExecutor

        super().__init__(spec)
        self._pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-exec"
        )

    def _post(self, op: str, args: tuple, trace=None) -> None:
        # The pool thread is not the caller's thread, so the captured
        # context is re-entered explicitly around the command.
        command = self._commands[op]

        def run(worker=self._worker, args=args, trace=trace):
            with trace_scope(trace):
                return command(worker, *args)

        self._results.append(("future", self._pool.submit(run)))

    def _take(self):
        status, payload = self._results.popleft()
        if status == "future":
            return payload.result()
        if status == "err":
            raise payload
        return payload

    def _respawn(self, spec: dict) -> None:
        from concurrent.futures import ThreadPoolExecutor

        # Abandon the old pool rather than joining it: a wedged command
        # cannot be preempted on a thread placement, but the fresh
        # worker must not queue behind it.  Queued-but-unstarted
        # commands are cancelled; a still-running one keeps the old
        # (about-to-be-closed) worker to itself.
        self._pool.shutdown(wait=False, cancel_futures=True)
        self._pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-exec"
        )
        super()._respawn(spec)

    def close(self) -> None:
        if self._closed:
            return
        self._pool.shutdown(wait=True)
        super().close()


# -- process placement -----------------------------------------------------


def _worker_main(conn, spec: dict) -> None:
    """Entry point of one worker subprocess."""
    try:
        worker = build_worker(spec)
        commands = worker_commands(spec)
    except BaseException as exc:
        conn.send(("err", _shippable(exc)))
        conn.close()
        return
    conn.send(("ok", True))
    while True:
        try:
            op, args, trace = conn.recv()
        except (EOFError, OSError):
            break
        if op == "close":
            try:
                close_worker(worker)
                conn.send(("ok", True))
            except BaseException as exc:
                conn.send(("err", _shippable(exc)))
            break
        try:
            with trace_scope(trace):
                result = commands[op](worker, *args)
            conn.send(("ok", result))
        except BaseException as exc:
            conn.send(("err", _shippable(exc)))
    conn.close()


def _shippable(exc: BaseException):
    """An exception as something the parent can re-raise.

    Returns the exception itself when it pickles, else an
    :class:`ExecWorkerError` carrying the formatted remote traceback.
    """
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return ExecWorkerError(
            f"{type(exc).__name__}: {exc}\n"
            f"(remote traceback)\n{traceback.format_exc()}"
        )


class ProcessBackend(ExecBackend):
    """The worker in a subprocess, commands over a duplex pipe.

    ``submit`` posts without collecting; the pipe preserves FIFO, so a
    fan-out that posts to many process backends before draining any has
    every worker applying its slice concurrently.  A dead worker fails
    each outstanding (and later) command with :class:`ExecWorkerError`
    without ever desynchronizing its own reply stream.
    """

    def __init__(self, spec: dict):
        super().__init__(spec)
        self._closed = False
        self._send_failures: deque = deque()
        self._conn = None
        self._proc = None
        try:
            self._spawn(spec)
        except BaseException:
            self.close()
            raise

    def _spawn(self, spec: dict) -> None:
        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )
        parent, child = context.Pipe(duplex=True)
        proc = context.Process(
            target=_worker_main,
            args=(child, spec),
            daemon=True,
            name="repro-exec-worker",
        )
        proc.start()
        child.close()
        self._conn = parent
        self._proc = proc
        # Synchronize on construction so a bad spec (e.g. a dirty
        # checkpoint dir) fails in the caller, not silently later.
        self._collect()

    def _post(self, op: str, args: tuple, trace=None) -> None:
        try:
            self._conn.send((op, args, trace))
            self._send_failures.append(None)
        except (BrokenPipeError, OSError) as exc:
            self._send_failures.append(
                ExecWorkerError(f"worker pipe is down: {exc}")
            )

    def _take(self):
        send_error = self._send_failures.popleft()
        if send_error is not None:
            raise send_error
        return self._collect()

    def _collect(self):
        try:
            status, payload = self._conn.recv()
        except (EOFError, OSError) as exc:
            raise ExecWorkerError(
                f"worker died without replying: {exc}"
            ) from exc
        if status == "err":
            raise payload
        return payload

    def _respawn(self, spec: dict) -> None:
        self._teardown(timeout=2)
        self._send_failures.clear()
        self._spawn(spec)

    def _teardown(self, timeout: float = 10.0) -> None:
        if self._conn is not None:
            try:
                self._conn.send(("close", (), None))
            except (BrokenPipeError, OSError):
                pass
            try:
                if self._conn.poll(timeout):
                    self._conn.recv()
            except (EOFError, OSError):
                pass
            try:
                self._conn.close()
            except OSError:
                pass
            self._conn = None
        if self._proc is not None:
            self._proc.join(timeout=timeout)
            if self._proc.is_alive():  # pragma: no cover - stuck worker
                self._proc.terminate()
                self._proc.join(timeout=5)
            self._proc = None

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._teardown()


# -- construction ----------------------------------------------------------


def make_backend(executor: str, spec: dict, **kwargs) -> ExecBackend:
    """Build one backend hosting ``spec``'s worker under ``executor``."""
    if executor == "inline":
        return InprocBackend(spec)
    if executor == "thread":
        return ThreadBackend(spec)
    if executor == "process":
        return ProcessBackend(spec)
    if executor == "cluster":
        from .remote import ClusterBackend

        return ClusterBackend(spec, **kwargs)
    raise ExecError(
        f"unknown executor {executor!r}; choose from {EXECUTORS}"
    )


def make_group(
    executor: str,
    specs: Sequence[dict],
    hub_addresses: Optional[List[str]] = None,
) -> ExecGroup:
    """Build the worker fleet for a facade (one backend per spec).

    ``executor`` places every worker the same way.  For ``cluster``,
    workers land on the ``repro hub`` hosts named by ``hub_addresses``
    (round-robin); with no addresses a TCP host is self-hosted on an
    ephemeral local port — the zero-config mode — and owned (closed) by
    the returned group.
    """
    if executor in ("inline", "thread", "process"):
        return ExecGroup([make_backend(executor, spec) for spec in specs])
    if executor != "cluster":
        raise ExecError(
            f"unknown executor {executor!r}; choose from {EXECUTORS}"
        )

    from ..net.transport import TcpTransport
    from .remote import ClusterBackend, ExecHost, LoopThread

    loop = LoopThread()
    owned = []
    backends = []
    try:
        if not hub_addresses:
            host = loop.call(ExecHost(TcpTransport(), "127.0.0.1:0").start())
            owned.append(lambda: loop.call(host.close()))
            hub_addresses = [host.address]
        for index, spec in enumerate(specs):
            backends.append(
                ClusterBackend(
                    spec,
                    address=hub_addresses[index % len(hub_addresses)],
                    loop=loop,
                )
            )
    except BaseException:
        for backend in backends:
            try:
                backend.close()
            except Exception:
                pass
        for closer in reversed(owned):
            try:
                closer()
            except Exception:
                pass
        loop.close()
        raise
    owned.append(loop.close)
    return ExecGroup(backends, owned=owned)
