"""Batched ingestion engine: one decomposition, many jobs.

The engine is the service's hot path.  An incoming batch of events is
decomposed into per-site runs *once* (numpy-accelerated boundary
detection, see :mod:`repro.runtime.batching`), and the resulting run list
is replayed into every registered job through the execution plane's
shared :func:`~repro.exec.dispatch.drive_runs` loop — the same loop
behind :meth:`Simulation.run_batched`, so a job driven by the engine
produces a transcript identical to a standalone simulation with the
same seed.

Amortization over the per-event loop comes from three places: the run
decomposition is shared across all jobs, each run costs one Python call
into the site handler instead of one per event (count schemes additionally
override :meth:`Site.on_elements` with transcript-identical closed forms),
and space sampling happens per run / per interval instead of per event.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from ..exec.dispatch import drive_runs
from ..runtime.batching import decompose_runs

__all__ = ["BatchIngestEngine"]


class BatchIngestEngine:
    """Drives decomposed event runs into job protocol stacks.

    Parameters
    ----------
    space_sample_interval:
        Full space sweeps are taken every this many ingested elements per
        job (a measurement-cost knob; comm ledgers are always exact).
    """

    def __init__(self, space_sample_interval: int = 4096):
        self.space_sample_interval = max(1, space_sample_interval)
        #: plain counters read by the observability plane at scrape
        #: time (two dict adds per batch — nothing per event)
        self.stats = {"batches": 0, "events": 0}

    def decompose(self, site_ids, items=None) -> List[Tuple[int, list]]:
        """Split one ordered batch into per-site runs (order preserved)."""
        return decompose_runs(site_ids, items)

    def drive(self, job, runs: Iterable[Tuple[int, list]]) -> int:
        """Replay a run list into one job; returns elements ingested."""
        before = job.elements_processed
        return drive_runs(job, runs, self.space_sample_interval) - before

    def ingest(self, jobs, site_ids, items=None) -> int:
        """Decompose once, drive every job; returns batch size."""
        runs = self.decompose(site_ids, items)
        for job in jobs:
            drive_runs(job, runs, self.space_sample_interval)
        n = sum(len(chunk) for _, chunk in runs)
        self.stats["batches"] += 1
        self.stats["events"] += n
        return n
