"""Asynchronous ingestion: a bounded queue in front of the batch engine.

The HTTP gateway (and any other async frontend) cannot call
``TrackingService.ingest`` straight from its handlers: the engine is
CPU-bound Python, and unbounded buffering would let a fast producer
out-run the protocol stacks until memory gives out.  The
:class:`AsyncBatchIngestor` sits in between:

* **Bounded queue, blocking backpressure.**  Admission is measured in
  *events*, not requests.  When accepting a request would push the
  queued-plus-in-flight total past ``capacity_events``, ``submit``
  *waits* — it never drops and never reorders.  (A single request
  larger than the whole capacity is admitted alone once the queue is
  empty, so oversized batches degrade to serial, not deadlock.)
* **Request coalescing.**  The worker drains consecutive requests into
  one engine call (up to ``max_batch_events``), preserving arrival
  order.  Concatenation is transcript-safe: ``Site.on_elements`` is
  contractually equivalent to the per-event loop, so one call over the
  concatenation equals two calls over the halves.
* **One writer thread.**  The engine runs on an executor thread under
  :attr:`lock`; the event loop stays responsive for queries and health
  checks, which take the same lock for consistent reads.

Every accepted request resolves to the number of events it contributed
once its batch has been *applied* (post-WAL when durability is on), so
an HTTP 200 from the gateway means the events are in the stream.
"""

from __future__ import annotations

import asyncio
import threading
from collections import deque
from typing import Optional

from ..obs.tracing import trace_scope

__all__ = ["AsyncBatchIngestor", "IngestorClosedError"]


class IngestorClosedError(RuntimeError):
    """submit() was called on an ingestor that is shutting down."""


class AsyncBatchIngestor:
    """Bounded, coalescing, order-preserving front of a service's engine.

    Parameters
    ----------
    service:
        Anything with ``ingest(site_ids, items) -> int`` — normally a
        :class:`~repro.service.TrackingService`.
    capacity_events:
        Queue bound, in events (queued + currently applying).
    max_batch_events:
        Coalescing ceiling per engine call.
    """

    def __init__(
        self,
        service,
        capacity_events: int = 1 << 16,
        max_batch_events: int = 8192,
    ):
        if capacity_events < 1 or max_batch_events < 1:
            raise ValueError("capacity and batch ceilings must be positive")
        self.service = service
        self.capacity_events = capacity_events
        self.max_batch_events = max_batch_events
        #: serializes every touch of ``service`` (worker writes and any
        #: reader wanting a consistent snapshot)
        self.lock = threading.Lock()
        self._cond: Optional[asyncio.Condition] = None
        self._requests: deque = deque()
        self._pending_events = 0
        self._closing = False
        self._worker: Optional[asyncio.Task] = None
        self.stats = {
            "submitted_requests": 0,
            "ingested_events": 0,
            "engine_calls": 0,
            "coalesced_requests": 0,
            "max_queued_events": 0,
            "backpressure_waits": 0,
        }
        #: ``fn(events, seconds)`` callbacks run on the event loop after
        #: each applied coalescing round — the push plane's heartbeat
        #: (the gateway hangs batch-size/latency observation and
        #: standing-query evaluation here).  Failures are swallowed:
        #: telemetry must never fail an ingest that already applied.
        self.on_applied: list = []
        #: optional :class:`~repro.obs.tracing.SpanRecorder`; when set
        #: (the gateway shares its own), each coalescing round records
        #: a ``round`` span under the adopted trace
        self.spans = None
        #: trace id of the most recently applied round (the gateway's
        #: alert exemplar); set before ``on_applied`` hooks run
        self.last_trace_id: Optional[str] = None

    async def start(self) -> "AsyncBatchIngestor":
        """Bind to the running loop and start the drain worker."""
        if self._worker is not None:
            raise RuntimeError("ingestor already started")
        self._cond = asyncio.Condition()
        self._worker = asyncio.ensure_future(self._drain())
        return self

    @property
    def queued_events(self) -> int:
        """Events admitted but not yet applied (the backpressure gauge)."""
        return self._pending_events

    # -- producer side -----------------------------------------------------

    async def submit(self, site_ids, items=None, trace_id=None) -> int:
        """Admit one ordered batch; resolves once it has been applied.

        Blocks (asynchronously) while the queue is at capacity — the
        caller slows down to the engine's pace; nothing is ever dropped.
        Returns the number of events ingested for this request.

        ``trace_id`` (optional) names the request's trace; the
        coalescing round that applies this request adopts the *first*
        queued request's trace, so one cross-process trace follows one
        representative request through the engine and the exec plane.
        """
        if self._cond is None:
            raise RuntimeError("ingestor not started")
        n = len(site_ids)
        if items is not None and len(items) != n:
            raise ValueError(
                f"site_ids and items length mismatch: {n} vs {len(items)}"
            )
        future = asyncio.get_running_loop().create_future()
        async with self._cond:
            if self._closing:
                raise IngestorClosedError("ingestor is shutting down")
            while (
                self._pending_events > 0
                and self._pending_events + n > self.capacity_events
            ):
                self.stats["backpressure_waits"] += 1
                await self._cond.wait()
                if self._closing:
                    raise IngestorClosedError("ingestor is shutting down")
            self._requests.append((site_ids, items, n, future, trace_id))
            self._pending_events += n
            self.stats["submitted_requests"] += 1
            if self._pending_events > self.stats["max_queued_events"]:
                self.stats["max_queued_events"] = self._pending_events
            self._cond.notify_all()
        return await future

    # -- consumer side -----------------------------------------------------

    async def _drain(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            async with self._cond:
                while not self._requests:
                    if self._closing:
                        return
                    await self._cond.wait()
                batch = [self._requests.popleft()]
                total = batch[0][2]
                while (
                    self._requests
                    and total + self._requests[0][2] <= self.max_batch_events
                ):
                    request = self._requests.popleft()
                    batch.append(request)
                    total += request[2]
            site_ids, items = _concatenate(batch)
            # The round adopts the first request's trace (one exemplar
            # request is followed end to end; coalesced peers ride along
            # uninstrumented).
            trace_id = next(
                (t for _, _, _, _, t in batch if t is not None), None
            )
            started = loop.time()
            try:
                await loop.run_in_executor(
                    None, self._apply, site_ids, items, trace_id, len(batch)
                )
            except Exception as exc:
                for _, _, _, future, _ in batch:
                    if not future.cancelled():
                        future.set_exception(exc)
            else:
                elapsed = loop.time() - started
                self.stats["engine_calls"] += 1
                self.stats["coalesced_requests"] += len(batch) - 1
                self.stats["ingested_events"] += total
                self.last_trace_id = trace_id
                for _, _, n, future, _ in batch:
                    if not future.cancelled():
                        future.set_result(n)
                for hook in self.on_applied:
                    try:
                        hook(total, elapsed)
                    except Exception:
                        pass
            async with self._cond:
                self._pending_events -= total
                self._cond.notify_all()

    def _apply(self, site_ids, items, trace_id=None, coalesced=1) -> int:
        with self.lock:
            if trace_id is None or self.spans is None:
                return self.service.ingest(site_ids, items)
            # Runs on the executor thread, so the thread-local trace
            # context is safe to enter here: the whole engine call (and
            # every exec-plane submit it makes) happens under it.
            with trace_scope({"trace_id": trace_id}):
                with self.spans.span(
                    "round", events=len(site_ids), coalesced=coalesced
                ):
                    return self.service.ingest(site_ids, items)

    # -- shutdown ----------------------------------------------------------

    async def close(self) -> None:
        """Finish everything already admitted, then stop the worker."""
        if self._cond is None:
            return
        async with self._cond:
            self._closing = True
            self._cond.notify_all()
        if self._worker is not None:
            await self._worker
            self._worker = None


def _concatenate(batch):
    """Merge admitted requests into one ordered engine batch.

    ``None`` item carriers (count-style unit streams) stay ``None`` when
    every request agrees; otherwise they are materialized as unit items
    so mixed submissions concatenate correctly.
    """
    if len(batch) == 1:
        return batch[0][0], batch[0][1]
    site_ids: list = []
    for ids, _, _, _, _ in batch:
        site_ids.extend(ids.tolist() if hasattr(ids, "tolist") else ids)
    if all(items is None for _, items, _, _, _ in batch):
        return site_ids, None
    merged: list = []
    for _, items, n, _, _ in batch:
        if items is None:
            merged.extend([1] * n)
        else:
            merged.extend(
                items.tolist() if hasattr(items, "tolist") else items
            )
    return site_ids, merged
