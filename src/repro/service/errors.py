"""Exceptions raised by the multi-tenant tracking service."""

from __future__ import annotations

__all__ = ["ServiceError", "DuplicateJobError", "UnknownJobError"]


class ServiceError(Exception):
    """Base class for tracking-service errors."""


class DuplicateJobError(ServiceError):
    """A job with this name is already registered."""


class UnknownJobError(ServiceError, KeyError):
    """No job with this name is registered."""

    def __str__(self) -> str:  # KeyError quotes its args; keep it readable
        return Exception.__str__(self)
