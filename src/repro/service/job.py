"""One registered tracking job: a scheme instance over the shared fleet.

A job owns the full protocol stack for one tracked function — its own
coordinator, one site handler per fleet site, and a logical
:class:`~repro.runtime.Network` whose ledger charges only this job's
traffic (while mirroring into the service-wide aggregate).  Jobs are
created by :meth:`TrackingService.register`, never directly.
"""

from __future__ import annotations

from typing import Optional

from ..runtime import CommStats, Network, SpaceStats, TrackingScheme

__all__ = [
    "TrackingJob",
    "DEFAULT_QUERY_METHODS",
    "query_methods",
    "find_default_query",
    "resolve_query",
]

#: no-argument coordinator queries tried, in order, when ``query()`` is
#: called without an explicit method name.
DEFAULT_QUERY_METHODS = ("estimate", "estimate_total")

#: coordinator methods that mutate protocol state or belong to the
#: transport/persistence machinery — the query API must never reach them.
_NON_QUERY_METHODS = frozenset(
    {
        "on_message",
        "space_words",
        "send_to",
        "broadcast",
        "state_dict",
        "load_state_dict",
    }
)


def query_methods(coordinator) -> list:
    """Public query methods a coordinator exposes, sorted."""
    return sorted(
        name
        for name in dir(coordinator)
        if not name.startswith("_")
        and name not in _NON_QUERY_METHODS
        and callable(getattr(coordinator, name))
    )


def find_default_query(coordinator):
    """The first available no-argument default query, or None."""
    for candidate in DEFAULT_QUERY_METHODS:
        fn = getattr(coordinator, candidate, None)
        if callable(fn):
            return fn
    return None


def resolve_query(coordinator, method):
    """Resolve a query name on a coordinator to a bound callable.

    ``method=None`` picks the default query
    (:data:`DEFAULT_QUERY_METHODS`).  Mutating/transport/persistence
    methods and anything underscored are refused.  Shared by
    :class:`TrackingJob` and the distributed runtime's coordinator hub,
    so the query surface is identical however the protocol is hosted.
    """
    if method is None:
        fn = find_default_query(coordinator)
        if fn is None:
            raise AttributeError(
                f"{type(coordinator).__qualname__} has no default query; "
                f"pass one of {query_methods(coordinator)!r} explicitly"
            )
        return fn
    if method.startswith("_") or method in _NON_QUERY_METHODS:
        raise AttributeError(f"{method!r} is not a public query method")
    fn = getattr(coordinator, method, None)
    if not callable(fn):
        raise AttributeError(
            f"{type(coordinator).__qualname__} has no query method "
            f"{method!r}; available: {query_methods(coordinator)!r}"
        )
    return fn


class TrackingJob:
    """A named tracking workload multiplexed over the shared site fleet.

    Exposes the same driving surface as :class:`~repro.runtime.Simulation`
    (``sites``, ``space``, ``elements_processed``, ``sample_space``) so the
    batched ingestion engine can drive either interchangeably.
    """

    def __init__(
        self,
        name: str,
        scheme: TrackingScheme,
        num_sites: int,
        seed: int,
        one_way: bool = False,
        uplink_drop_rate: float = 0.0,
        mirror: Optional[CommStats] = None,
        space_budget_words: Optional[int] = None,
    ):
        self.name = name
        self.scheme = scheme
        self.seed = seed
        # Same drop-seed derivation as Simulation, so a job and a
        # standalone simulation with identical seeds see identical loss.
        self.network = Network(
            num_sites,
            one_way=one_way,
            uplink_drop_rate=uplink_drop_rate,
            drop_seed=seed ^ 0x5EED,
        )
        if mirror is not None:
            self.network.attach_mirror(mirror)
        self.coordinator = scheme.make_coordinator(self.network, num_sites, seed)
        self.sites = [
            scheme.make_site(self.network, site_id, num_sites, seed)
            for site_id in range(num_sites)
        ]
        self.network.bind(self.coordinator, self.sites)
        self.space = SpaceStats()
        self.space_budget_words = space_budget_words
        self.elements_processed = 0

    # -- accounting --------------------------------------------------------

    def sample_space(self) -> None:
        """Record current space of every site and the coordinator."""
        for site in self.sites:
            self.space.record_site(site.site_id, site.space_words())
        self.space.record_coordinator(self.coordinator.space_words())

    @property
    def comm(self) -> CommStats:
        """This job's communication ledger (its traffic only)."""
        return self.network.stats

    # -- queries -----------------------------------------------------------

    def query(self, method: Optional[str] = None, *args, **kwargs):
        """Call a query method on this job's coordinator.

        With ``method=None`` the first available no-argument default
        (:data:`DEFAULT_QUERY_METHODS`) is used — ``estimate()`` for count
        schemes, ``estimate_total()`` for rank schemes.  Otherwise
        ``method`` names any public coordinator method, e.g.
        ``job.query("estimate_rank", 500)`` or ``job.query("top_items", 10)``.
        """
        try:
            fn = resolve_query(self.coordinator, method)
        except AttributeError as exc:
            raise AttributeError(
                f"job {self.name!r} ({self.scheme.name}): {exc}"
            ) from None
        return fn(*args, **kwargs)

    def _default_estimate(self):
        fn = find_default_query(self.coordinator)
        return fn() if fn is not None else None

    # -- persistence -------------------------------------------------------

    def state_dict(self) -> dict:
        """Snapshot the full protocol stack of this job (JSON-safe).

        One codec scope spans the scheme, network ledger, coordinator and
        every site, so RNG instances shared across components stay shared
        after :meth:`load_state_dict` and the restored job continues the
        exact message/draw transcript.
        """
        from ..persistence.codec import StateEncoder  # deferred: cycle

        encoder = StateEncoder()
        return {
            "name": self.name,
            "seed": self.seed,
            "elements_processed": self.elements_processed,
            "space_budget_words": self.space_budget_words,
            "scheme": encoder.encode(self.scheme),
            "network": encoder.encode(self.network),
            "coordinator": encoder.encode(self.coordinator),
            "sites": encoder.encode(self.sites),
            "space": encoder.encode(self.space),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot into this (fresh) job.

        The job must have been built from the same scheme configuration
        and fleet size; state is merged into the constructor-built
        components so network wiring stays intact.
        """
        from ..persistence.codec import StateCodecError, StateDecoder

        decoder = StateDecoder()
        self.elements_processed = state["elements_processed"]
        self.space_budget_words = state["space_budget_words"]
        for attr in ("scheme", "network", "coordinator"):
            current = getattr(self, attr)
            if decoder.merge(current, state[attr]) is not current:
                raise StateCodecError(
                    f"job {self.name!r}: snapshot {attr} does not match the "
                    f"registered scheme ({type(current).__qualname__})"
                )
        self.sites = decoder.merge(self.sites, state["sites"])
        self.space = decoder.merge(self.space, state["space"])

    # -- snapshot ----------------------------------------------------------

    def status(self) -> dict:
        """Pods-style snapshot: identity, comm ledger, space total/used/available.

        ``space.total`` is the optional per-job budget (words);
        ``available`` is ``total - used.max_site_words`` when a budget is
        set, mirroring the MAAS pods handler's resource triple.
        """
        self.sample_space()
        used_words = self.space.max_site_words
        budget = self.space_budget_words
        return {
            "name": self.name,
            "scheme": self.scheme.name,
            "elements": self.elements_processed,
            "comm": self.comm.as_metrics(),
            "dropped_uplink_messages": self.network.dropped_uplink_messages,
            "space": {
                "total": budget,
                "used": self.space.as_metrics(),
                "available": None if budget is None else budget - used_words,
            },
            "accuracy": {
                "epsilon": getattr(self.scheme, "epsilon", None),
                "estimate": self._default_estimate(),
            },
        }

    def __repr__(self) -> str:
        return (
            f"TrackingJob(name={self.name!r}, scheme={self.scheme.name!r}, "
            f"elements={self.elements_processed})"
        )
