"""The multi-tenant tracking service.

One :class:`TrackingService` owns a fleet of ``k`` sites and multiplexes
any number of named tracking *jobs* — count, frequency, rank, or any
:class:`~repro.runtime.TrackingScheme` — over it.  Every ingested event
is observed by every job (each job tracks a different function of the
same shared stream), each job keeps its own communication and space
ledgers, and the service aggregates fleet-wide totals.

Typical use::

    service = TrackingService(num_sites=32, seed=7)
    service.register("total", RandomizedCountScheme(epsilon=0.01))
    service.register("p99-latency", RandomizedRankScheme(epsilon=0.01))
    service.ingest(site_ids, items)          # numpy arrays or sequences
    service.query("p99-latency", "quantile", 0.99)
    service.status()                         # per-job + fleet snapshot
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from ..runtime import CommStats, TrackingScheme, derive_seed
from ..runtime.batching import batch_from_stream
from .engine import BatchIngestEngine
from .errors import DuplicateJobError, UnknownJobError
from .job import TrackingJob

__all__ = ["TrackingService"]


class TrackingService:
    """A shared site fleet serving many named tracking jobs.

    Parameters
    ----------
    num_sites:
        Fleet size ``k``, shared by every job.
    seed:
        Service root seed.  Each job's protocol seed is derived from it
        and the job name (override per job at :meth:`register`).
    one_way:
        Restrict the shared links to site -> coordinator traffic for all
        jobs (the Theorem 2.2 model).
    uplink_drop_rate:
        Fault injection applied to every job's uplink, with per-job
        independent loss streams derived from the job seed.
    space_sample_interval:
        Elements between full space sweeps during batched ingestion.
    space_budget_words:
        Default per-job site-space budget reported by :meth:`status`
        (pods-style ``total``/``used``/``available``); None disables.
    """

    def __init__(
        self,
        num_sites: int,
        seed: int = 0,
        one_way: bool = False,
        uplink_drop_rate: float = 0.0,
        space_sample_interval: int = 4096,
        space_budget_words: Optional[int] = None,
    ):
        if num_sites < 1:
            raise ValueError("need at least one site")
        self.num_sites = num_sites
        self.seed = seed
        self.one_way = one_way
        self.uplink_drop_rate = uplink_drop_rate
        self.space_budget_words = space_budget_words
        self.comm = CommStats()  # fleet-wide aggregate (all jobs)
        self.engine = BatchIngestEngine(space_sample_interval)
        self.elements_processed = 0
        self._jobs: Dict[str, TrackingJob] = {}

    # -- job registry ------------------------------------------------------

    def register(
        self,
        name: str,
        scheme: TrackingScheme,
        seed: Optional[int] = None,
        space_budget_words: Optional[int] = None,
    ) -> TrackingJob:
        """Register a named job; returns its :class:`TrackingJob`.

        Raises :class:`DuplicateJobError` if the name is taken.  Jobs
        registered mid-stream only observe events ingested afterwards.
        """
        if not name or not isinstance(name, str):
            raise ValueError("job name must be a non-empty string")
        if name in self._jobs:
            raise DuplicateJobError(f"job {name!r} is already registered")
        job = TrackingJob(
            name,
            scheme,
            self.num_sites,
            derive_seed(self.seed, "job", name) if seed is None else seed,
            one_way=self.one_way,
            uplink_drop_rate=self.uplink_drop_rate,
            mirror=self.comm,
            space_budget_words=(
                self.space_budget_words
                if space_budget_words is None
                else space_budget_words
            ),
        )
        self._jobs[name] = job
        return job

    def unregister(self, name: str) -> TrackingJob:
        """Remove and return a job; raises :class:`UnknownJobError`."""
        return self._jobs.pop(self._checked(name))

    def job(self, name: str) -> TrackingJob:
        """Look up a registered job by name."""
        return self._jobs[self._checked(name)]

    def _checked(self, name: str) -> str:
        if name not in self._jobs:
            raise UnknownJobError(
                f"no job named {name!r}; registered: {sorted(self._jobs)}"
            )
        return name

    @property
    def jobs(self) -> Dict[str, TrackingJob]:
        """Read-only view of the registry (insertion-ordered)."""
        return dict(self._jobs)

    def __contains__(self, name: str) -> bool:
        return name in self._jobs

    def __len__(self) -> int:
        return len(self._jobs)

    def __getitem__(self, name: str) -> TrackingJob:
        return self.job(name)

    # -- ingestion ---------------------------------------------------------

    def ingest(self, site_ids, items=None) -> int:
        """Ingest one ordered batch of events into every registered job.

        ``site_ids`` is a numpy integer array or sequence of site ids;
        ``items`` the matching payloads (None means the unit item, for
        count-style streams).  The batch is decomposed into per-site runs
        once and replayed into each job — transcripts are identical to
        per-event driving with the same seeds.  Returns the batch size.
        """
        n = self.engine.ingest(self._jobs.values(), site_ids, items)
        self.elements_processed += n
        return n

    def ingest_stream(self, stream: Iterable, batch_size: int = 8192) -> int:
        """Drain an iterable of ``(site_id, item)`` pairs in batches.

        Convenience bridge from the workload generators; returns the
        total number of events ingested.
        """
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        total = 0
        site_ids: list = []
        items: list = []
        append_site = site_ids.append
        append_item = items.append
        for site_id, item in stream:
            append_site(site_id)
            append_item(item)
            if len(site_ids) >= batch_size:
                total += self.ingest(site_ids, items)
                site_ids, items = [], []
                append_site = site_ids.append
                append_item = items.append
        if site_ids:
            total += self.ingest(site_ids, items)
        return total

    # -- queries -----------------------------------------------------------

    def query(self, name: str, method: Optional[str] = None, *args, **kwargs):
        """Run a coordinator query on one job (see :meth:`TrackingJob.query`)."""
        return self.job(name).query(method, *args, **kwargs)

    def status(self) -> dict:
        """Fleet snapshot: per-job ledgers plus service-wide aggregates.

        Shaped after the pods handler's resource triples: each job's
        ``space`` reports ``total``/``used``/``available``, and the
        service level aggregates the mirrored communication ledger.
        """
        return {
            "sites": self.num_sites,
            "one_way": self.one_way,
            "uplink_drop_rate": self.uplink_drop_rate,
            "elements": self.elements_processed,
            "comm": self.comm.snapshot(),
            "jobs": {name: job.status() for name, job in self._jobs.items()},
        }

    def __repr__(self) -> str:
        return (
            f"TrackingService(sites={self.num_sites}, jobs={len(self._jobs)}, "
            f"elements={self.elements_processed})"
        )

    # Re-exported here so callers driving a service from a generator can
    # build batches without importing the runtime package.
    batch_from_stream = staticmethod(batch_from_stream)
