"""The multi-tenant tracking service.

One :class:`TrackingService` owns a fleet of ``k`` sites and multiplexes
any number of named tracking *jobs* — count, frequency, rank, or any
:class:`~repro.runtime.TrackingScheme` — over it.  Every ingested event
is observed by every job (each job tracks a different function of the
same shared stream), each job keeps its own communication and space
ledgers, and the service aggregates fleet-wide totals.

Typical use::

    service = TrackingService(num_sites=32, seed=7)
    service.register("total", RandomizedCountScheme(epsilon=0.01))
    service.register("p99-latency", RandomizedRankScheme(epsilon=0.01))
    service.ingest(site_ids, items)          # numpy arrays or sequences
    service.query("p99-latency", "quantile", 0.99)
    service.status()                         # per-job + fleet snapshot
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from ..obs.tracing import SpanRecorder, current_trace
from ..runtime import CommStats, TrackingScheme, derive_seed
from ..runtime.batching import batch_from_stream
from .engine import BatchIngestEngine
from .errors import DuplicateJobError, UnknownJobError
from .job import TrackingJob

__all__ = ["TrackingService"]


class TrackingService:
    """A shared site fleet serving many named tracking jobs.

    Parameters
    ----------
    num_sites:
        Fleet size ``k``, shared by every job.
    seed:
        Service root seed.  Each job's protocol seed is derived from it
        and the job name (override per job at :meth:`register`).
    one_way:
        Restrict the shared links to site -> coordinator traffic for all
        jobs (the Theorem 2.2 model).
    uplink_drop_rate:
        Fault injection applied to every job's uplink, with per-job
        independent loss streams derived from the job seed.
    space_sample_interval:
        Elements between full space sweeps during batched ingestion.
    space_budget_words:
        Default per-job site-space budget reported by :meth:`status`
        (pods-style ``total``/``used``/``available``); None disables.
    checkpoint_dir:
        Enable durability: every ingested batch and job (un)registration
        is written ahead to a segmented WAL under this directory, and
        :meth:`checkpoint` persists full snapshots.  The directory must
        be fresh — resume an existing one with :meth:`restore`.
    wal_segment_records / wal_sync:
        WAL tuning (records per segment file; fsync per append).
    """

    def __init__(
        self,
        num_sites: int,
        seed: int = 0,
        one_way: bool = False,
        uplink_drop_rate: float = 0.0,
        space_sample_interval: int = 4096,
        space_budget_words: Optional[int] = None,
        checkpoint_dir: Optional[str] = None,
        wal_segment_records: int = 4096,
        wal_sync: bool = False,
    ):
        if num_sites < 1:
            raise ValueError("need at least one site")
        self.num_sites = num_sites
        self.seed = seed
        self.one_way = one_way
        self.uplink_drop_rate = uplink_drop_rate
        self.space_budget_words = space_budget_words
        self.comm = CommStats()  # fleet-wide aggregate (all jobs)
        self.engine = BatchIngestEngine(space_sample_interval)
        self.elements_processed = 0
        #: span buffer for traced ingests.  Spans are only recorded
        #: while a trace context is active (a gateway round, a hub
        #: command carrying a trace), so untraced hot paths pay one
        #: thread-local read per batch and nothing more.  On shard
        #: hubs the facade drains this via the ``collect_spans``
        #: command; on an unsharded gateway it doubles as the gateway's
        #: own ``/v1/trace`` buffer.
        self.spans = SpanRecorder()
        self._jobs: Dict[str, TrackingJob] = {}
        self._manager = None  # CheckpointManager when durability is on
        self._wal = None
        self._wal_seq = -1  # last WAL record applied to in-memory state
        self._replaying = False
        if checkpoint_dir is not None:
            from ..persistence.recovery import CheckpointManager  # cycle

            manager = CheckpointManager(
                checkpoint_dir,
                segment_records=wal_segment_records,
                sync=wal_sync,
            )
            if manager.has_data():
                manager.close()
                raise ValueError(
                    f"checkpoint dir {checkpoint_dir!r} already holds "
                    "state; resume it with TrackingService.restore(...)"
                )
            self._attach_checkpoints(manager)
            # Initial snapshot: restore() then works even before the
            # first explicit checkpoint (pure-WAL cold replay).
            self.checkpoint()

    # -- job registry ------------------------------------------------------

    def register(
        self,
        name: str,
        scheme: TrackingScheme,
        seed: Optional[int] = None,
        space_budget_words: Optional[int] = None,
    ) -> TrackingJob:
        """Register a named job; returns its :class:`TrackingJob`.

        Raises :class:`DuplicateJobError` if the name is taken.  Jobs
        registered mid-stream only observe events ingested afterwards.
        """
        if not name or not isinstance(name, str):
            raise ValueError("job name must be a non-empty string")
        if name in self._jobs:
            raise DuplicateJobError(f"job {name!r} is already registered")
        resolved_seed = (
            derive_seed(self.seed, "job", name) if seed is None else seed
        )
        resolved_budget = (
            self.space_budget_words
            if space_budget_words is None
            else space_budget_words
        )
        if self._wal is not None and not self._replaying:
            # Write-ahead: the registration is durable before the job
            # exists, so recovery replays it at the same stream position.
            self._wal_seq = self._wal.append_register(
                name, scheme.state_dict(), resolved_seed, resolved_budget
            )
        try:
            job = TrackingJob(
                name,
                scheme,
                self.num_sites,
                resolved_seed,
                one_way=self.one_way,
                uplink_drop_rate=self.uplink_drop_rate,
                mirror=self.comm,
                space_budget_words=resolved_budget,
            )
        except BaseException:
            self._rollback_wal()
            raise
        self._jobs[name] = job
        return job

    def unregister(self, name: str) -> TrackingJob:
        """Remove and return a job; raises :class:`UnknownJobError`."""
        checked = self._checked(name)
        if self._wal is not None and not self._replaying:
            self._wal_seq = self._wal.append_unregister(checked)
        return self._jobs.pop(checked)

    def job(self, name: str) -> TrackingJob:
        """Look up a registered job by name."""
        return self._jobs[self._checked(name)]

    def _checked(self, name: str) -> str:
        if name not in self._jobs:
            raise UnknownJobError(
                f"no job named {name!r}; registered: {sorted(self._jobs)}"
            )
        return name

    @property
    def jobs(self) -> Dict[str, TrackingJob]:
        """Read-only view of the registry (insertion-ordered)."""
        return dict(self._jobs)

    def __contains__(self, name: str) -> bool:
        return name in self._jobs

    def __len__(self) -> int:
        return len(self._jobs)

    def __getitem__(self, name: str) -> TrackingJob:
        return self.job(name)

    # -- ingestion ---------------------------------------------------------

    def ingest(self, site_ids, items=None) -> int:
        """Ingest one ordered batch of events into every registered job.

        ``site_ids`` is a numpy integer array or sequence of site ids;
        ``items`` the matching payloads (None means the unit item, for
        count-style streams).  The batch is decomposed into per-site runs
        once and replayed into each job — transcripts are identical to
        per-event driving with the same seeds.  Returns the batch size.

        With ``checkpoint_dir`` enabled the batch is appended to the WAL
        *before* any job observes it (write-ahead), so a crash at any
        point either replays the whole batch on recovery or none of it.
        """
        if self._wal is not None and not self._replaying:
            self._wal_seq = self._wal.append_batch(site_ids, items)
        try:
            if current_trace() is not None:
                with self.spans.span(
                    "ingest", events=len(site_ids), jobs=len(self._jobs)
                ):
                    n = self.engine.ingest(
                        self._jobs.values(), site_ids, items
                    )
            else:
                n = self.engine.ingest(self._jobs.values(), site_ids, items)
        except BaseException:
            # A logged-but-unappliable batch (bad site id, hostile item)
            # must not survive to poison every future restore.  The
            # in-memory stacks may be part-driven — same caveat as a
            # non-durable service whose ingest raised — but the durable
            # log stays consistent.
            self._rollback_wal()
            raise
        self.elements_processed += n
        return n

    def ingest_stream(
        self,
        stream: Iterable,
        batch_size: int = 8192,
        checkpoint_every: Optional[int] = None,
    ) -> int:
        """Drain an iterable of ``(site_id, item)`` pairs in batches.

        Convenience bridge from the workload generators; returns the
        total number of events ingested.  With durability enabled,
        ``checkpoint_every`` snapshots the service every time that many
        events have been drained (measured from the start of this call).
        """
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        if checkpoint_every is not None:
            if checkpoint_every < 1:
                raise ValueError("checkpoint_every must be positive")
            if self._manager is None:
                raise RuntimeError(
                    "checkpoint_every requires a checkpoint_dir"
                )
        next_checkpoint = checkpoint_every
        total = 0
        site_ids: list = []
        items: list = []
        append_site = site_ids.append
        append_item = items.append
        for site_id, item in stream:
            append_site(site_id)
            append_item(item)
            if len(site_ids) >= batch_size:
                total += self.ingest(site_ids, items)
                site_ids, items = [], []
                append_site = site_ids.append
                append_item = items.append
                if next_checkpoint is not None and total >= next_checkpoint:
                    self.checkpoint()
                    next_checkpoint = total + checkpoint_every
        if site_ids:
            total += self.ingest(site_ids, items)
        return total

    # -- queries -----------------------------------------------------------

    def query(self, name: str, method: Optional[str] = None, *args, **kwargs):
        """Run a coordinator query on one job (see :meth:`TrackingJob.query`)."""
        return self.job(name).query(method, *args, **kwargs)

    def status(self) -> dict:
        """Fleet snapshot: per-job ledgers plus service-wide aggregates.

        Shaped after the pods handler's resource triples: each job's
        ``space`` reports ``total``/``used``/``available``, and the
        service level aggregates the mirrored communication ledger.
        """
        return {
            "sites": self.num_sites,
            "one_way": self.one_way,
            "uplink_drop_rate": self.uplink_drop_rate,
            "elements": self.elements_processed,
            "comm": self.comm.snapshot(),
            "jobs": {name: job.status() for name, job in self._jobs.items()},
        }

    def metrics_sample(self) -> dict:
        """One flat, JSON-safe telemetry sample for the metrics plane.

        Cheaper and flatter than :meth:`status` (no query evaluation —
        a scrape must never run estimators), but it does refresh each
        job's space high-water marks so per-shard used/available words
        are current.  The shard facade fans this out per hub and the
        gateway bridges the result into its registry.
        """
        jobs = {}
        for name, job in self._jobs.items():
            job.sample_space()
            jobs[name] = {
                "elements": job.elements_processed,
                "comm": job.comm.as_metrics(),
                "space": job.space.as_metrics(),
                "budget": job.space_budget_words,
            }
        wal = self._wal
        return {
            "elements": self.elements_processed,
            "engine": dict(self.engine.stats),
            "comm": self.comm.as_metrics(),
            "wal_bytes": 0 if wal is None else wal.bytes_appended,
            "wal_records": 0 if wal is None else wal.records_appended,
            "jobs": jobs,
        }

    # -- budgets -----------------------------------------------------------

    def has_space_budgets(self) -> bool:
        """True when any registered job carries a space budget."""
        return any(
            job.space_budget_words is not None
            for job in self._jobs.values()
        )

    def space_overages(self) -> dict:
        """Jobs whose high-water site space exceeds their budget.

        Reads the engine's sampled high-water marks without a fresh
        sweep, so it is O(jobs) and safe on a hot path; enforcement
        therefore lags a budget breach by at most one
        ``space_sample_interval`` of events.
        """
        out = {}
        for name, job in self._jobs.items():
            budget = job.space_budget_words
            if budget is None:
                continue
            used = job.space.max_site_words
            if used > budget:
                out[name] = {"used": used, "budget": budget}
        return out

    # -- persistence -------------------------------------------------------

    def state_dict(self) -> dict:
        """Full-service snapshot: config, ledgers, every job's stack.

        The result is JSON-serializable and versioned (see
        :mod:`repro.persistence.snapshot` for the file envelope).
        :meth:`from_state` rebuilds a service that continues the exact
        transcript — same messages, same RNG draws, same query answers.
        """
        from ..persistence.codec import object_state  # deferred: cycle

        return {
            "config": {
                "num_sites": self.num_sites,
                "seed": self.seed,
                "one_way": self.one_way,
                "uplink_drop_rate": self.uplink_drop_rate,
                "space_sample_interval": self.engine.space_sample_interval,
                "space_budget_words": self.space_budget_words,
            },
            "elements_processed": self.elements_processed,
            "wal_seq": self._wal_seq,
            "comm": object_state(self.comm),
            "jobs": [job.state_dict() for job in self._jobs.values()],
        }

    @classmethod
    def from_state(cls, state: dict) -> "TrackingService":
        """Rebuild a service from :meth:`state_dict` output (in memory).

        The returned service has no checkpoint directory attached; the
        recovery manager wires one up after WAL replay.
        """
        from ..persistence.codec import decode_value, load_object_state

        config = state["config"]
        service = cls(
            num_sites=config["num_sites"],
            seed=config["seed"],
            one_way=config["one_way"],
            uplink_drop_rate=config["uplink_drop_rate"],
            space_sample_interval=config["space_sample_interval"],
            space_budget_words=config["space_budget_words"],
        )
        service.elements_processed = state["elements_processed"]
        service._wal_seq = state.get("wal_seq", -1)
        load_object_state(service.comm, state["comm"])
        for job_state in state["jobs"]:
            job = service.register(
                job_state["name"],
                decode_value(job_state["scheme"]),
                seed=job_state["seed"],
                space_budget_words=job_state["space_budget_words"],
            )
            job.load_state_dict(job_state)
        return service

    def checkpoint(self) -> str:
        """Write a snapshot, prune covered WAL segments; returns the path.

        Requires ``checkpoint_dir``.  After a checkpoint, recovery cost
        is one snapshot load plus only the WAL tail written since.
        """
        if self._manager is None:
            raise RuntimeError(
                "no checkpoint_dir configured; pass checkpoint_dir= to "
                "TrackingService or use state_dict() for in-memory snapshots"
            )
        return self._manager.save(self)

    @classmethod
    def restore(
        cls,
        checkpoint_dir: str,
        wal_segment_records: int = 4096,
        wal_sync: bool = False,
    ) -> "TrackingService":
        """Recover a service from a checkpoint directory.

        Loads the newest snapshot, replays the WAL tail through the
        batched engine, and resumes durable logging to the same
        directory.  The result is transcript-identical to a service that
        never died.
        """
        from ..persistence.recovery import restore_service  # cycle

        return restore_service(
            checkpoint_dir,
            segment_records=wal_segment_records,
            sync=wal_sync,
        )

    def _attach_checkpoints(self, manager) -> None:
        """Adopt a recovery manager (post-construction wiring)."""
        self._manager = manager
        self._wal = manager.wal

    def _rollback_wal(self) -> None:
        """Undo the write-ahead record of a mutation whose apply failed."""
        if self._wal is not None and not self._replaying:
            self._wal.rollback_last()
            self._wal_seq -= 1

    @property
    def checkpoint_dir(self) -> Optional[str]:
        """The attached checkpoint directory, or None."""
        return None if self._manager is None else self._manager.directory

    def close(self) -> None:
        """Release the WAL file handle (no-op without durability)."""
        if self._manager is not None:
            self._manager.close()

    def __repr__(self) -> str:
        return (
            f"TrackingService(sites={self.num_sites}, jobs={len(self._jobs)}, "
            f"elements={self.elements_processed})"
        )

    # Re-exported here so callers driving a service from a generator can
    # build batches without importing the runtime package.
    batch_from_stream = staticmethod(batch_from_stream)
