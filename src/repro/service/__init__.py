"""Multi-tenant tracking service: many named jobs over one shared fleet.

This package turns the single-scheme simulator into a service:
:class:`TrackingService` owns ``k`` sites and a job registry; callers
register named tracking jobs (any :class:`~repro.runtime.TrackingScheme`),
push events through the batched ingestion engine, and read per-job
communication/space/accuracy snapshots through the query API.

Components:

* :class:`TrackingService` — registry, ingestion and query front-end.
* :class:`TrackingJob` — one registered scheme instance with its own
  coordinator, site handlers and ledgers.
* :class:`BatchIngestEngine` — decompose-once, drive-many batched hot
  path shared with :meth:`Simulation.run_batched`.
* :class:`DuplicateJobError` / :class:`UnknownJobError` — registry errors.

Durability is one constructor argument away:
``TrackingService(checkpoint_dir=...)`` write-ahead-logs every batch and
registration, ``service.checkpoint()`` snapshots the full protocol
state, and ``TrackingService.restore(dir)`` rebuilds a crashed service
transcript-identically (see :mod:`repro.persistence`).
"""

from .async_ingest import AsyncBatchIngestor, IngestorClosedError
from .engine import BatchIngestEngine
from .errors import DuplicateJobError, ServiceError, UnknownJobError
from .job import TrackingJob
from .jobspec import SCHEMES, parse_job_spec
from .service import TrackingService

__all__ = [
    "AsyncBatchIngestor",
    "BatchIngestEngine",
    "DuplicateJobError",
    "IngestorClosedError",
    "SCHEMES",
    "ServiceError",
    "TrackingJob",
    "TrackingService",
    "UnknownJobError",
    "parse_job_spec",
]
