"""Job specifications: ``NAME=PROBLEM/SCHEME[:EPS]`` -> scheme instances.

The one grammar for naming tracking jobs everywhere a job can be
created — the ``repro serve`` CLI flags, the gateway's
``POST /v1/jobs`` body, and programmatic callers.  ``PROBLEM`` is
``count``/``frequency``/``rank`` or ``window:W`` (a sliding window of
``W`` time units, scheme ``count``).
"""

from __future__ import annotations

from ..core import (
    Cormode05RankScheme,
    DeterministicCountScheme,
    DeterministicFrequencyScheme,
    DeterministicRankScheme,
    DistributedSamplingScheme,
    RandomizedCountScheme,
    RandomizedFrequencyScheme,
    RandomizedRankScheme,
    WindowedCountScheme,
)

__all__ = ["SCHEMES", "parse_job_spec", "parse_query_literal"]


def parse_query_literal(text: str):
    """Best-effort typed parse of a query argument.

    JSON literals come back typed (``0.5`` -> float, ``[1,2]`` -> list);
    bare words pass through as strings.  The one grammar for query
    arguments arriving as text — the gateway's ``?arg=`` parameters and
    the ``repro query`` CLI both use it, so an argument means the same
    thing on every path.
    """
    import json

    try:
        return json.loads(text)
    except ValueError:
        return text

SCHEMES = {
    "count": {
        "randomized": RandomizedCountScheme,
        "deterministic": DeterministicCountScheme,
        "sampling": DistributedSamplingScheme,
    },
    "frequency": {
        "randomized": RandomizedFrequencyScheme,
        "deterministic": DeterministicFrequencyScheme,
        "sampling": DistributedSamplingScheme,
    },
    "rank": {
        "randomized": RandomizedRankScheme,
        "deterministic": DeterministicRankScheme,
        "cormode05": Cormode05RankScheme,
        "sampling": DistributedSamplingScheme,
    },
}


def parse_job_spec(spec: str, default_eps: float):
    """Parse ``NAME=PROBLEM/SCHEME[:EPS]`` into (name, problem, scheme).

    ``PROBLEM`` is ``count``/``frequency``/``rank`` or ``window:W`` (a
    sliding window of ``W`` time units, scheme ``count``), e.g.
    ``lastmin=window:60000/count:0.05``.
    """
    name, sep, rest = spec.partition("=")
    if not sep or not name or not rest:
        raise ValueError(
            f"bad job spec {spec!r}: expected NAME=PROBLEM/SCHEME[:EPS]"
        )
    problem_part, sep, scheme_part = rest.partition("/")
    if not sep or not scheme_part:
        raise ValueError(
            f"bad job spec {spec!r}: expected NAME=PROBLEM/SCHEME[:EPS]"
        )
    scheme_name, sep, eps_part = scheme_part.partition(":")
    if ":" in eps_part:
        raise ValueError(f"bad job spec {spec!r}: too many ':' fields")
    if sep:
        try:
            eps = float(eps_part)
        except ValueError:
            raise ValueError(
                f"bad job spec {spec!r}: eps {eps_part!r} is not a number"
            ) from None
    else:
        eps = default_eps

    problem, sep, window_part = problem_part.partition(":")
    if problem == "window":
        if not sep:
            raise ValueError(
                f"bad job spec {spec!r}: window jobs need a length, "
                "e.g. window:60000/count"
            )
        try:
            window = int(window_part)
        except ValueError:
            raise ValueError(
                f"bad job spec {spec!r}: window length {window_part!r} "
                "is not an integer"
            ) from None
        if scheme_name != "count":
            raise ValueError(
                f"bad job spec {spec!r}: unknown scheme {scheme_name!r} "
                "for window (choose from ['count'])"
            )
        return name, "window", WindowedCountScheme(window, eps)
    if sep or problem not in SCHEMES:
        raise ValueError(
            f"bad job spec {spec!r}: unknown problem {problem_part!r} "
            f"(choose from {sorted(SCHEMES) + ['window:W']})"
        )
    factory = SCHEMES[problem].get(scheme_name)
    if factory is None:
        raise ValueError(
            f"bad job spec {spec!r}: unknown scheme {scheme_name!r} for "
            f"{problem} (choose from {sorted(SCHEMES[problem])})"
        )
    return name, problem, factory(eps)
