"""Arrival-pattern generators: who receives each element, and what it is.

A *workload* is an iterable of ``(site_id, item)`` pairs.  Generators
here compose an arrival pattern (round-robin, uniform, skewed, bursty)
with an item source (see :mod:`repro.workloads.zipf` for item value
distributions); for count-tracking the item payload is irrelevant and
defaults to ``1``.
"""

from __future__ import annotations

import random
from bisect import bisect_left
from typing import Callable, Iterator, Optional

from ..runtime.rng import derive_rng


def _zipf_cumulative(count: int, alpha: float) -> list:
    """Cumulative distribution of Zipf weights ``(i+1)^-alpha``.

    ``bisect_left(cum, u)`` for uniform ``u`` then samples index ``i``
    with probability proportional to its weight.
    """
    weights = [(i + 1) ** (-alpha) for i in range(count)]
    total = sum(weights)
    cumulative = []
    acc = 0.0
    for w in weights:
        acc += w / total
        cumulative.append(acc)
    # Float rounding can leave the final entry below 1.0; pin it so the
    # bisection can never fall off the end (u is always < 1).
    cumulative[-1] = 1.0
    return cumulative

__all__ = [
    "round_robin",
    "uniform_sites",
    "single_site",
    "skewed_sites",
    "bursty_sites",
    "multi_tenant",
    "timestamped",
    "with_items",
]


def round_robin(n: int, k: int, item=1) -> Iterator:
    """Element ``t`` goes to site ``t mod k`` (case (b) of Theorem 2.2)."""
    for t in range(n):
        yield t % k, item


def uniform_sites(n: int, k: int, seed: int = 0, item=1) -> Iterator:
    """Each element goes to an independently uniform site."""
    rng = derive_rng(seed, "uniform-sites")
    for _ in range(n):
        yield rng.randrange(k), item


def single_site(n: int, k: int, site_id: int = 0, item=1) -> Iterator:
    """All elements arrive at one site (case (a) of Theorem 2.2)."""
    if not 0 <= site_id < k:
        raise ValueError("site_id out of range")
    for _ in range(n):
        yield site_id, item


def skewed_sites(n: int, k: int, alpha: float = 1.0, seed: int = 0, item=1) -> Iterator:
    """Zipf-skewed site choice: site i picked with weight (i+1)^-alpha."""
    rng = derive_rng(seed, "skewed-sites")
    cumulative = _zipf_cumulative(k, alpha)
    for _ in range(n):
        yield bisect_left(cumulative, rng.random()), item


def bursty_sites(
    n: int, k: int, burst: int = 100, seed: int = 0, item=1
) -> Iterator:
    """Elements arrive in bursts: a random site takes ``burst`` in a row."""
    rng = derive_rng(seed, "bursty-sites")
    remaining = n
    while remaining > 0:
        site = rng.randrange(k)
        take = min(burst, remaining)
        for _ in range(take):
            yield site, item
        remaining -= take


def multi_tenant(
    n: int,
    k: int,
    tenants: int = 4,
    tenant_alpha: float = 1.0,
    site_alpha: float = 0.8,
    burst: int = 32,
    universe: int = 1000,
    labeled: bool = True,
    seed: int = 0,
) -> Iterator:
    """Interleave several labeled sub-streams with skew across sites.

    Models a multi-tenant collector: ``tenants`` independent event
    sources share a fleet of ``k`` sites.  Traffic arrives in per-source
    micro-batches of up to ``burst`` consecutive events (the shape real
    ingestion pipelines deliver — and what the batched fast path
    amortizes over).  Tenant ``t`` is chosen per burst with Zipf weight
    ``(t+1)^-tenant_alpha``; within a tenant, sites are Zipf-skewed with
    exponent ``site_alpha`` over a tenant-specific rotation of the fleet,
    so tenants favour *different* hot sites.  Item values are drawn
    uniformly from a per-tenant slice of ``[0, tenants * universe)``;
    with ``labeled=True`` each item is a ``("t<i>", value)`` pair, so
    frequency jobs see per-tenant heavy hitters, otherwise the bare
    integer value (rank-friendly).
    """
    if tenants < 1:
        raise ValueError("need at least one tenant")
    if burst < 1:
        raise ValueError("burst must be positive")
    rng = derive_rng(seed, "multi-tenant")
    tenant_cum = _zipf_cumulative(tenants, tenant_alpha)
    site_cum = _zipf_cumulative(k, site_alpha)
    labels = [f"t{t}" for t in range(tenants)]

    remaining = n
    while remaining > 0:
        tenant = bisect_left(tenant_cum, rng.random())
        # Rotate the skewed site law so each tenant has its own hot site.
        site = (
            bisect_left(site_cum, rng.random()) + tenant * max(1, k // tenants)
        ) % k
        take = min(burst, remaining)
        base = tenant * universe
        label = labels[tenant]
        for _ in range(take):
            value = base + rng.randrange(universe)
            yield site, (label, value) if labeled else value
        remaining -= take


def with_items(
    arrivals: Iterator, item_source: Callable[[int], object]
) -> Iterator:
    """Replace the item of each arrival with ``item_source(t)``."""
    for t, (site_id, _) in enumerate(arrivals):
        yield site_id, item_source(t)


def timestamped(
    arrivals: Iterator,
    seed: int = 0,
    mean_gap: float = 1.0,
    period: Optional[float] = None,
    swing: float = 0.8,
) -> Iterator:
    """Replace item payloads with non-decreasing integer timestamps.

    Bridges any arrival pattern to the sliding-window trackers, whose
    elements are their own clock (``repro.core.window``): inter-arrival
    gaps are exponential with mean ``mean_gap``, optionally modulated by
    a sinusoidal rate of the given ``period`` (in time units) and
    relative ``swing`` — the day/night shape of the sliding-window
    example, so window counts rise and fall instead of pinning at W.
    """
    import math

    if mean_gap <= 0:
        raise ValueError("mean_gap must be positive")
    if not 0.0 <= swing < 1.0:
        raise ValueError("swing must be in [0, 1)")
    rng = derive_rng(seed, "timestamped")
    t = 0.0
    base_rate = 1.0 / mean_gap
    for site_id, _ in arrivals:
        rate = base_rate
        if period:
            rate *= 1.0 + swing * math.sin(2 * math.pi * t / period)
        t += rng.expovariate(max(rate, base_rate * 1e-3))
        yield site_id, int(t)
