"""Arrival-pattern generators: who receives each element, and what it is.

A *workload* is an iterable of ``(site_id, item)`` pairs.  Generators
here compose an arrival pattern (round-robin, uniform, skewed, bursty)
with an item source (see :mod:`repro.workloads.zipf` for item value
distributions); for count-tracking the item payload is irrelevant and
defaults to ``1``.
"""

from __future__ import annotations

import random
from typing import Callable, Iterator, Optional

from ..runtime.rng import derive_rng

__all__ = [
    "round_robin",
    "uniform_sites",
    "single_site",
    "skewed_sites",
    "bursty_sites",
    "with_items",
]


def round_robin(n: int, k: int, item=1) -> Iterator:
    """Element ``t`` goes to site ``t mod k`` (case (b) of Theorem 2.2)."""
    for t in range(n):
        yield t % k, item


def uniform_sites(n: int, k: int, seed: int = 0, item=1) -> Iterator:
    """Each element goes to an independently uniform site."""
    rng = derive_rng(seed, "uniform-sites")
    for _ in range(n):
        yield rng.randrange(k), item


def single_site(n: int, k: int, site_id: int = 0, item=1) -> Iterator:
    """All elements arrive at one site (case (a) of Theorem 2.2)."""
    if not 0 <= site_id < k:
        raise ValueError("site_id out of range")
    for _ in range(n):
        yield site_id, item


def skewed_sites(n: int, k: int, alpha: float = 1.0, seed: int = 0, item=1) -> Iterator:
    """Zipf-skewed site choice: site i picked with weight (i+1)^-alpha."""
    rng = derive_rng(seed, "skewed-sites")
    weights = [(i + 1) ** (-alpha) for i in range(k)]
    total = sum(weights)
    cumulative = []
    acc = 0.0
    for w in weights:
        acc += w / total
        cumulative.append(acc)
    for _ in range(n):
        u = rng.random()
        lo = 0
        hi = k - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cumulative[mid] >= u:
                hi = mid
            else:
                lo = mid + 1
        yield lo, item


def bursty_sites(
    n: int, k: int, burst: int = 100, seed: int = 0, item=1
) -> Iterator:
    """Elements arrive in bursts: a random site takes ``burst`` in a row."""
    rng = derive_rng(seed, "bursty-sites")
    remaining = n
    while remaining > 0:
        site = rng.randrange(k)
        take = min(burst, remaining)
        for _ in range(take):
            yield site, item
        remaining -= take


def with_items(
    arrivals: Iterator, item_source: Callable[[int], object]
) -> Iterator:
    """Replace the item of each arrival with ``item_source(t)``."""
    for t, (site_id, _) in enumerate(arrivals):
        yield site_id, item_source(t)
