"""Item-value distributions for frequency and rank workloads."""

from __future__ import annotations

import random
from typing import Callable, Iterator

from ..runtime.rng import derive_rng

__all__ = [
    "zipf_items",
    "uniform_items",
    "random_permutation_values",
    "sorted_values",
    "gaussian_values",
]


def zipf_items(universe: int, alpha: float = 1.1, seed: int = 0) -> Callable[[int], int]:
    """Item source drawing from a Zipf(alpha) law over ``universe`` items.

    Item 0 is the heaviest.  Uses inverse-CDF sampling on the exact
    finite Zipf weights (no scipy dependency on the hot path).
    """
    if universe < 1:
        raise ValueError("universe must be >= 1")
    rng = derive_rng(seed, "zipf-items")
    weights = [(i + 1) ** (-alpha) for i in range(universe)]
    total = sum(weights)
    cumulative = []
    acc = 0.0
    for w in weights:
        acc += w / total
        cumulative.append(acc)

    def source(_t: int) -> int:
        u = rng.random()
        lo, hi = 0, universe - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cumulative[mid] >= u:
                hi = mid
            else:
                lo = mid + 1
        return lo

    return source


def uniform_items(universe: int, seed: int = 0) -> Callable[[int], int]:
    """Item source drawing uniformly from ``range(universe)``."""
    rng = derive_rng(seed, "uniform-items")

    def source(_t: int) -> int:
        return rng.randrange(universe)

    return source


def random_permutation_values(n: int, seed: int = 0) -> list:
    """Values 0..n-1 in random order (the standard rank workload)."""
    rng = derive_rng(seed, "perm-values")
    values = list(range(n))
    rng.shuffle(values)
    return values


def sorted_values(n: int, descending: bool = False) -> list:
    """Monotone value order — the adversarial-ish case for quantiles."""
    values = list(range(n))
    return values[::-1] if descending else values


def gaussian_values(n: int, mu: float = 0.0, sigma: float = 1.0, seed: int = 0) -> list:
    """IID normal values (latency-like rank workload)."""
    rng = derive_rng(seed, "gauss-values")
    return [rng.gauss(mu, sigma) for _ in range(n)]
