"""Hard input distributions from the paper's lower-bound proofs.

``theorem22_distribution`` draws from the distribution mu of Theorem 2.2:
with probability 1/2 all N elements arrive at one uniformly random site
(case a); otherwise they arrive round-robin (case b).  Any *one-way*
protocol must pay ``Omega(k/eps log N)`` messages against mu.

``theorem24_stream`` builds the two-way lower-bound instance of
Theorem 2.4: ``log(eps N / k)`` rounds, each of ``1/(2 eps sqrt(k))``
subrounds; in each subround ``s = k/2 +- sqrt(k)`` random sites receive
``2^i`` elements each, forcing the protocol to solve a fresh 1-bit
instance (Definition 2.1) per subround.
"""

from __future__ import annotations

import math
from typing import Iterator

from ..runtime.rng import derive_rng

__all__ = ["theorem22_distribution", "theorem24_stream"]


def theorem22_distribution(n: int, k: int, seed: int = 0, item=1) -> Iterator:
    """One draw from the hard distribution mu of Theorem 2.2."""
    rng = derive_rng(seed, "thm22")
    if rng.random() < 0.5:
        target = rng.randrange(k)
        for _ in range(n):
            yield target, item
    else:
        for t in range(n):
            yield t % k, item


def theorem24_stream(k: int, eps: float, rounds: int, seed: int = 0, item=1):
    """The Theorem 2.4 adversarial stream.

    Yields ``(site_id, item)`` pairs; also records, per subround, the
    drawn value of ``s`` (k/2 + sqrt(k) or k/2 - sqrt(k)) in the returned
    generator's ``.history`` — useful for validating that a tracker must
    effectively answer each embedded 1-bit instance.

    Returns (stream_list, history) where history is a list of
    (round, subround, s) triples.
    """
    if k < 4:
        raise ValueError("need k >= 4 for the s = k/2 +- sqrt(k) gadget")
    rng = derive_rng(seed, "thm24")
    sqrt_k = int(math.floor(math.sqrt(k)))
    subrounds = max(1, int(1.0 / (2 * eps * math.sqrt(k))))
    stream = []
    history = []
    for i in range(rounds):
        per_site = 1 << i
        for j in range(subrounds):
            if rng.random() < 0.5:
                s = k // 2 + sqrt_k
            else:
                s = k // 2 - sqrt_k
            sites = rng.sample(range(k), s)
            history.append((i, j, s))
            for site in sites:
                for _ in range(per_site):
                    stream.append((site, item))
    return stream, history
