"""Workload generators: arrival patterns, item laws, adversarial inputs."""

from .adversarial import theorem22_distribution, theorem24_stream
from .generators import (
    bursty_sites,
    multi_tenant,
    round_robin,
    single_site,
    skewed_sites,
    timestamped,
    uniform_sites,
    with_items,
)
from .zipf import (
    gaussian_values,
    random_permutation_values,
    sorted_values,
    uniform_items,
    zipf_items,
)

__all__ = [
    "theorem22_distribution",
    "theorem24_stream",
    "bursty_sites",
    "round_robin",
    "single_site",
    "skewed_sites",
    "multi_tenant",
    "timestamped",
    "uniform_sites",
    "with_items",
    "gaussian_values",
    "random_permutation_values",
    "sorted_values",
    "uniform_items",
    "zipf_items",
]
