"""The 1-bit problem (Definition 2.1) and probing strategies (Lemma 2.2).

``s`` is ``k/2 + sqrt(k)`` or ``k/2 - sqrt(k)`` with equal probability;
``s`` random sites hold bit 1.  The coordinator must identify ``s`` with
probability >= 0.8.  Lemma 2.2 shows any protocol needs ``Omega(k)``
communication; the essence is that probing ``z = o(k)`` random sites
cannot distinguish the two hypergeometric distributions.

This module provides the instance sampler, the optimal threshold test on
``z`` probes, and exact/empirical success probabilities, regenerating the
quantities behind Figure 1 and Claim A.1.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from ..runtime.rng import derive_rng

__all__ = [
    "OneBitInstance",
    "sample_instance",
    "threshold_probe_success",
    "exact_probe_success",
    "min_probes_for_success",
]


@dataclass(frozen=True)
class OneBitInstance:
    """One draw of the Definition 2.1 input."""

    k: int
    s: int  # number of 1-bits (k/2 + sqrt(k) or k/2 - sqrt(k))
    high: bool  # True iff s = k/2 + sqrt(k)
    bits: tuple


def sample_instance(k: int, rng: random.Random) -> OneBitInstance:
    """Draw an instance: pick s, then the random subset of 1-sites."""
    if k < 4:
        raise ValueError("need k >= 4")
    sqrt_k = int(math.floor(math.sqrt(k)))
    high = rng.random() < 0.5
    s = k // 2 + sqrt_k if high else k // 2 - sqrt_k
    ones = set(rng.sample(range(k), s))
    bits = tuple(1 if i in ones else 0 for i in range(k))
    return OneBitInstance(k=k, s=s, high=high, bits=bits)


def threshold_probe_success(
    k: int, z: int, trials: int = 2000, seed: int = 0
) -> float:
    """Empirical success rate of the optimal z-probe threshold test.

    Probes ``z`` distinct random sites, counts ones ``X``, and guesses
    "high" iff ``X > z/2`` (the symmetric likelihood threshold; ties are
    broken by a fair coin).
    """
    if not 1 <= z <= k:
        raise ValueError("z must be in [1, k]")
    rng = derive_rng(seed, "one-bit-trials", k, z)
    wins = 0
    for _ in range(trials):
        inst = sample_instance(k, rng)
        probed = rng.sample(range(k), z)
        x = sum(inst.bits[i] for i in probed)
        if 2 * x == z:
            guess_high = rng.random() < 0.5
        else:
            guess_high = 2 * x > z
        if guess_high == inst.high:
            wins += 1
    return wins / trials


def exact_probe_success(k: int, z: int) -> float:
    """Exact success probability of the threshold test via the
    hypergeometric pmf (no Monte Carlo noise)."""
    if not 1 <= z <= k:
        raise ValueError("z must be in [1, k]")
    sqrt_k = int(math.floor(math.sqrt(k)))
    s_high = k // 2 + sqrt_k
    s_low = k // 2 - sqrt_k

    def pmf(s: int, x: int) -> float:
        if x < 0 or x > z or x > s or z - x > k - s:
            return 0.0
        return (
            math.comb(s, x) * math.comb(k - s, z - x) / math.comb(k, z)
        )

    success = 0.0
    for x in range(z + 1):
        p_high = pmf(s_high, x)
        p_low = pmf(s_low, x)
        if 2 * x > z:
            success += 0.5 * p_high
        elif 2 * x < z:
            success += 0.5 * p_low
        else:
            success += 0.25 * (p_high + p_low)
    return success


def min_probes_for_success(k: int, target: float = 0.8) -> int:
    """Smallest z whose exact success probability reaches ``target``.

    Claim A.1 predicts this grows as Omega(k); the Figure 1 benchmark
    reports ``min_probes / k`` across k to exhibit the linear scaling.
    """
    lo, hi = 1, k
    if exact_probe_success(k, hi) < target:
        return k  # even probing everything barely suffices; cap at k
    while lo < hi:
        mid = (lo + hi) // 2
        if exact_probe_success(k, mid) >= target:
            hi = mid
        else:
            lo = mid + 1
    return lo
