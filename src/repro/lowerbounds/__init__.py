"""Lower-bound constructions and experiments (Sections 2.2, 3.2, App. A)."""

from .one_bit import (
    OneBitInstance,
    exact_probe_success,
    min_probes_for_success,
    sample_instance,
    threshold_probe_success,
)
from .one_way import OneWayThresholdScheme, measure_on_mu
from .sampling_problem import (
    TwoNormals,
    figure1_curve,
    hypergeometric_error,
    normal_error,
)

__all__ = [
    "OneBitInstance",
    "exact_probe_success",
    "min_probes_for_success",
    "sample_instance",
    "threshold_probe_success",
    "OneWayThresholdScheme",
    "measure_on_mu",
    "TwoNormals",
    "figure1_curve",
    "hypergeometric_error",
    "normal_error",
]
