"""The sampling problem of Appendix A and the Figure 1 construction.

After the protocol's first phase, the coordinator must decide whether
``s' = k/2 + sqrt(k)`` or ``k/2 - sqrt(k)`` sites (out of ``k'``) hold
bit 1 by probing ``z`` of them.  The probe count ``X`` follows one of two
hypergeometric distributions; Figure 1 approximates them by normals
``N(z(p - alpha), sigma^2)`` and ``N(z(p + alpha), sigma^2)`` and the
optimal test thresholds at their crossing ``x0``.  The total error is
``(Phi(-l1/sigma1) + Phi(-l2/sigma2)) / 2``, which stays near 1/2 unless
``z = Omega(k)``.

This module computes both the normal-approximation error curve and the
exact hypergeometric error, regenerating Figure 1's quantities.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "normal_error",
    "hypergeometric_error",
    "figure1_curve",
    "TwoNormals",
]


def _phi(x: float) -> float:
    """Standard normal CDF."""
    return 0.5 * (1.0 + math.erf(x / math.sqrt(2.0)))


@dataclass(frozen=True)
class TwoNormals:
    """The Figure 1 picture: two normals and the optimal threshold."""

    mu1: float
    mu2: float
    sigma1: float
    sigma2: float
    x0: float
    error: float


def normal_error(k: int, z: int) -> TwoNormals:
    """Error of the optimal test under the normal approximation.

    ``p = 1/2``, ``alpha = 1/sqrt(k)``; the two means are ``z(p -/+
    alpha)`` with common ``sigma = sqrt(z p (1-p))``.  Equal variances
    put the threshold halfway: ``x0 = z p``.
    """
    p = 0.5
    alpha = 1.0 / math.sqrt(k)
    mu1 = z * (p - alpha)
    mu2 = z * (p + alpha)
    sigma = math.sqrt(z * p * (1 - p))
    x0 = z * p
    l1 = x0 - mu1
    l2 = mu2 - x0
    error = 0.5 * (_phi(-l1 / sigma) + _phi(-l2 / sigma))
    return TwoNormals(
        mu1=mu1, mu2=mu2, sigma1=sigma, sigma2=sigma, x0=x0, error=error
    )


def hypergeometric_error(k: int, z: int) -> float:
    """Exact error of the optimal (likelihood-ratio) test on z probes."""
    sqrt_k = int(math.floor(math.sqrt(k)))
    s1 = k // 2 - sqrt_k
    s2 = k // 2 + sqrt_k

    def pmf(s: int, x: int) -> float:
        if x < 0 or x > z or x > s or z - x > k - s:
            return 0.0
        return math.comb(s, x) * math.comb(k - s, z - x) / math.comb(k, z)

    # The optimal test picks, for each outcome x, the likelier hypothesis.
    error = 0.0
    for x in range(z + 1):
        error += 0.5 * min(pmf(s1, x), pmf(s2, x))
    return error


def figure1_curve(k: int, z_values) -> list:
    """(z, normal error, exact error) triples across probe counts z.

    The paper's claim: for z = o(k) both errors stay near 1/2 (failure
    probability >= 0.49); driving the error below 0.3 needs z = Omega(k).
    """
    rows = []
    for z in z_values:
        approx = normal_error(k, z).error
        exact = hypergeometric_error(k, z)
        rows.append((z, approx, exact))
    return rows
