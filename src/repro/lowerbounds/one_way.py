"""One-way communication experiments (Theorems 2.2 and 2.3).

Theorem 2.2: with only site-to-coordinator messages, *any* randomized
count tracker needs ``Omega(k/eps log N)`` messages — randomization does
not help without the downlink.  The proof observes that a one-way site's
behaviour is a fixed (possibly random) sequence of local-count
thresholds, and the hard distribution mu forces ~k/2 sites to fire a
threshold every ``(1+eps)`` growth of n.

``OneWayThresholdScheme`` is exactly such a protocol family: each site
independently reports when its local count crosses its next threshold
(geometric thresholds, optionally with randomized jitter).  Running it on
draws from mu measures the Theorem 2.2 cost; running the paper's two-way
tracker on the same draws exhibits the sqrt(k) separation that one-way
protocols cannot achieve.
"""

from __future__ import annotations

import math

from ..runtime import Coordinator, Message, Network, Simulation, Site, TrackingScheme
from ..runtime.rng import derive_rng
from ..workloads.adversarial import theorem22_distribution

__all__ = ["OneWayThresholdScheme", "measure_on_mu"]

MSG_VALUE = "value"


class _ThresholdSite(Site):
    """Fires when the local count crosses the next (1+eps)^i threshold.

    With ``jitter=True`` each threshold is multiplied by an independent
    uniform factor in [1, 1+eps) — a representative *randomized* one-way
    strategy; Theorem 2.2 shows no such strategy can do better than the
    deterministic spacing.
    """

    def __init__(self, site_id, network, eps, seed, jitter):
        super().__init__(site_id, network)
        self.eps = eps
        self.rng = derive_rng(seed, "one-way-site", site_id)
        self.jitter = jitter
        self.n = 0
        self.next_threshold = self._draw(1.0)

    def _draw(self, base: float) -> float:
        factor = 1 + self.rng.random() * self.eps if self.jitter else 1.0
        return base * factor

    def on_element(self, item) -> None:
        self.n += 1
        if self.n >= self.next_threshold:
            self.send(MSG_VALUE, self.n)
            self.next_threshold = self._draw(self.n * (1 + self.eps))

    def space_words(self) -> int:
        return 2


class _ThresholdCoordinator(Coordinator):
    def __init__(self, network):
        super().__init__(network)
        self.last = {}
        self._total = 0

    def on_message(self, site_id: int, message: Message) -> None:
        if message.kind == MSG_VALUE:
            self._total += message.payload - self.last.get(site_id, 0)
            self.last[site_id] = message.payload

    def estimate(self) -> float:
        return float(self._total)

    def space_words(self) -> int:
        return len(self.last) + 1


class OneWayThresholdScheme(TrackingScheme):
    """One-way count tracking with (optionally randomized) thresholds."""

    name = "count/one-way-threshold"
    one_way_capable = True

    def __init__(self, epsilon: float, jitter: bool = False):
        if not 0.0 < epsilon < 1.0:
            raise ValueError("epsilon must be in (0, 1)")
        self.epsilon = epsilon
        self.jitter = jitter
        if jitter:
            self.name = "count/one-way-jittered"

    def make_coordinator(self, network, k, seed):
        return _ThresholdCoordinator(network)

    def make_site(self, network, site_id, k, seed):
        return _ThresholdSite(site_id, network, self.epsilon, seed, self.jitter)


def measure_on_mu(scheme, k: int, n: int, draws: int, seed: int = 0,
                  one_way: bool = False) -> dict:
    """Average cost of ``scheme`` over draws from the mu distribution.

    Returns mean messages/words per draw plus the worst relative error
    observed at the end of each draw (sanity: the protocol must actually
    track).
    """
    total_messages = 0
    total_words = 0
    worst_error = 0.0
    for d in range(draws):
        sim = Simulation(scheme, k, seed=seed + 7919 * d, one_way=one_way)
        sim.run(theorem22_distribution(n, k, seed=seed + 104729 * d))
        total_messages += sim.comm.total_messages
        total_words += sim.comm.total_words
        estimate = sim.coordinator.estimate()
        worst_error = max(worst_error, abs(estimate - n) / n)
    return {
        "mean_messages": total_messages / draws,
        "mean_words": total_words / draws,
        "worst_final_error": worst_error,
    }
