"""Command-line runner: simulate any scheme on any workload.

Examples::

    python -m repro count --scheme randomized -k 64 -n 100000 --eps 0.01
    python -m repro frequency --scheme deterministic --workload zipf
    python -m repro rank --scheme sampling --workload sorted -n 50000
    python -m repro count --compare          # all count schemes, one table
    python -m repro serve -k 32 -n 500000    # multi-tenant service demo
    python -m repro gateway --listen :8791   # HTTP/JSON query gateway
    python -m repro site --listen :9200      # a TCP site-actor host
    python -m repro query http://host:8791 total   # query a gateway
"""

from __future__ import annotations

import argparse
import itertools
import json
import os
import sys
import time

from . import Simulation, TrackingService
from .analysis import render_table
from .service import ServiceError
from .service.jobspec import SCHEMES, parse_job_spec
from .workloads import (
    bursty_sites,
    multi_tenant,
    random_permutation_values,
    round_robin,
    single_site,
    skewed_sites,
    sorted_values,
    timestamped,
    uniform_sites,
    with_items,
    zipf_items,
)

ARRIVALS = {
    "uniform": lambda n, k, seed: uniform_sites(n, k, seed=seed),
    "round-robin": lambda n, k, seed: round_robin(n, k),
    "single-site": lambda n, k, seed: single_site(n, k, site_id=0),
    "skewed": lambda n, k, seed: skewed_sites(n, k, alpha=1.2, seed=seed),
    "bursty": lambda n, k, seed: bursty_sites(n, k, burst=200, seed=seed),
}

#: day/night cycle length (in stream time units) of the timestamped
#: stream driven under window jobs; a constant so --resume continues
#: the same clock regardless of -n
WINDOW_PERIOD = 20_000.0

#: demo job set for ``repro serve`` when no --job flags are given
DEFAULT_SERVE_JOBS = (
    "events=count/randomized:0.01",
    "events-lb=count/deterministic:0.02",
    "hot-items=frequency/randomized:0.05",
    "hot-items-lb=frequency/deterministic:0.05",
    "median=rank/randomized:0.05",
)

SERVICE_EPILOG = """\
service:
  `repro serve` runs the multi-tenant tracking service: one shared fleet
  of -k sites, many named jobs ingesting the same multi-tenant stream
  through the batched engine.  Each job is NAME=PROBLEM/SCHEME[:EPS],
  e.g.

    repro serve -k 32 -n 500000 --job total=count/randomized:0.01 \\
        --job p50=rank/randomized:0.05 --job hh=frequency/randomized:0.05

  Sliding-window jobs use PROBLEM `window:W` (W in time units, scheme
  `count`), e.g. --job lastmin=window:60000/count:0.05; with a window
  job registered the stream's items become non-decreasing timestamps.

  Without --job flags a demo job set covering all three problems is
  registered.  --tenants/--burst shape the multi-tenant workload,
  --batch sets the ingestion batch size.  The final table reports each
  job's own communication/space ledgers plus the fleet-wide aggregate.

durability:
  --checkpoint-dir arms the write-ahead log and snapshots; --checkpoint-every
  N checkpoints mid-stream every N events.  After a crash (or to continue
  a finished run), `repro serve --checkpoint-dir DIR --resume` restores
  the newest snapshot, replays the WAL tail and ingests only the
  remainder of the stream.  `repro restore --checkpoint-dir DIR` recovers
  and prints the service state without ingesting anything.

distributed:
  `repro gateway --listen HOST:PORT` serves the tracking service over
  HTTP/JSON (register/ingest/query/status endpoints with a bounded,
  coalescing ingest queue); `--shards N` partitions the fleet across N
  shard-local ingest hubs (worker processes by default) with queries
  merged across shards, `--shard-workers cluster --hub HOST:PORT`
  places each hub on a `repro hub` TCP actor (remote shard hubs behind
  one gateway), `--relaxed` pipelines ingest dispatch across hubs, and
  `--ingest-rate`/`--space-budget`/`--api-keys-file` enforce quotas and
  per-tenant auth as HTTP 429/413/401+403, and `--alert-rules FILE`
  routes threshold/metric alert transitions (with cross-process trace
  exemplars) to webhook/exec/logfile sinks.  `repro site --listen
  HOST:PORT` runs a TCP site-actor host for distributed scheme runs
  (repro.net.Cluster); `repro hub --listen HOST:PORT` hosts shard hubs;
  `repro query URL JOB [METHOD] [ARG...]` queries a running gateway and
  pretty-prints the JSON answer; `repro metrics URL [--watch N]`
  scrapes its metrics; `repro fleet URL [--watch N]` shows the hub
  fleet's liveness + capacity from GET /v1/fleet.  Each subcommand has
  its own --help.
"""


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Distributed tracking simulator (PODS 2012 reproduction)",
        epilog=SERVICE_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "problem",
        choices=sorted(SCHEMES) + ["serve", "restore"],
        help=(
            "which function to track, `serve` for the multi-tenant "
            "service, or `restore` to recover one from --checkpoint-dir"
        ),
    )
    parser.add_argument(
        "--scheme",
        default="randomized",
        help="scheme name (see --list-schemes), default: randomized",
    )
    parser.add_argument(
        "--compare",
        action="store_true",
        help="run every scheme for the problem and print one table",
    )
    parser.add_argument("-n", type=int, default=100_000, help="stream length")
    parser.add_argument("-k", type=int, default=25, help="number of sites")
    parser.add_argument("--eps", type=float, default=0.02, help="error target")
    parser.add_argument(
        "--workload",
        default="uniform",
        choices=sorted(ARRIVALS) + ["zipf", "sorted", "permutation"],
        help="arrival pattern (count) or item law (frequency/rank)",
    )
    parser.add_argument("--seed", type=int, default=0, help="root seed")
    parser.add_argument(
        "--list-schemes", action="store_true", help="list schemes and exit"
    )
    serve = parser.add_argument_group("serve options")
    serve.add_argument(
        "--job",
        action="append",
        metavar="NAME=PROBLEM/SCHEME[:EPS]",
        help="register a named job (repeatable); default: a demo job set",
    )
    serve.add_argument(
        "--batch", type=int, default=8192, help="ingestion batch size"
    )
    serve.add_argument(
        "--tenants", type=int, default=4, help="multi-tenant sub-streams"
    )
    serve.add_argument(
        "--burst", type=int, default=64, help="per-source micro-batch length"
    )
    durability = parser.add_argument_group("durability options")
    durability.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        help="write-ahead log + snapshots under DIR (serve), or the "
        "directory to recover (restore)",
    )
    durability.add_argument(
        "--checkpoint-every",
        type=int,
        metavar="N",
        help="snapshot every N ingested events (serve; default: end only)",
    )
    durability.add_argument(
        "--resume",
        action="store_true",
        help="recover --checkpoint-dir and ingest only the stream remainder",
    )
    return parser


def _problem_of(job) -> str:
    """Problem family from a scheme's table name (``count/...`` etc.)."""
    return job.scheme.name.split("/", 1)[0]


def _service_rows(service, problems):
    """Per-job result rows plus the fleet-total row for the status table."""
    status = service.status()
    rows = []
    for name, job in status["jobs"].items():
        problem = problems.get(name) or _problem_of(service.job(name))
        if problem == "frequency":
            top = service.query(name, "top_items", 1)
            result = f"top: {top[0][0]}" if top else "-"
        elif problem == "rank":
            # An empty rank summary has no candidate values to search.
            if job["elements"] > 0:
                result = f"p50: {service.query(name, 'quantile', 0.5)}"
            else:
                result = "-"
        else:
            estimate = job["accuracy"]["estimate"]
            prefix = "win: " if problem == "window" else ""
            result = "-" if estimate is None else f"{prefix}{estimate:.0f}"
        rows.append(
            [
                name,
                job["scheme"],
                job["comm"]["total_messages"],
                job["comm"]["total_words"],
                job["space"]["used"]["max_site_words"],
                result,
            ]
        )
    agg = status["comm"]
    rows.append(
        [
            "(fleet total)",
            f"{len(status['jobs'])} jobs",
            agg["total_messages"],
            agg["total_words"],
            "",
            "",
        ]
    )
    return rows, status


def run_serve(args) -> int:
    """The `repro serve` subcommand: a multi-tenant service demo."""
    # multi_tenant raises lazily (generator), so validate its knobs here
    # to fail with a clean message like every other bad flag.
    for flag, value in (("--batch", args.batch), ("--tenants", args.tenants),
                        ("--burst", args.burst)):
        if value < 1:
            print(f"error: {flag} must be positive", file=sys.stderr)
            return 2
    if args.checkpoint_every is not None:
        if args.checkpoint_every < 1:
            print("error: --checkpoint-every must be positive", file=sys.stderr)
            return 2
        if not args.checkpoint_dir:
            print(
                "error: --checkpoint-every requires --checkpoint-dir",
                file=sys.stderr,
            )
            return 2
    if args.resume and not args.checkpoint_dir:
        print("error: --resume requires --checkpoint-dir", file=sys.stderr)
        return 2
    problems = {}
    try:
        if args.resume:
            service = TrackingService.restore(args.checkpoint_dir)
            # Restored jobs come back with their schemes; --job flags may
            # add new jobs but never clobber recovered ones.
            for spec in args.job or []:
                name, problem, scheme = parse_job_spec(spec, args.eps)
                if name not in service:
                    service.register(name, scheme)
                    problems[name] = problem
                # An existing job keeps its restored scheme; its problem
                # family is re-derived from that scheme, not the spec.
        else:
            service = TrackingService(
                num_sites=args.k,
                seed=args.seed,
                checkpoint_dir=args.checkpoint_dir,
            )
            for spec in args.job or list(DEFAULT_SERVE_JOBS):
                name, problem, scheme = parse_job_spec(spec, args.eps)
                service.register(name, scheme)
                problems[name] = problem
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except (ValueError, ServiceError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    # The stream is regenerated from the SERVICE's seed and fleet size —
    # on --resume those come from the snapshot, so forgetting --seed or
    # -k cannot silently continue a different stream (workload-shape
    # flags --tenants/--burst must still match the original run).
    stream = multi_tenant(
        args.n,
        service.num_sites,
        tenants=args.tenants,
        burst=args.burst,
        seed=service.seed,
        labeled=False,
    )
    has_window = any(
        _problem_of(job) == "window" for job in service.jobs.values()
    )
    if has_window:
        # Window trackers read items as their clock: swap the payloads
        # for non-decreasing timestamps with day/night rate cycles.  The
        # period is a constant (not derived from -n) so a --resume run
        # with a longer stream continues the exact same clock.
        stream = timestamped(stream, seed=service.seed, period=WINDOW_PERIOD)
    skip = service.elements_processed if args.resume else 0
    if skip:
        stream = itertools.islice(stream, skip, None)
    start = time.perf_counter()
    total = service.ingest_stream(
        stream,
        batch_size=args.batch,
        checkpoint_every=args.checkpoint_every,
    )
    elapsed = time.perf_counter() - start
    if service.checkpoint_dir is not None:
        service.checkpoint()
        service.close()
    rows, status = _service_rows(service, problems)
    durability = (
        f", checkpoints={service.checkpoint_dir}"
        if service.checkpoint_dir is not None
        else ""
    )
    print(
        render_table(
            ["job", "scheme", "messages", "words", "site space", "result"],
            rows,
            title=(
                f"service: k={service.num_sites}, "
                f"n={service.elements_processed:,}, tenants={args.tenants}, "
                f"burst={args.burst}, batch={args.batch}{durability}"
            ),
        )
    )
    rate = total / elapsed if elapsed > 0 else float("inf")
    resumed = f" (resumed past {skip:,})" if skip else ""
    print(
        f"ingested {total:,} events x {len(status['jobs'])} jobs "
        f"in {elapsed:.2f}s ({rate:,.0f} events/s/job){resumed}"
    )
    return 0


def run_restore(args) -> int:
    """The `repro restore` subcommand: recover and report, no ingestion."""
    if not args.checkpoint_dir:
        print("error: restore requires --checkpoint-dir", file=sys.stderr)
        return 2
    try:
        service = TrackingService.restore(args.checkpoint_dir)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    rows, status = _service_rows(service, {})
    print(
        render_table(
            ["job", "scheme", "messages", "words", "site space", "result"],
            rows,
            title=(
                f"restored service: k={service.num_sites}, "
                f"n={service.elements_processed:,}, "
                f"jobs={len(status['jobs'])}, from {args.checkpoint_dir}"
            ),
        )
    )
    service.close()
    return 0


def make_stream(problem: str, workload: str, n: int, k: int, seed: int):
    """Build the (site, item) stream for the chosen problem/workload."""
    if problem == "count":
        arrivals = ARRIVALS.get(workload, ARRIVALS["uniform"])
        return list(arrivals(n, k, seed))
    if problem == "frequency":
        source = zipf_items(max(10, n // 100), alpha=1.2, seed=seed + 1)
        if workload == "uniform":
            source = zipf_items(max(10, n // 100), alpha=1.2, seed=seed + 1)
        return list(with_items(uniform_sites(n, k, seed=seed), source))
    # rank
    if workload == "sorted":
        values = sorted_values(n)
    else:
        values = random_permutation_values(n, seed=seed + 2)
    sites = [s for s, _ in uniform_sites(n, k, seed=seed)]
    return list(zip(sites, values))


def describe(problem: str, sim: Simulation, n: int) -> list:
    """One summary row for a finished simulation."""
    coordinator = sim.coordinator
    if problem == "count":
        estimate = coordinator.estimate()
        accuracy = f"{abs(estimate - n) / n:.4f}"
    elif problem == "frequency":
        accuracy = f"top item: {coordinator.top_items(1)}"
    else:
        estimate = coordinator.estimate_rank(n // 2)
        accuracy = f"rank(median)={estimate:.0f}"
    return [
        sim.scheme.name,
        sim.comm.total_messages,
        sim.comm.total_words,
        sim.space.max_site_words,
        accuracy,
    ]


def run_gateway(argv) -> int:
    """The `repro gateway` subcommand: HTTP/JSON service frontend."""
    import asyncio

    from .net.gateway import Gateway
    from .net.transport import parse_address

    parser = argparse.ArgumentParser(
        prog="repro gateway",
        description="Serve a multi-tenant tracking service over HTTP/JSON.",
    )
    parser.add_argument(
        "--listen", default="127.0.0.1:8791", metavar="HOST:PORT",
        help="bind address (default 127.0.0.1:8791; port 0 = ephemeral)",
    )
    parser.add_argument("-k", type=int, default=16, help="number of sites")
    parser.add_argument("--seed", type=int, default=0, help="service root seed")
    parser.add_argument("--eps", type=float, default=0.02, help="default error target")
    parser.add_argument(
        "--job", action="append", metavar="NAME=PROBLEM/SCHEME[:EPS]",
        help="register a job at startup (repeatable); default: a demo set",
    )
    parser.add_argument(
        "--no-default-jobs", action="store_true",
        help="start with an empty registry (register via POST /v1/jobs)",
    )
    parser.add_argument(
        "--shards", type=int, default=1, metavar="N",
        help="partition the fleet across N shard-local ingest hubs; "
        "queries fan out and merge (default 1 = unsharded)",
    )
    parser.add_argument(
        "--shard-workers", default="process",
        choices=["inline", "thread", "process", "cluster"],
        help="how shard hubs execute when --shards > 1 (default: one "
        "worker process per shard, so ingest scales with cores; "
        "'cluster' places each hub on a `repro hub` TCP actor)",
    )
    parser.add_argument(
        "--hub", action="append", metavar="HOST:PORT", dest="hubs",
        help="address of a running `repro hub` host for "
        "--shard-workers cluster (repeatable; hubs are assigned "
        "round-robin; default: self-host one on an ephemeral port)",
    )
    parser.add_argument(
        "--relaxed", action="store_true",
        help="pipelined ingest: post every shard's sub-batch without "
        "waiting for acks (reads/checkpoints fence); per-shard "
        "transcripts — and therefore answers — are unchanged",
    )
    parser.add_argument(
        "--window", type=int, metavar="RUNS",
        help="with --relaxed: bound in-flight dispatch at RUNS runs "
        "total, collecting the oldest ack when posting would exceed "
        "it (flat memory on unbounded streams; default: unbounded)",
    )
    parser.add_argument(
        "--site-depth", type=int, metavar="FRAMES",
        help="with --relaxed: bound each shard hub's pipe at FRAMES "
        "outstanding sub-batch commands (default: unbounded)",
    )
    parser.add_argument(
        "--api-keys-file", metavar="FILE",
        help="enable per-tenant auth: a JSON object mapping API key -> "
        "tenant label; requests then need `Authorization: Bearer KEY` "
        "and ingest rate buckets are scoped per key",
    )
    parser.add_argument(
        "--alert-rules", metavar="FILE",
        help="enable alert routing: a JSON manifest of delivery sinks "
        "(webhook/exec/logfile) and rules (threshold/metrics/"
        "error_bound/fleet predicates with for/rearm durations); "
        "transitions land on the sinks and GET /v1/alerts",
    )
    parser.add_argument(
        "--fleet-interval", type=float, default=2.0, metavar="SECONDS",
        help="seconds between fleet heartbeat polls to every shard hub "
        "(GET /v1/fleet, repro_fleet_* metrics, fleet alert rules; "
        "default 2)",
    )
    parser.add_argument(
        "--queue-events", type=int, default=1 << 16,
        help="ingest queue bound, in events (backpressure threshold)",
    )
    parser.add_argument(
        "--coalesce-events", type=int, default=8192,
        help="max events merged into one engine call",
    )
    parser.add_argument(
        "--ingest-rate", type=float, metavar="EVENTS_PER_S",
        help="quota: reject ingest above this rate with HTTP 429 "
        "(default: unlimited)",
    )
    parser.add_argument(
        "--ingest-burst", type=int, metavar="EVENTS",
        help="token-bucket burst for --ingest-rate "
        "(default: one queue capacity)",
    )
    parser.add_argument(
        "--space-budget", type=int, metavar="WORDS",
        help="default per-job site-space budget; jobs over budget turn "
        "further ingests into HTTP 413",
    )
    parser.add_argument(
        "--checkpoint-dir", metavar="DIR",
        help="arm durability (WAL + snapshots) under DIR",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="restore --checkpoint-dir instead of starting fresh",
    )
    args = parser.parse_args(argv)
    for flag, value in (
        ("--queue-events", args.queue_events),
        ("--coalesce-events", args.coalesce_events),
        ("--shards", args.shards),
    ):
        if value < 1:
            print(f"error: {flag} must be positive", file=sys.stderr)
            return 2
    if args.ingest_rate is not None and args.ingest_rate <= 0:
        print("error: --ingest-rate must be positive", file=sys.stderr)
        return 2
    if args.fleet_interval <= 0:
        print("error: --fleet-interval must be positive", file=sys.stderr)
        return 2
    if args.resume and not args.checkpoint_dir:
        print("error: --resume requires --checkpoint-dir", file=sys.stderr)
        return 2
    if args.hubs and args.shard_workers != "cluster":
        print(
            "error: --hub requires --shard-workers cluster", file=sys.stderr
        )
        return 2
    if (args.window is not None or args.site_depth is not None) \
            and not args.relaxed:
        print(
            "error: --window/--site-depth require --relaxed",
            file=sys.stderr,
        )
        return 2
    for flag, value in (
        ("--window", args.window), ("--site-depth", args.site_depth)
    ):
        if value is not None and value < 1:
            print(f"error: {flag} must be positive", file=sys.stderr)
            return 2
    api_keys = None
    if args.api_keys_file:
        try:
            with open(args.api_keys_file) as f:
                api_keys = json.load(f)
        except (OSError, ValueError) as exc:
            print(
                f"error: cannot load --api-keys-file: {exc}", file=sys.stderr
            )
            return 2
        if not isinstance(api_keys, dict) or not api_keys:
            print(
                "error: --api-keys-file must hold a non-empty JSON object "
                "mapping key -> tenant",
                file=sys.stderr,
            )
            return 2
    alert_rules = None
    if args.alert_rules:
        try:
            with open(args.alert_rules) as f:
                alert_rules = json.load(f)
        except (OSError, ValueError) as exc:
            print(
                f"error: cannot load --alert-rules: {exc}", file=sys.stderr
            )
            return 2
        try:
            # Validate eagerly (rule/sink schema errors should fail the
            # launch, not the first evaluation round); the gateway
            # builds its own manager from the same manifest.
            from .obs import AlertManager

            AlertManager.from_manifest(alert_rules).close()
        except ValueError as exc:
            print(f"error: --alert-rules: {exc}", file=sys.stderr)
            return 2
    from .shard import ShardedTrackingService

    # --relaxed and cluster workers run on the sharded facade even for a
    # single shard (the identity partition is transcript-identical).
    sharded = (
        args.shards > 1 or args.shard_workers == "cluster" or args.relaxed
    )
    try:
        host, port = parse_address(args.listen)
        if args.resume:
            import os as _os

            if _os.path.exists(
                _os.path.join(args.checkpoint_dir, "shards.json")
            ):
                service = ShardedTrackingService.restore(
                    args.checkpoint_dir,
                    executor=args.shard_workers,
                    hub_addresses=args.hubs,
                    relaxed=args.relaxed,
                    window=args.window,
                    per_site_depth=args.site_depth,
                )
            else:
                # The checkpoint fixes the topology: an unsharded bundle
                # cannot honor hub placement or relaxed dispatch, and
                # silently dropping those flags would leave the operator
                # believing shards run remotely.
                if args.relaxed or args.hubs or args.shard_workers == "cluster":
                    print(
                        "error: --checkpoint-dir holds an unsharded "
                        "checkpoint (no shards.json); --relaxed/--hub/"
                        "--shard-workers cluster cannot apply on --resume",
                        file=sys.stderr,
                    )
                    return 2
                service = TrackingService.restore(args.checkpoint_dir)
            specs = args.job or []
        else:
            if sharded:
                service = ShardedTrackingService(
                    num_sites=args.k,
                    num_shards=args.shards,
                    seed=args.seed,
                    space_budget_words=args.space_budget,
                    checkpoint_dir=args.checkpoint_dir,
                    executor=args.shard_workers,
                    hub_addresses=args.hubs,
                    relaxed=args.relaxed,
                    window=args.window,
                    per_site_depth=args.site_depth,
                )
            else:
                service = TrackingService(
                    num_sites=args.k,
                    seed=args.seed,
                    space_budget_words=args.space_budget,
                    checkpoint_dir=args.checkpoint_dir,
                )
            specs = args.job
            if specs is None and not args.no_default_jobs:
                specs = list(DEFAULT_SERVE_JOBS)
        for spec in specs or []:
            name, _, scheme = parse_job_spec(spec, args.eps)
            if name not in service:
                service.register(name, scheme)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except (ValueError, ServiceError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    served = False

    async def serve() -> None:
        nonlocal served
        gateway = Gateway(
            service,
            host=host,
            port=port,
            capacity_events=args.queue_events,
            max_batch_events=args.coalesce_events,
            default_eps=args.eps,
            max_ingest_rate=args.ingest_rate,
            ingest_burst=args.ingest_burst,
            api_keys=api_keys,
            alert_rules=alert_rules,
            fleet_interval=args.fleet_interval,
        )
        await gateway.start()
        served = True
        shard_note = ""
        if hasattr(service, "num_shards"):
            mode = service.executor
            dispatch = getattr(service, "dispatch_mode", "lockstep")
            if dispatch != "lockstep":
                mode += f", {dispatch}"
                if dispatch == "windowed":
                    bounds = []
                    if service.window is not None:
                        bounds.append(f"window={service.window}")
                    if service.per_site_depth is not None:
                        bounds.append(f"depth={service.per_site_depth}")
                    mode += f" ({', '.join(bounds)})"
            shard_note = f", shards={service.num_shards} ({mode})"
        print(
            f"gateway listening on {gateway.url} "
            f"(k={service.num_sites}{shard_note}, "
            f"jobs={sorted(service.jobs)})",
            flush=True,
        )
        try:
            await _until_stopped()
        finally:
            await gateway.close()

    try:
        asyncio.run(serve())
    except KeyboardInterrupt:
        pass
    except OSError as exc:  # e.g. the port is already taken
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        # One shutdown path for every exit: checkpoint only a service
        # that actually served (its workers are alive), close always.
        if served:
            print("gateway: shutting down", flush=True)
            if service.checkpoint_dir is not None:
                service.checkpoint()
        service.close()
    return 0


async def _until_stopped() -> None:
    """Sleep until SIGTERM/SIGINT (works for shell background jobs too,
    where an inherited SIG_IGN would otherwise swallow SIGINT)."""
    import asyncio
    import signal

    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, stop.set)
        except (NotImplementedError, OSError, RuntimeError):
            pass  # non-Unix loops: Ctrl-C still lands as KeyboardInterrupt
    await stop.wait()


def run_site(argv) -> int:
    """The `repro site` subcommand: a TCP site-actor host."""
    import asyncio

    from .net.actors import SiteHost
    from .net.transport import TcpTransport

    parser = argparse.ArgumentParser(
        prog="repro site",
        description=(
            "Host site actors over TCP; a coordinator hub "
            "(repro.net.Cluster) connects and spawns its sites here."
        ),
    )
    parser.add_argument(
        "--listen", default="127.0.0.1:0", metavar="HOST:PORT",
        help="bind address (default 127.0.0.1:0 = ephemeral port)",
    )
    args = parser.parse_args(argv)

    async def serve() -> None:
        host = await SiteHost(TcpTransport(), args.listen).start()
        print(f"site host listening on {host.address}", flush=True)
        try:
            await _until_stopped()
        finally:
            await host.close()

    try:
        asyncio.run(serve())
    except KeyboardInterrupt:
        pass
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print("site host: shutting down", flush=True)
    return 0


def run_hub(argv) -> int:
    """The `repro hub` subcommand: a TCP shard-hub host (exec host)."""
    import asyncio

    from .exec.remote import ExecHost
    from .net.transport import TcpTransport

    parser = argparse.ArgumentParser(
        prog="repro hub",
        description=(
            "Host shard-hub workers over TCP; a sharded gateway "
            "(repro gateway --shard-workers cluster --hub HOST:PORT) "
            "places its shard hubs here."
        ),
    )
    parser.add_argument(
        "--listen", default="127.0.0.1:0", metavar="HOST:PORT",
        help="bind address (default 127.0.0.1:0 = ephemeral port)",
    )
    args = parser.parse_args(argv)

    async def serve() -> None:
        import platform

        from . import __version__

        host = await ExecHost(TcpTransport(), args.listen).start()
        print(
            f"hub host listening on {host.address} "
            f"(repro {__version__}, python {platform.python_version()}, "
            f"dispatch modes: lockstep/relaxed/windowed)",
            flush=True,
        )
        try:
            await _until_stopped()
        finally:
            await host.close()

    try:
        asyncio.run(serve())
    except KeyboardInterrupt:
        pass
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print("hub host: shutting down", flush=True)
    return 0


def run_query(argv) -> int:
    """The `repro query` subcommand: hit a gateway, pretty-print JSON."""
    import urllib.error
    import urllib.request

    parser = argparse.ArgumentParser(
        prog="repro query",
        description="Query a job on a running gateway.",
        epilog=(
            "examples: repro query http://127.0.0.1:8791 total | "
            "repro query http://127.0.0.1:8791 median quantile 0.5"
        ),
    )
    parser.add_argument("url", help="gateway base URL, e.g. http://127.0.0.1:8791")
    parser.add_argument("job", help="registered job name")
    parser.add_argument(
        "kind", nargs="?", default=None,
        help="query method (default: the job's default query)",
    )
    parser.add_argument(
        "args", nargs="*",
        help="query arguments (JSON literals; bare words pass as strings)",
    )
    parser.add_argument(
        "--timeout", type=float, default=60.0, metavar="SECONDS",
        help="give up waiting for the gateway after this long (default 60)",
    )
    parser.add_argument(
        "--api-key", metavar="KEY",
        help="API key for gateways started with --api-keys-file "
        "(sent as `Authorization: Bearer KEY`)",
    )
    args = parser.parse_args(argv)
    if args.timeout <= 0:
        print("error: --timeout must be positive", file=sys.stderr)
        return 2

    from .service.jobspec import parse_query_literal

    body = json.dumps(
        {
            "job": args.job,
            "method": args.kind,
            "args": [parse_query_literal(a) for a in args.args],
        }
    ).encode()
    headers = {"Content-Type": "application/json"}
    if args.api_key:
        headers["Authorization"] = f"Bearer {args.api_key}"
    request = urllib.request.Request(
        args.url.rstrip("/") + "/v1/query",
        data=body,
        headers=headers,
    )
    try:
        with urllib.request.urlopen(request, timeout=args.timeout) as response:
            payload = json.load(response)
    except urllib.error.HTTPError as exc:
        try:
            detail = json.load(exc).get("error", "")
        except ValueError:
            detail = ""
        print(f"error: HTTP {exc.code} {exc.reason}: {detail}", file=sys.stderr)
        return 1
    except urllib.error.URLError as exc:
        reason = getattr(exc, "reason", exc)
        if isinstance(reason, ConnectionRefusedError):
            print(
                f"error: connection refused at {args.url} — is the "
                "gateway running? (start one with `repro gateway`)",
                file=sys.stderr,
            )
        elif isinstance(reason, TimeoutError):
            print(
                f"error: gateway at {args.url} did not answer within "
                f"{args.timeout:g}s (raise --timeout?)",
                file=sys.stderr,
            )
        else:
            print(f"error: cannot reach {args.url}: {reason}", file=sys.stderr)
        return 1
    except TimeoutError:
        print(
            f"error: gateway at {args.url} did not answer within "
            f"{args.timeout:g}s (raise --timeout?)",
            file=sys.stderr,
        )
        return 1
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


class _ScrapeError(RuntimeError):
    """A gateway scrape failed; the message is operator-clean."""


def _scrape_text(url: str, headers: dict, timeout: float) -> str:
    """GET a gateway URL, normalizing every failure mode into
    :class:`_ScrapeError` with a one-line human message (no traceback
    ever reaches a watch loop)."""
    import http.client
    import urllib.error
    import urllib.request

    request = urllib.request.Request(url, headers=headers)
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.read().decode()
    except urllib.error.HTTPError as exc:
        raise _ScrapeError(f"HTTP {exc.code} {exc.reason}") from None
    except (
        urllib.error.URLError,
        http.client.HTTPException,
        TimeoutError,
        OSError,
    ) as exc:
        reason = getattr(exc, "reason", None) or exc
        raise _ScrapeError(f"cannot reach {url}: {reason}") from None


def _watch_loop(header: str, once, interval: float) -> int:
    """Re-render ``once()`` every ``interval`` seconds, forever.

    A dropped gateway connection prints one clean ``connection lost``
    line and keeps retrying with exponential backoff (reset on the
    next successful scrape) — never a traceback, never an exit.
    """
    backoff = interval
    while True:
        print(
            f"\x1b[2J\x1b[H-- {header} (every {interval:g}s, "
            "Ctrl-C to stop)"
        )
        try:
            once()
        except _ScrapeError as exc:
            print(f"connection lost: {exc} -- retrying in {backoff:g}s")
            time.sleep(backoff)
            backoff = min(backoff * 2, max(interval, 30.0))
            continue
        backoff = interval
        time.sleep(interval)


def run_metrics(argv) -> int:
    """The `repro metrics` subcommand: scrape a gateway, pretty-print.

    Reads the Prometheus text exposition from ``GET /metrics`` (open —
    no API key needed) and renders a sorted name/value table, or dumps
    the registry JSON from ``GET /v1/metrics`` with ``--json``.
    ``--watch N`` re-scrapes every N seconds until interrupted; a
    dropped connection prints a one-line notice and retries with
    backoff.
    """
    parser = argparse.ArgumentParser(
        prog="repro metrics",
        description="Scrape and pretty-print a running gateway's metrics.",
        epilog=(
            "examples: repro metrics http://127.0.0.1:8791 | "
            "repro metrics http://127.0.0.1:8791 --watch 2 | "
            "repro metrics http://127.0.0.1:8791 --json"
        ),
    )
    parser.add_argument("url", help="gateway base URL, e.g. http://127.0.0.1:8791")
    parser.add_argument(
        "--json", action="store_true",
        help="dump the registry as JSON (GET /v1/metrics) instead of a table",
    )
    parser.add_argument(
        "--grep", metavar="SUBSTRING",
        help="only show metrics whose name contains SUBSTRING",
    )
    parser.add_argument(
        "--watch", type=float, default=None, metavar="SECONDS",
        help="re-scrape every SECONDS seconds until interrupted",
    )
    parser.add_argument(
        "--timeout", type=float, default=10.0, metavar="SECONDS",
        help="give up waiting for the gateway after this long (default 10)",
    )
    parser.add_argument(
        "--api-key", metavar="KEY",
        help="API key for /v1/metrics on authenticated gateways "
        "(/metrics itself is always open)",
    )
    args = parser.parse_args(argv)
    if args.timeout <= 0:
        print("error: --timeout must be positive", file=sys.stderr)
        return 2
    if args.watch is not None and args.watch <= 0:
        print("error: --watch must be positive", file=sys.stderr)
        return 2

    base = args.url.rstrip("/")
    path = "/v1/metrics" if args.json else "/metrics"
    headers = {}
    if args.api_key:
        headers["Authorization"] = f"Bearer {args.api_key}"

    def scrape() -> None:
        text = _scrape_text(base + path, headers, args.timeout)
        if args.json:
            payload = json.loads(text)
            if args.grep:
                payload = {
                    name: family
                    for name, family in payload.items()
                    if args.grep in name
                }
            print(json.dumps(payload, indent=2, sort_keys=True))
            return
        rows = []
        for line in text.splitlines():
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            name, _, value = line.rpartition(" ")
            if args.grep and args.grep not in name:
                continue
            rows.append((name, value))
        rows.sort()
        width = max((len(name) for name, _ in rows), default=0)
        for name, value in rows:
            print(f"{name:<{width}}  {value}")

    try:
        if args.watch is None:
            try:
                scrape()
            except _ScrapeError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 1
            return 0
        return _watch_loop(f"{base}{path}", scrape, args.watch)
    except KeyboardInterrupt:
        return 0
    except BrokenPipeError:
        # e.g. `repro metrics URL | head`: the reader hung up mid-table.
        # Swap stdout for devnull so the interpreter's exit-time flush
        # does not raise a second time.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


def run_fleet(argv) -> int:
    """The `repro fleet` subcommand: a gateway's hub-fleet at a glance.

    Renders ``GET /v1/fleet`` as a per-hub table (liveness state,
    heartbeat, last-seen age, RTT, space used vs. budget, overcommit
    ratio) followed by the newest fleet events.  ``--watch N`` re-polls
    every N seconds with the same reconnect/backoff behavior as
    ``repro metrics --watch``.
    """
    parser = argparse.ArgumentParser(
        prog="repro fleet",
        description="Show a gateway's shard-hub fleet: liveness + capacity.",
        epilog=(
            "examples: repro fleet http://127.0.0.1:8791 | "
            "repro fleet http://127.0.0.1:8791 --watch 2"
        ),
    )
    parser.add_argument("url", help="gateway base URL, e.g. http://127.0.0.1:8791")
    parser.add_argument(
        "--json", action="store_true",
        help="dump the raw /v1/fleet snapshot as JSON",
    )
    parser.add_argument(
        "--events", type=int, default=8, metavar="N",
        help="show the newest N fleet events under the table (default 8)",
    )
    parser.add_argument(
        "--watch", type=float, default=None, metavar="SECONDS",
        help="re-poll every SECONDS seconds until interrupted",
    )
    parser.add_argument(
        "--timeout", type=float, default=10.0, metavar="SECONDS",
        help="give up waiting for the gateway after this long (default 10)",
    )
    parser.add_argument(
        "--api-key", metavar="KEY",
        help="API key for authenticated gateways",
    )
    args = parser.parse_args(argv)
    if args.timeout <= 0:
        print("error: --timeout must be positive", file=sys.stderr)
        return 2
    if args.watch is not None and args.watch <= 0:
        print("error: --watch must be positive", file=sys.stderr)
        return 2
    if args.events < 0:
        print("error: --events must be >= 0", file=sys.stderr)
        return 2

    base = args.url.rstrip("/")
    headers = {}
    if args.api_key:
        headers["Authorization"] = f"Bearer {args.api_key}"

    def fmt(value, spec="", missing="-"):
        return format(value, spec) if value is not None else missing

    def show() -> None:
        snap = json.loads(
            _scrape_text(base + "/v1/fleet", headers, args.timeout)
        )
        if args.json:
            print(json.dumps(snap, indent=2, sort_keys=True))
            return
        rows = []
        for hub in snap["hubs"]:
            capacity = hub.get("capacity") or {}
            rtt = hub.get("rtt_ms") or {}
            budget = capacity.get("budget_words")
            rows.append([
                hub["hub"],
                hub["state"],
                str(hub["heartbeat"]),
                fmt(hub.get("last_seen_s"), ".1f") + "s",
                fmt(rtt.get("last"), ".1f") + "ms",
                f"{capacity.get('used_words', 0) or 0:,}"
                + (f" / {budget:,}" if budget is not None else ""),
                fmt(capacity.get("ratio"), ".1%"),
                fmt(hub.get("elements"), ","),
                fmt(hub.get("pending")),
            ])
        states = snap["states"]
        print(render_table(
            ["hub", "state", "beat", "seen", "rtt", "space", "used",
             "elements", "pending"],
            rows,
            title=(
                f"fleet @ {base}: "
                + ", ".join(
                    f"{n} {s}" for s, n in states.items() if n
                )
                + f" (poll every {snap['interval_s']:g}s)"
            ),
        ))
        if args.events:
            events = json.loads(_scrape_text(
                f"{base}/v1/fleet/events?limit={args.events}",
                headers, args.timeout,
            ))["events"]
            for event in events:
                stamp = time.strftime(
                    "%H:%M:%S", time.localtime(event["at"])
                )
                detail = f" ({event['detail']})" if event.get("detail") else ""
                print(
                    f"  {stamp} hub {event['hub']}: {event['event']} "
                    f"[{event['from']} -> {event['state']}]"
                    f"{detail} trace={event.get('trace_id')}"
                )

    try:
        if args.watch is None:
            try:
                show()
            except _ScrapeError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 1
            return 0
        return _watch_loop(f"{base}/v1/fleet", show, args.watch)
    except KeyboardInterrupt:
        return 0
    except BrokenPipeError:
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


_NET_SUBCOMMANDS = {
    "gateway": run_gateway,
    "site": run_site,
    "hub": run_hub,
    "query": run_query,
    "metrics": run_metrics,
    "fleet": run_fleet,
}


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] in _NET_SUBCOMMANDS:
        return _NET_SUBCOMMANDS[argv[0]](argv[1:])
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.problem == "serve":
        return run_serve(args)
    if args.problem == "restore":
        return run_restore(args)
    schemes = SCHEMES[args.problem]
    if args.list_schemes:
        for name in sorted(schemes):
            print(name)
        return 0
    if not args.compare and args.scheme not in schemes:
        parser.error(
            f"unknown scheme {args.scheme!r} for {args.problem} "
            f"(choose from {sorted(schemes)})"
        )

    stream = make_stream(args.problem, args.workload, args.n, args.k, args.seed)
    chosen = sorted(schemes) if args.compare else [args.scheme]
    rows = []
    for name in chosen:
        scheme = schemes[name](args.eps)
        sim = Simulation(scheme, args.k, seed=args.seed)
        sim.run(stream)
        rows.append(describe(args.problem, sim, args.n))
    print(
        render_table(
            ["scheme", "messages", "words", "site space", "result"],
            rows,
            title=(
                f"{args.problem}: n={args.n:,}, k={args.k}, eps={args.eps}, "
                f"workload={args.workload}"
            ),
        )
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
