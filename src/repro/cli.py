"""Command-line runner: simulate any scheme on any workload.

Examples::

    python -m repro count --scheme randomized -k 64 -n 100000 --eps 0.01
    python -m repro frequency --scheme deterministic --workload zipf
    python -m repro rank --scheme sampling --workload sorted -n 50000
    python -m repro count --compare          # all count schemes, one table
    python -m repro serve -k 32 -n 500000    # multi-tenant service demo
"""

from __future__ import annotations

import argparse
import sys
import time

from . import (
    Cormode05RankScheme,
    DeterministicCountScheme,
    DeterministicFrequencyScheme,
    DeterministicRankScheme,
    DistributedSamplingScheme,
    RandomizedCountScheme,
    RandomizedFrequencyScheme,
    RandomizedRankScheme,
    Simulation,
    TrackingService,
)
from .analysis import render_table
from .service import ServiceError
from .workloads import (
    bursty_sites,
    multi_tenant,
    random_permutation_values,
    round_robin,
    single_site,
    skewed_sites,
    sorted_values,
    uniform_sites,
    with_items,
    zipf_items,
)

SCHEMES = {
    "count": {
        "randomized": RandomizedCountScheme,
        "deterministic": DeterministicCountScheme,
        "sampling": DistributedSamplingScheme,
    },
    "frequency": {
        "randomized": RandomizedFrequencyScheme,
        "deterministic": DeterministicFrequencyScheme,
        "sampling": DistributedSamplingScheme,
    },
    "rank": {
        "randomized": RandomizedRankScheme,
        "deterministic": DeterministicRankScheme,
        "cormode05": Cormode05RankScheme,
        "sampling": DistributedSamplingScheme,
    },
}

ARRIVALS = {
    "uniform": lambda n, k, seed: uniform_sites(n, k, seed=seed),
    "round-robin": lambda n, k, seed: round_robin(n, k),
    "single-site": lambda n, k, seed: single_site(n, k, site_id=0),
    "skewed": lambda n, k, seed: skewed_sites(n, k, alpha=1.2, seed=seed),
    "bursty": lambda n, k, seed: bursty_sites(n, k, burst=200, seed=seed),
}

#: demo job set for ``repro serve`` when no --job flags are given
DEFAULT_SERVE_JOBS = (
    "events=count/randomized:0.01",
    "events-lb=count/deterministic:0.02",
    "hot-items=frequency/randomized:0.05",
    "hot-items-lb=frequency/deterministic:0.05",
    "median=rank/randomized:0.05",
)

SERVICE_EPILOG = """\
service:
  `repro serve` runs the multi-tenant tracking service: one shared fleet
  of -k sites, many named jobs ingesting the same multi-tenant stream
  through the batched engine.  Each job is NAME=PROBLEM/SCHEME[:EPS],
  e.g.

    repro serve -k 32 -n 500000 --job total=count/randomized:0.01 \\
        --job p50=rank/randomized:0.05 --job hh=frequency/randomized:0.05

  Without --job flags a demo job set covering all three problems is
  registered.  --tenants/--burst shape the multi-tenant workload,
  --batch sets the ingestion batch size.  The final table reports each
  job's own communication/space ledgers plus the fleet-wide aggregate.
"""


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Distributed tracking simulator (PODS 2012 reproduction)",
        epilog=SERVICE_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "problem",
        choices=sorted(SCHEMES) + ["serve"],
        help="which function to track, or `serve` for the multi-tenant service",
    )
    parser.add_argument(
        "--scheme",
        default="randomized",
        help="scheme name (see --list-schemes), default: randomized",
    )
    parser.add_argument(
        "--compare",
        action="store_true",
        help="run every scheme for the problem and print one table",
    )
    parser.add_argument("-n", type=int, default=100_000, help="stream length")
    parser.add_argument("-k", type=int, default=25, help="number of sites")
    parser.add_argument("--eps", type=float, default=0.02, help="error target")
    parser.add_argument(
        "--workload",
        default="uniform",
        choices=sorted(ARRIVALS) + ["zipf", "sorted", "permutation"],
        help="arrival pattern (count) or item law (frequency/rank)",
    )
    parser.add_argument("--seed", type=int, default=0, help="root seed")
    parser.add_argument(
        "--list-schemes", action="store_true", help="list schemes and exit"
    )
    serve = parser.add_argument_group("serve options")
    serve.add_argument(
        "--job",
        action="append",
        metavar="NAME=PROBLEM/SCHEME[:EPS]",
        help="register a named job (repeatable); default: a demo job set",
    )
    serve.add_argument(
        "--batch", type=int, default=8192, help="ingestion batch size"
    )
    serve.add_argument(
        "--tenants", type=int, default=4, help="multi-tenant sub-streams"
    )
    serve.add_argument(
        "--burst", type=int, default=64, help="per-source micro-batch length"
    )
    return parser


def parse_job_spec(spec: str, default_eps: float):
    """Parse ``NAME=PROBLEM/SCHEME[:EPS]`` into (name, problem, scheme)."""
    name, sep, rest = spec.partition("=")
    if not sep or not name or not rest:
        raise ValueError(f"bad job spec {spec!r}: expected NAME=PROBLEM/SCHEME[:EPS]")
    parts = rest.split(":")
    if len(parts) > 2:
        raise ValueError(f"bad job spec {spec!r}: too many ':' fields")
    problem, sep, scheme_name = parts[0].partition("/")
    if not sep or problem not in SCHEMES:
        raise ValueError(
            f"bad job spec {spec!r}: unknown problem {problem!r} "
            f"(choose from {sorted(SCHEMES)})"
        )
    factory = SCHEMES[problem].get(scheme_name)
    if factory is None:
        raise ValueError(
            f"bad job spec {spec!r}: unknown scheme {scheme_name!r} for "
            f"{problem} (choose from {sorted(SCHEMES[problem])})"
        )
    if len(parts) > 1:
        try:
            eps = float(parts[1])
        except ValueError:
            raise ValueError(
                f"bad job spec {spec!r}: eps {parts[1]!r} is not a number"
            ) from None
    else:
        eps = default_eps
    return name, problem, factory(eps)


def run_serve(args) -> int:
    """The `repro serve` subcommand: a multi-tenant service demo."""
    # multi_tenant raises lazily (generator), so validate its knobs here
    # to fail with a clean message like every other bad flag.
    for flag, value in (("--batch", args.batch), ("--tenants", args.tenants),
                        ("--burst", args.burst)):
        if value < 1:
            print(f"error: {flag} must be positive", file=sys.stderr)
            return 2
    specs = args.job or list(DEFAULT_SERVE_JOBS)
    problems = {}
    try:
        service = TrackingService(num_sites=args.k, seed=args.seed)
        for spec in specs:
            name, problem, scheme = parse_job_spec(spec, args.eps)
            service.register(name, scheme)
            problems[name] = problem
    except (ValueError, ServiceError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    stream = multi_tenant(
        args.n,
        args.k,
        tenants=args.tenants,
        burst=args.burst,
        seed=args.seed,
        labeled=False,
    )
    start = time.perf_counter()
    total = service.ingest_stream(stream, batch_size=args.batch)
    elapsed = time.perf_counter() - start
    status = service.status()
    rows = []
    for name, job in status["jobs"].items():
        problem = problems[name]
        if problem == "frequency":
            top = service.query(name, "top_items", 1)
            result = f"top: {top[0][0]}" if top else "-"
        elif problem == "rank":
            # An empty rank summary has no candidate values to search.
            if job["elements"] > 0:
                result = f"p50: {service.query(name, 'quantile', 0.5)}"
            else:
                result = "-"
        else:
            estimate = job["accuracy"]["estimate"]
            result = "-" if estimate is None else f"{estimate:.0f}"
        rows.append(
            [
                name,
                job["scheme"],
                job["comm"]["total_messages"],
                job["comm"]["total_words"],
                job["space"]["used"]["max_site_words"],
                result,
            ]
        )
    agg = status["comm"]
    rows.append(
        [
            "(fleet total)",
            f"{len(status['jobs'])} jobs",
            agg["total_messages"],
            agg["total_words"],
            "",
            "",
        ]
    )
    print(
        render_table(
            ["job", "scheme", "messages", "words", "site space", "result"],
            rows,
            title=(
                f"service: k={args.k}, n={total:,}, tenants={args.tenants}, "
                f"burst={args.burst}, batch={args.batch}"
            ),
        )
    )
    rate = total / elapsed if elapsed > 0 else float("inf")
    print(
        f"ingested {total:,} events x {len(status['jobs'])} jobs "
        f"in {elapsed:.2f}s ({rate:,.0f} events/s/job)"
    )
    return 0


def make_stream(problem: str, workload: str, n: int, k: int, seed: int):
    """Build the (site, item) stream for the chosen problem/workload."""
    if problem == "count":
        arrivals = ARRIVALS.get(workload, ARRIVALS["uniform"])
        return list(arrivals(n, k, seed))
    if problem == "frequency":
        source = zipf_items(max(10, n // 100), alpha=1.2, seed=seed + 1)
        if workload == "uniform":
            source = zipf_items(max(10, n // 100), alpha=1.2, seed=seed + 1)
        return list(with_items(uniform_sites(n, k, seed=seed), source))
    # rank
    if workload == "sorted":
        values = sorted_values(n)
    else:
        values = random_permutation_values(n, seed=seed + 2)
    sites = [s for s, _ in uniform_sites(n, k, seed=seed)]
    return list(zip(sites, values))


def describe(problem: str, sim: Simulation, n: int) -> list:
    """One summary row for a finished simulation."""
    coordinator = sim.coordinator
    if problem == "count":
        estimate = coordinator.estimate()
        accuracy = f"{abs(estimate - n) / n:.4f}"
    elif problem == "frequency":
        accuracy = f"top item: {coordinator.top_items(1)}"
    else:
        estimate = coordinator.estimate_rank(n // 2)
        accuracy = f"rank(median)={estimate:.0f}"
    return [
        sim.scheme.name,
        sim.comm.total_messages,
        sim.comm.total_words,
        sim.space.max_site_words,
        accuracy,
    ]


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.problem == "serve":
        return run_serve(args)
    schemes = SCHEMES[args.problem]
    if args.list_schemes:
        for name in sorted(schemes):
            print(name)
        return 0
    if not args.compare and args.scheme not in schemes:
        parser.error(
            f"unknown scheme {args.scheme!r} for {args.problem} "
            f"(choose from {sorted(schemes)})"
        )

    stream = make_stream(args.problem, args.workload, args.n, args.k, args.seed)
    chosen = sorted(schemes) if args.compare else [args.scheme]
    rows = []
    for name in chosen:
        scheme = schemes[name](args.eps)
        sim = Simulation(scheme, args.k, seed=args.seed)
        sim.run(stream)
        rows.append(describe(args.problem, sim, args.n))
    print(
        render_table(
            ["scheme", "messages", "words", "site space", "result"],
            rows,
            title=(
                f"{args.problem}: n={args.n:,}, k={args.k}, eps={args.eps}, "
                f"workload={args.workload}"
            ),
        )
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
