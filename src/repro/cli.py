"""Command-line runner: simulate any scheme on any workload.

Examples::

    python -m repro count --scheme randomized -k 64 -n 100000 --eps 0.01
    python -m repro frequency --scheme deterministic --workload zipf
    python -m repro rank --scheme sampling --workload sorted -n 50000
    python -m repro count --compare          # all count schemes, one table
"""

from __future__ import annotations

import argparse
import sys

from . import (
    Cormode05RankScheme,
    DeterministicCountScheme,
    DeterministicFrequencyScheme,
    DeterministicRankScheme,
    DistributedSamplingScheme,
    RandomizedCountScheme,
    RandomizedFrequencyScheme,
    RandomizedRankScheme,
    Simulation,
)
from .analysis import render_table
from .workloads import (
    bursty_sites,
    random_permutation_values,
    round_robin,
    single_site,
    skewed_sites,
    sorted_values,
    uniform_sites,
    with_items,
    zipf_items,
)

SCHEMES = {
    "count": {
        "randomized": RandomizedCountScheme,
        "deterministic": DeterministicCountScheme,
        "sampling": DistributedSamplingScheme,
    },
    "frequency": {
        "randomized": RandomizedFrequencyScheme,
        "deterministic": DeterministicFrequencyScheme,
        "sampling": DistributedSamplingScheme,
    },
    "rank": {
        "randomized": RandomizedRankScheme,
        "deterministic": DeterministicRankScheme,
        "cormode05": Cormode05RankScheme,
        "sampling": DistributedSamplingScheme,
    },
}

ARRIVALS = {
    "uniform": lambda n, k, seed: uniform_sites(n, k, seed=seed),
    "round-robin": lambda n, k, seed: round_robin(n, k),
    "single-site": lambda n, k, seed: single_site(n, k, site_id=0),
    "skewed": lambda n, k, seed: skewed_sites(n, k, alpha=1.2, seed=seed),
    "bursty": lambda n, k, seed: bursty_sites(n, k, burst=200, seed=seed),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Distributed tracking simulator (PODS 2012 reproduction)",
    )
    parser.add_argument(
        "problem", choices=sorted(SCHEMES), help="which function to track"
    )
    parser.add_argument(
        "--scheme",
        default="randomized",
        help="scheme name (see --list-schemes), default: randomized",
    )
    parser.add_argument(
        "--compare",
        action="store_true",
        help="run every scheme for the problem and print one table",
    )
    parser.add_argument("-n", type=int, default=100_000, help="stream length")
    parser.add_argument("-k", type=int, default=25, help="number of sites")
    parser.add_argument("--eps", type=float, default=0.02, help="error target")
    parser.add_argument(
        "--workload",
        default="uniform",
        choices=sorted(ARRIVALS) + ["zipf", "sorted", "permutation"],
        help="arrival pattern (count) or item law (frequency/rank)",
    )
    parser.add_argument("--seed", type=int, default=0, help="root seed")
    parser.add_argument(
        "--list-schemes", action="store_true", help="list schemes and exit"
    )
    return parser


def make_stream(problem: str, workload: str, n: int, k: int, seed: int):
    """Build the (site, item) stream for the chosen problem/workload."""
    if problem == "count":
        arrivals = ARRIVALS.get(workload, ARRIVALS["uniform"])
        return list(arrivals(n, k, seed))
    if problem == "frequency":
        source = zipf_items(max(10, n // 100), alpha=1.2, seed=seed + 1)
        if workload == "uniform":
            source = zipf_items(max(10, n // 100), alpha=1.2, seed=seed + 1)
        return list(with_items(uniform_sites(n, k, seed=seed), source))
    # rank
    if workload == "sorted":
        values = sorted_values(n)
    else:
        values = random_permutation_values(n, seed=seed + 2)
    sites = [s for s, _ in uniform_sites(n, k, seed=seed)]
    return list(zip(sites, values))


def describe(problem: str, sim: Simulation, n: int) -> list:
    """One summary row for a finished simulation."""
    coordinator = sim.coordinator
    if problem == "count":
        estimate = coordinator.estimate()
        accuracy = f"{abs(estimate - n) / n:.4f}"
    elif problem == "frequency":
        accuracy = f"top item: {coordinator.top_items(1)}"
    else:
        estimate = coordinator.estimate_rank(n // 2)
        accuracy = f"rank(median)={estimate:.0f}"
    return [
        sim.scheme.name,
        sim.comm.total_messages,
        sim.comm.total_words,
        sim.space.max_site_words,
        accuracy,
    ]


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    schemes = SCHEMES[args.problem]
    if args.list_schemes:
        for name in sorted(schemes):
            print(name)
        return 0
    if not args.compare and args.scheme not in schemes:
        parser.error(
            f"unknown scheme {args.scheme!r} for {args.problem} "
            f"(choose from {sorted(schemes)})"
        )

    stream = make_stream(args.problem, args.workload, args.n, args.k, args.seed)
    chosen = sorted(schemes) if args.compare else [args.scheme]
    rows = []
    for name in chosen:
        scheme = schemes[name](args.eps)
        sim = Simulation(scheme, args.k, seed=args.seed)
        sim.run(stream)
        rows.append(describe(args.problem, sim, args.n))
    print(
        render_table(
            ["scheme", "messages", "words", "site space", "result"],
            rows,
            title=(
                f"{args.problem}: n={args.n:,}, k={args.k}, eps={args.eps}, "
                f"workload={args.workload}"
            ),
        )
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
