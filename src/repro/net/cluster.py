"""The cluster facade: one distributed protocol run, driven synchronously.

A :class:`Cluster` is the distributed counterpart of
:class:`~repro.runtime.Simulation`: it stands up a coordinator hub and
``k`` site actors (self-hosted on a loopback or TCP transport, or placed
on already-running ``repro site`` hosts), and exposes the familiar
synchronous surface — ``ingest``/``run``/``query``/``summary`` — by
pumping an asyncio event loop on a background thread.

Durability mirrors the tracking service exactly, built on the PR-2
recovery machinery: with ``checkpoint_dir`` every ingested batch is
written ahead to the shared :class:`~repro.persistence.WriteAheadLog`,
``checkpoint()`` gathers actor snapshots into one bundle saved through
the :class:`~repro.persistence.CheckpointManager`, and
:meth:`Cluster.restore` rebuilds the actors from the newest bundle and
replays the WAL tail *through the distributed runtime itself* — so a
cluster that lost a site actor mid-stream recovers to query answers
identical to a run that never failed.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import threading
from typing import Optional

from ..persistence.codec import decode_value
from ..persistence.recovery import CheckpointManager
from ..persistence.snapshot import latest_snapshot
from ..persistence.wal import REC_BATCH
from ..runtime.batching import batch_from_stream
from .actors import CoordinatorHub, NetError, SiteHost
from .transport import LoopbackTransport, TcpTransport

__all__ = ["Cluster", "restore_cluster"]

#: generous ceiling for one cross-thread runtime call; a hung actor
#: surfaces as an error instead of a silently stuck test suite
DEFAULT_OP_TIMEOUT = 600.0


def _make_transport(kind: str):
    if kind == "loopback":
        return LoopbackTransport()
    if kind == "tcp":
        return TcpTransport()
    if kind == "tcp-json":
        # Legacy all-JSON frames; kept for the byte-volume comparison in
        # bench_net (binary payload envelope vs JSON-only encoding).
        return TcpTransport(binary=False)
    raise ValueError(
        f"unknown transport {kind!r} (loopback, tcp or tcp-json)"
    )


class Cluster:
    """Run one tracking scheme as real actors; drive it like a simulation.

    Parameters
    ----------
    scheme:
        The protocol factory, as for :class:`~repro.runtime.Simulation`.
    num_sites / seed / one_way / uplink_drop_rate:
        Exactly the simulator's knobs; same seed => same transcript.
    transport:
        ``"loopback"`` (in-process queues) or ``"tcp"`` (framed TCP over
        localhost for self-hosted sites).
    site_addresses:
        Addresses of already-running site hosts (``repro site``); None
        self-hosts every site in this process over ``transport``.
    checkpoint_dir:
        Arm durability: batches are WAL'd ahead of dispatch and
        :meth:`checkpoint` persists full cluster bundles; recover with
        :meth:`Cluster.restore`.
    record_transcript:
        Keep a :class:`~repro.runtime.TranscriptRecorder` on the hub's
        network — the equivalence oracle, on by default.  The recorder
        holds every protocol message in memory for the cluster's
        lifetime; pass False for long-running or unbounded streams
        (checkpoints, ledgers and queries do not need it).
    relaxed:
        Pipelined dispatch: post every run of a batch before collecting
        any ack, so runs targeting disjoint sites overlap between
        protocol messages (:func:`repro.exec.dispatch.dispatch_relaxed`).
        The default — lockstep — pays one round trip per run and is
        byte-identical to :class:`~repro.runtime.Simulation`; relaxed
        mode trades that transcript determinism for latency, keeping
        per-site streams exact while the coordinator observes uplinks
        in arrival order (see ``docs/relaxed-mode.md``).  Relaxed mode
        also coalesces each site's runs into columnar super-runs and,
        for schemes that declare stream-tolerant sites
        (``sync_uplinks = False``), streams uplinks without per-message
        acks.
    window / per_site_depth:
        Relaxed-mode in-flight bounds (``docs/relaxed-mode.md`` →
        "Windowing"): at most ``window`` original runs in flight in
        total and ``per_site_depth`` super-run frames per site.  None
        (default) leaves the dimension unbounded.  Ignored in lockstep.
    """

    def __init__(
        self,
        scheme,
        num_sites: int,
        seed: int = 0,
        one_way: bool = False,
        uplink_drop_rate: float = 0.0,
        transport: str = "loopback",
        site_addresses=None,
        checkpoint_dir: Optional[str] = None,
        wal_segment_records: int = 4096,
        wal_sync: bool = False,
        record_transcript: bool = True,
        op_timeout: float = DEFAULT_OP_TIMEOUT,
        relaxed: bool = False,
        window: Optional[int] = None,
        per_site_depth: Optional[int] = None,
        _restore_state: Optional[dict] = None,
    ):
        self.transport_kind = transport
        self.op_timeout = op_timeout
        self.relaxed = bool(relaxed)
        if not relaxed and (window is not None or per_site_depth is not None):
            raise ValueError(
                "window/per_site_depth only apply to relaxed dispatch; "
                "pass relaxed=True"
            )
        self._host: Optional[SiteHost] = None
        self._manager: Optional[CheckpointManager] = None
        self._wal = None
        self._wal_seq = -1
        self._replaying = False
        self._closed = False

        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="repro-cluster-loop", daemon=True
        )
        self._thread.start()
        try:
            self.hub = CoordinatorHub(
                scheme,
                num_sites,
                seed=seed,
                one_way=one_way,
                uplink_drop_rate=uplink_drop_rate,
                record_transcript=record_transcript,
                relaxed=relaxed,
                window=window,
                per_site_depth=per_site_depth,
            )
            self._call(self._start(site_addresses, _restore_state))
            if checkpoint_dir is not None:
                manager = CheckpointManager(
                    checkpoint_dir,
                    segment_records=wal_segment_records,
                    sync=wal_sync,
                )
                if manager.has_data():
                    manager.close()
                    raise ValueError(
                        f"checkpoint dir {checkpoint_dir!r} already holds "
                        "state; resume it with Cluster.restore(...)"
                    )
                self._attach_checkpoints(manager)
                self.checkpoint()
        except BaseException:
            self._shutdown_loop()
            raise

    async def _start(self, site_addresses, restore_state) -> None:
        transport = _make_transport(self.transport_kind)
        self._transport = transport
        if site_addresses is None:
            # Self-host every site actor in this process.  One host
            # serves all k logical sites (one connection each).
            address = (
                "sites" if self.transport_kind == "loopback" else "127.0.0.1:0"
            )
            self._host = await SiteHost(transport, address).start()
            site_addresses = [self._host.address]
        restore_sites = None
        if restore_state is not None:
            restore_sites = restore_state["sites"]
        await self.hub.connect_sites(
            transport, site_addresses, restore_states=restore_sites
        )
        if restore_state is not None:
            self.hub.load_hub_state(restore_state)

    # -- cross-thread plumbing --------------------------------------------

    def _call(self, coro):
        """Run one coroutine on the cluster loop; block for the result."""
        if self._closed:
            raise RuntimeError("cluster is closed")
        future = asyncio.run_coroutine_threadsafe(coro, self._loop)
        try:
            return future.result(self.op_timeout)
        except concurrent.futures.TimeoutError:
            future.cancel()
            raise

    # -- driving -----------------------------------------------------------

    def ingest(self, site_ids, items=None) -> int:
        """Dispatch one ordered event batch through the actors.

        With durability armed the batch is logged before any actor sees
        it, and the record is rolled back if dispatch fails — whether
        the batch was poisoned (bad site id, hostile item) or a site
        actor died mid-dispatch.  An ingest that raised is therefore
        *not* durable: re-send it after recovery.  (The half-dispatched
        batch's effects live only in the failed cluster's memory;
        :meth:`restore` rebuilds from the checkpoint plus fully-applied
        batches, so the ledger stays consistent.)
        """
        if self._wal is not None and not self._replaying:
            self._wal_seq = self._wal.append_batch(site_ids, items)
        try:
            return self._call(self.hub.ingest(site_ids, items))
        except BaseException:
            if self._wal is not None and not self._replaying:
                self._wal.rollback_last()
                self._wal_seq -= 1
            raise

    def run(self, stream, batch_size: int = 8192) -> int:
        """Drain an iterable of ``(site_id, item)`` pairs in batches."""
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        total = 0
        site_ids: list = []
        items: list = []
        for site_id, item in stream:
            site_ids.append(site_id)
            items.append(item)
            if len(site_ids) >= batch_size:
                total += self.ingest(site_ids, items)
                site_ids, items = [], []
        if site_ids:
            total += self.ingest(site_ids, items)
        return total

    # -- results -----------------------------------------------------------

    def query(self, method: Optional[str] = None, *args, **kwargs):
        """Run a coordinator query (``None`` = the default query)."""
        return self._call(self.hub.query(method, *args, **kwargs))

    @property
    def comm(self):
        """The hub's communication ledger (:class:`CommStats`)."""
        return self.hub.comm

    @property
    def wire_stats(self):
        """Framed byte/frame counters of a TCP transport (None for
        loopback, which ships objects without serialization)."""
        transport = getattr(self, "_transport", None)
        return getattr(transport, "stats", None)

    @property
    def elements_processed(self) -> int:
        return self.hub.elements_processed

    @property
    def recorder(self):
        return self.hub.recorder

    def transcript_bytes(self) -> bytes:
        """The canonical transcript (see :class:`TranscriptRecorder`)."""
        if self.hub.recorder is None:
            raise RuntimeError("cluster was started with record_transcript=False")
        return self.hub.recorder.to_bytes()

    def summary(self) -> dict:
        """Flat dict of cost metrics, shaped like ``Simulation.summary``."""
        return self.hub.summary()

    @property
    def dispatch_mode(self) -> str:
        """``"lockstep"``, ``"relaxed"`` or ``"windowed"``."""
        return self.hub.dispatch_mode

    def dispatch_stats(self) -> dict:
        """Hot-path dispatch counters (frames, coalescing, in-flight
        peaks, window stalls) — see :meth:`CoordinatorHub.dispatch_stats`."""
        return self.hub.dispatch_stats()

    # -- durability --------------------------------------------------------

    def checkpoint(self) -> str:
        """Persist a full cluster bundle; prunes covered WAL segments."""
        if self._manager is None:
            raise RuntimeError(
                "no checkpoint_dir configured; pass checkpoint_dir= to Cluster"
            )
        state = self._call(self.hub.snapshot_state())
        state["wal_seq"] = self._wal_seq
        return self._manager.save_state(state)

    @property
    def checkpoint_dir(self) -> Optional[str]:
        return None if self._manager is None else self._manager.directory

    def _attach_checkpoints(self, manager: CheckpointManager) -> None:
        self._manager = manager
        self._wal = manager.wal

    @classmethod
    def restore(
        cls,
        checkpoint_dir: str,
        transport: str = "loopback",
        site_addresses=None,
        wal_segment_records: int = 4096,
        wal_sync: bool = False,
        op_timeout: float = DEFAULT_OP_TIMEOUT,
    ) -> "Cluster":
        """Rebuild a cluster from its checkpoint directory.

        Loads the newest bundle, restores hub and site actors from it,
        replays the WAL tail through the distributed runtime, and
        resumes durable logging to the same directory.  Final query
        answers match a cluster that never failed.
        """
        return restore_cluster(
            checkpoint_dir,
            transport=transport,
            site_addresses=site_addresses,
            wal_segment_records=wal_segment_records,
            wal_sync=wal_sync,
            op_timeout=op_timeout,
        )

    # -- failure injection -------------------------------------------------

    def kill_site(self, site_id: int) -> None:
        """Abruptly kill one site actor; later runs to it raise
        :class:`SiteUnavailableError` until the cluster is restored."""
        self._call(self.hub.kill_site(site_id))

    @property
    def dead_sites(self) -> set:
        return self.hub.dead_sites

    # -- shutdown ----------------------------------------------------------

    def close(self) -> None:
        """Stop actors, close transports, release the WAL handle."""
        if self._closed:
            return
        try:
            self._call(self.hub.close())
            if self._host is not None:
                self._call(self._host.close())
        except (NetError, ConnectionError, RuntimeError):
            pass
        finally:
            self._shutdown_loop()
            if self._manager is not None:
                self._manager.close()

    def _shutdown_loop(self) -> None:
        self._closed = True
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=30)
        if not self._thread.is_alive():
            self._loop.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()

    def __repr__(self) -> str:
        return (
            f"Cluster(scheme={self.hub.scheme.name!r}, "
            f"k={self.hub.num_sites}, transport={self.transport_kind!r}, "
            f"elements={self.elements_processed})"
        )

    # Re-exported for callers building batches from generators.
    batch_from_stream = staticmethod(batch_from_stream)


def restore_cluster(
    checkpoint_dir: str,
    transport: str = "loopback",
    site_addresses=None,
    wal_segment_records: int = 4096,
    wal_sync: bool = False,
    op_timeout: float = DEFAULT_OP_TIMEOUT,
) -> Cluster:
    """Recover a :class:`Cluster` from disk (newest bundle + WAL tail)."""
    state = latest_snapshot(checkpoint_dir)
    if state is None:
        raise FileNotFoundError(
            f"no snapshot under {checkpoint_dir!r}; nothing to restore"
        )
    if state.get("format") != "repro-cluster":
        raise ValueError(
            f"{checkpoint_dir!r} holds a tracking-service checkpoint; "
            "restore it with TrackingService.restore(...)"
        )
    config = state["config"]
    cluster = Cluster(
        decode_value(config["scheme"]),
        config["num_sites"],
        seed=config["seed"],
        one_way=config["one_way"],
        uplink_drop_rate=config["uplink_drop_rate"],
        transport=transport,
        site_addresses=site_addresses,
        op_timeout=op_timeout,
        _restore_state=state,
    )
    manager = CheckpointManager(
        checkpoint_dir,
        segment_records=wal_segment_records,
        sync=wal_sync,
    )
    after_seq = state.get("wal_seq", -1)
    manager.wal.ensure_seq_floor(after_seq)
    cluster._attach_checkpoints(manager)
    cluster._wal_seq = after_seq
    cluster._replaying = True
    try:
        for record in manager.wal.records(after_seq):
            if record[0] == REC_BATCH:
                _, seq, site_ids, items = record
                cluster.ingest(site_ids, items)
                cluster._wal_seq = seq
    finally:
        cluster._replaying = False
    return cluster
