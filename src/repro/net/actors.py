"""The distributed runtime's actors: site workers and the coordinator hub.

Topology is a star, like the paper's model: ``k`` site actors each hold
one :class:`~repro.runtime.Site` state machine; the coordinator hub
holds the :class:`~repro.runtime.Coordinator`, the *real*
:class:`~repro.runtime.Network` ledger, and one connection per site.
Stream events travel hub -> site as *run* commands (per-site chunks in
arrival order); protocol messages travel site -> hub as *uplink* frames.

**Why transcripts match the simulator.**  The paper's model delivers
messages synchronously and re-entrantly: a site's report can trigger a
coordinator broadcast whose per-site handlers run *inside* the original
send — and those handlers may themselves report (the randomized count
scheme's re-randomization adjusts do exactly this).  The runtime mirrors
that depth-first cascade with blocking RPCs:

1. *Lockstep runs* — the hub dispatches one run at a time, in global
   arrival order (exactly the order ``Simulation.run_batched`` uses).
2. *Uplink RPC* — a site's ``send()`` transmits the uplink and blocks
   until the hub's ``ack``.  The hub only acks after the coordinator
   has completely finished processing the message — including every
   downlink/broadcast the processing emitted.
3. *Deliver RPC* — each coordinator->site message is pushed to its site
   as a ``deliver`` frame *at its exact position in the cascade* (the
   hub hosts the real ``Network``, so a broadcast walks sites in
   ascending order just like the simulator).  The site applies it and
   replies ``deliver_done``; uplinks the handler emits in between are
   processed inline, recursively.  A site blocked awaiting an ``ack``
   services interleaved delivers — that is the simulator's re-entrant
   delivery, reproduced on a wire.

The hub's protocol core is synchronous (it *is* the simulator's
``Network``/``Coordinator`` objects) and runs on an executor thread;
per-connection asyncio pump tasks feed it thread-safe inboxes.  Site
workers mirror the same split: sync state machine on a thread, asyncio
pump for frames.  Per-connection FIFO plus the depth-first RPC
discipline make the distributed transcript — every message, every RNG
draw, every ledger entry — byte-identical to the in-process simulator
with the same seed.

**The relaxed fast path.**  Relaxed mode (negotiated at spawn) drops
the per-frame synchronization that lockstep's byte-identity needs but
per-site exactness does not:

* *Coalesced super-runs* — before posting, the batch's runs are merged
  per site within the in-flight window
  (:func:`~repro.exec.dispatch.coalesce_runs`), so a burst of hundreds
  of same-site runs is one ``run`` frame and one vectorized
  ``on_elements`` apply.  Per-site concatenation order is arrival
  order, the only order relaxed mode promises.
* *Streamed uplinks* — sites send reports without awaiting an ``ack``
  and the hub sends none.  Acks are pure transport sync tokens (they
  never touch the ``Network`` ledger), so message counts are
  untouched; per-site FIFO still delivers each site's reports in
  exact local order, and the hub still runs every cascade atomically
  on its protocol thread.  Sites poll their inbox at uplink boundaries
  so coordinator responses keep applying between reports.
* *Fire-and-forget posting* — hub run/deliver posts and site
  uplink/completion replies are encoded on the sending thread and
  handed to the event loop as one ``call_soon_threadsafe`` write: no
  coroutine, no completion future, no cross-thread wait per frame.
  Send failures surface on the next ``recv`` (EOF), exactly like a
  peer death.
* *Bounded windows* — ``window``/``per_site_depth`` cap in-flight runs
  (:func:`~repro.exec.dispatch.dispatch_windowed`), so memory stays
  flat on huge batches and a fence waits out at most a window, not a
  batch.
"""

from __future__ import annotations

import asyncio
import queue
import threading
import time
from collections import deque
from typing import List, Optional

from ..exec.dispatch import (
    coalesce_runs,
    dispatch_lockstep,
    dispatch_windowed,
)
from ..persistence.codec import (
    StateDecoder,
    StateEncoder,
    decode_value,
    encode_value,
    load_object_state,
    object_state,
)
from ..runtime import CommStats, Network, SpaceStats, TranscriptRecorder
from ..runtime.batching import decompose_runs
from ..service.job import resolve_query
from .wire import decode_chunk, decode_message, encode_chunk, encode_message

__all__ = [
    "NetError",
    "ProtocolError",
    "RemoteActorError",
    "SiteUnavailableError",
    "SiteHost",
    "SiteWorker",
    "CoordinatorHub",
]

#: ceiling for any single blocking wait on a peer's frame
DEFAULT_RPC_TIMEOUT = 600.0


class NetError(RuntimeError):
    """Base class for distributed-runtime failures."""


class ProtocolError(NetError):
    """A peer sent a frame the actor protocol does not allow here."""


class RemoteActorError(NetError):
    """A remote actor reported an exception while executing a command."""


class SiteUnavailableError(NetError):
    """A site actor is down (killed, crashed, or unreachable)."""


class _RemoteNetwork:
    """The network facade a site actor hands its protocol state machine.

    Only the uplink exists on a site: ``send_to_coordinator`` turns into
    a blocking RPC through the owning :class:`SiteWorker`.  The ledger
    lives at the hub (the authoritative ``Network``); the local ``stats``
    object exists only so wrappers like the boosting ``_TaggedChannel``
    can hold a reference.
    """

    def __init__(self, worker: "SiteWorker", num_sites: int, one_way: bool):
        self._worker = worker
        self.num_sites = num_sites
        self.one_way = one_way
        self.stats = CommStats()

    def send_to_coordinator(self, site_id: int, message) -> None:
        self._worker.uplink(message)

    def send_to_site(self, site_id: int, message) -> None:
        raise ProtocolError("a site actor cannot send downlink traffic")

    def broadcast(self, message) -> None:
        raise ProtocolError("a site actor cannot broadcast")


class SiteWorker:
    """Synchronous state machine executing one logical site actor.

    Driven entirely through two blocking callables (``send``/``recv``)
    so it can run on a worker thread behind an asyncio connection — or
    directly on queue pairs in unit tests.  Commands:

    ``spawn``     build the site from an encoded scheme
    ``restore``   merge a snapshot into the spawned site
    ``run``       process one chunk of local elements
    ``deliver``   apply coordinator messages, reply ``deliver_done``
    ``snapshot``  reply with the site's encoded state
    ``ping``      liveness probe
    ``stop``      acknowledge and exit

    The optional fast-path callables mirror the blocking pair:
    ``post`` sends a frame fire-and-forget (per-connection FIFO with
    ``send``), ``recv_nowait`` returns a pending command or raises
    :class:`queue.Empty`.  They only matter once a ``spawn`` negotiates
    relaxed mode — the spawn frame's ``relaxed`` flag — where uplinks
    stream without awaiting acks and hot-path replies skip the
    cross-thread completion wait.  Without them the worker behaves
    exactly as before, whatever the hub negotiates.
    """

    def __init__(self, send, recv, post=None, recv_nowait=None):
        self._send = send
        self._recv = recv
        self._post = post if post is not None else send
        self._recv_nowait = recv_nowait
        self.site = None
        self._relaxed = False
        # Commands that arrived while this site was blocked inside a
        # protocol send (the hub pipelines runs in relaxed mode); they
        # execute after the current command completes, preserving the
        # site's local stream order.
        self._deferred: list = []

    # -- the uplink RPC (called from inside protocol handlers) -------------

    def uplink(self, message) -> None:
        """Ship one report; in lockstep, block until the hub's cascade
        finished.

        While waiting, interleaved ``deliver`` frames are serviced: the
        coordinator's re-entrant responses (downlinks, our copy of a
        broadcast) apply *inside* this send, exactly as the synchronous
        network would, and may recurse into further uplinks.  A ``run``
        frame arriving here is the hub's *relaxed* dispatcher posting
        ahead; it is deferred until the current command finishes, so the
        local element order never changes.

        In negotiated relaxed mode the hub sends no acks: the report
        streams out fire-and-forget (TCP FIFO keeps this site's reports
        in exact local order) after draining any pending coordinator
        responses, so delivers keep applying at uplink boundaries.
        """
        if self._relaxed:
            self._drain_pending()
            self._post({"t": "uplink", "msg": encode_message(message)})
            return
        self._send({"t": "uplink", "msg": encode_message(message)})
        while True:
            reply = self._recv()
            if reply is None:
                raise ConnectionError("hub vanished while awaiting ack")
            kind = reply.get("t")
            if kind == "deliver":
                self._deliver(reply)
            elif kind == "run":
                self._deferred.append(reply)
            elif kind == "ack":
                return
            else:
                raise ProtocolError(f"unexpected {kind!r} while awaiting ack")

    def _drain_pending(self) -> None:
        """Service every already-arrived command without blocking.

        Delivers apply immediately (they may recurse into further
        uplinks); pipelined runs are deferred behind the current one.
        Only used on the streaming path; without a ``recv_nowait``
        callable this is a no-op and delivers apply between commands.
        """
        recv_nowait = self._recv_nowait
        if recv_nowait is None:
            return
        while True:
            try:
                command = recv_nowait()
            except queue.Empty:
                return
            if command is None:
                raise ConnectionError("hub vanished mid-run")
            kind = command.get("t")
            if kind == "deliver":
                self._deliver(command)
            elif kind == "run":
                self._deferred.append(command)
            else:
                raise ProtocolError(
                    f"unexpected {kind!r} while streaming uplinks"
                )

    def _deliver(self, command) -> None:
        for encoded in command["msgs"]:
            self.site.on_message(decode_message(encoded))
        # deliver_done is a pure sync token for the hub's cascade walk;
        # on the streaming path it rides fire-and-forget.
        (self._post if self._relaxed else self._send)({"t": "deliver_done"})

    # -- command loop ------------------------------------------------------

    def run(self) -> None:
        """Serve commands until ``stop`` or connection EOF."""
        while True:
            command = (
                self._deferred.pop(0) if self._deferred else self._recv()
            )
            if command is None:
                return
            kind = command.get("t")
            try:
                if kind == "spawn":
                    self._spawn(command)
                    self._send({"t": "ok"})
                elif kind == "restore":
                    load_object_state(self.site, command["state"])
                    self._send({"t": "ok"})
                elif kind == "run":
                    chunk = decode_chunk(command["chunk"])
                    self.site.on_elements(chunk)
                    reply = {
                        "t": "run_done",
                        "n": len(chunk),
                        "space": self.site.space_words(),
                        # echoed so a relaxed hub can discard
                        # completions of an abandoned batch
                        "e": command.get("e"),
                    }
                    if command.get("w") is not None:
                        reply["w"] = command["w"]  # super-run weight echo
                    (self._post if self._relaxed else self._send)(reply)
                elif kind == "deliver":
                    self._deliver(command)
                elif kind == "snapshot":
                    self._send(
                        {"t": "state", "state": object_state(self.site)}
                    )
                elif kind == "ping":
                    self._send({"t": "pong"})
                elif kind == "stop":
                    self._send({"t": "bye"})
                    return
                else:
                    self._send(
                        {"t": "error", "error": f"unknown command {kind!r}"}
                    )
            except ConnectionError:
                return
            except Exception as exc:  # report, keep serving
                try:
                    self._send(
                        {
                            "t": "error",
                            "error": f"{type(exc).__name__}: {exc}",
                        }
                    )
                except ConnectionError:
                    return

    def _spawn(self, command) -> None:
        scheme = decode_value(command["scheme"])
        network = _RemoteNetwork(
            self, command["k"], command.get("one_way", False)
        )
        # The dispatch mode is negotiated here: a relaxed hub tells its
        # sites to stream uplinks (no acks in either direction).
        self._relaxed = bool(command.get("relaxed", False))
        self.site = scheme.make_site(
            network, command["site_id"], command["k"], command["seed"]
        )


def _make_poster(conn, loop):
    """A fire-and-forget frame sender for ``conn`` (any thread).

    TCP connections serialize on the calling thread and hand the loop a
    plain buffered write; loopback connections hand it a ``put_nowait``.
    Either way the loop callback cannot block and the caller never
    waits.  A closed loop (shutdown race) surfaces as
    :class:`ConnectionError`, like any other dead-peer send.
    """
    encode = getattr(conn, "encode_frame_bytes", None)
    if encode is not None:
        write = conn.write_frame_nowait

        def post(obj) -> None:
            frame = encode(obj)
            try:
                loop.call_soon_threadsafe(write, frame)
            except RuntimeError as exc:  # loop already closed
                raise ConnectionError(str(exc)) from exc

        return post

    send_nowait = getattr(conn, "send_nowait", None)
    if send_nowait is None:
        return None  # exotic connection: callers fall back to send

    def post(obj) -> None:
        try:
            loop.call_soon_threadsafe(send_nowait, obj)
        except RuntimeError as exc:
            raise ConnectionError(str(exc)) from exc

    return post


class SiteHost:
    """Asyncio server hosting site actors, one per inbound connection.

    The hub opens one connection per logical site and drives it with
    ``spawn``; a single host can therefore carry any number of sites
    (all of a small cluster, or one shard of a large one).  Protocol
    execution happens on a thread per connection; the event loop only
    pumps frames, so one host serves many sites concurrently.
    """

    def __init__(self, transport, address: str):
        self.transport = transport
        self._requested_address = address
        self._listener = None

    async def start(self) -> "SiteHost":
        self._listener = await self.transport.listen(
            self._requested_address, self._serve
        )
        return self

    @property
    def address(self) -> str:
        """The bound address (differs from requested for port 0)."""
        if self._listener is None:
            return self._requested_address
        return self._listener.address

    async def _serve(self, conn) -> None:
        loop = asyncio.get_running_loop()
        inbox: queue.Queue = queue.Queue()

        def send_threadsafe(obj) -> None:
            future = asyncio.run_coroutine_threadsafe(conn.send(obj), loop)
            try:
                future.result(DEFAULT_RPC_TIMEOUT)
            except Exception as exc:
                raise ConnectionError(str(exc)) from exc

        worker = SiteWorker(
            send=send_threadsafe,
            recv=inbox.get,
            post=_make_poster(conn, loop),
            recv_nowait=inbox.get_nowait,
        )
        thread = threading.Thread(
            target=worker.run, name="repro-site-worker", daemon=True
        )
        thread.start()
        try:
            while True:
                message = await conn.recv()
                inbox.put(message)
                if message is None:
                    break
        finally:
            inbox.put(None)  # a second EOF is harmless; worker exits once
            await loop.run_in_executor(None, thread.join)

    async def close(self) -> None:
        if self._listener is not None:
            await self._listener.close()
            self._listener = None


class SiteProxy:
    """The hub-side stand-in bound into the ``Network`` as site ``i``.

    ``on_message`` is invoked by the real ``Network`` at the exact
    cascade position the simulator would use; it performs a synchronous
    deliver-RPC to the remote site, so the distributed execution is the
    same depth-first walk.  ``space_words`` reports the last value the
    real site attached to a ``run_done``.
    """

    __slots__ = ("site_id", "hub", "last_space")

    def __init__(self, site_id: int, hub: "CoordinatorHub"):
        self.site_id = site_id
        self.hub = hub
        self.last_space = 0

    def on_message(self, message) -> None:
        self.hub._deliver_sync(self.site_id, message)

    def space_words(self) -> int:
        return self.last_space


class CoordinatorHub:
    """The coordinator actor: protocol brain plus run sequencer.

    Owns the scheme's coordinator, the authoritative ``Network`` (ledger,
    loss injection, transcript tracer — the same objects the simulator
    uses) and one transport connection per site actor.  Constructed
    exactly like a :class:`~repro.runtime.Simulation` with the same
    seed, so both produce identical protocol randomness.

    The protocol core is synchronous and runs on an executor thread
    behind the async public methods; asyncio pump tasks feed one
    thread-safe inbox per site connection.
    """

    def __init__(
        self,
        scheme,
        num_sites: int,
        seed: int = 0,
        one_way: bool = False,
        uplink_drop_rate: float = 0.0,
        record_transcript: bool = True,
        rpc_timeout: float = DEFAULT_RPC_TIMEOUT,
        relaxed: bool = False,
        window: Optional[int] = None,
        per_site_depth: Optional[int] = None,
    ):
        self.scheme = scheme
        self.num_sites = num_sites
        self.seed = seed
        self.one_way = one_way
        self.uplink_drop_rate = uplink_drop_rate
        self.rpc_timeout = rpc_timeout
        self.relaxed = bool(relaxed)
        if window is not None and window < 1:
            raise ValueError("window must be >= 1 (or None for unbounded)")
        if per_site_depth is not None and per_site_depth < 1:
            raise ValueError(
                "per_site_depth must be >= 1 (or None for unbounded)"
            )
        # In-flight credit bounds for relaxed dispatch (None: unbounded).
        # ``window`` counts original runs (super-run weights); its value
        # also sets the coalescing group size, so windowed relaxed is
        # per-site transcript-identical to unbounded relaxed.
        self.window = window
        self.per_site_depth = per_site_depth
        # Streamed (ack-free) uplinks are only negotiated when the
        # scheme declares its sites tolerant of deferred responses; a
        # sync-uplink scheme keeps the blocking ack RPC even in relaxed
        # mode (see TrackingScheme.sync_uplinks).
        self._stream_uplinks = self.relaxed and not getattr(
            scheme, "sync_uplinks", True
        )
        # Mirrors Simulation.__init__ — same drop-seed derivation, same
        # construction order — so transcripts can match byte for byte.
        self.network = Network(
            num_sites,
            one_way=one_way,
            uplink_drop_rate=uplink_drop_rate,
            drop_seed=seed ^ 0x5EED,
        )
        self.recorder: Optional[TranscriptRecorder] = None
        if record_transcript:
            self.recorder = TranscriptRecorder().attach(self.network)
        self.coordinator = scheme.make_coordinator(self.network, num_sites, seed)
        self.proxies = [SiteProxy(site_id, self) for site_id in range(num_sites)]
        self.network.bind(self.coordinator, self.proxies)
        self.space = SpaceStats()
        self.elements_processed = 0
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._conns: List = [None] * num_sites
        # One shared inbox of (site_id, frame): per-site FIFO is
        # preserved by each pump, and the relaxed dispatcher needs to
        # react to whichever site speaks first.
        self._inbox: queue.Queue = queue.Queue()
        self._pumps: List = [None] * num_sites
        self._dead = set()
        # Relaxed-dispatch bookkeeping: runs posted but not completed,
        # and uplinks that arrived while another cascade was running
        # (cascades stay atomic; deferred uplinks run next, in order).
        self._outstanding = [0] * num_sites
        self._outstanding_total = 0
        self._collected_n = 0
        self._pending_uplinks: List = []
        # Each relaxed batch gets an epoch, echoed by run_done frames:
        # after a failed batch (reset counters, runs still in flight) a
        # stale completion must not be booked against the next batch.
        self._run_epoch = 0
        # deliver_done frames are pure sync tokens (one per delivered
        # message, per-site).  Nested same-site cascades can consume
        # them out of pairing order; a token that surfaces while another
        # site is engaged is banked here for its waiter.
        self._done_credits = [0] * num_sites
        # Fire-and-forget senders (one per connection, built at connect
        # time) and per-site FIFO weight queues: each posted super-run's
        # original-run count, popped when its run_done lands, so the
        # windowed dispatcher accounts in-flight credit in run units.
        self._posters: List = [None] * num_sites
        self._posted_weights = [deque() for _ in range(num_sites)]
        self._inflight_weight = 0
        # Plain-counter dispatch telemetry (owned here, bridged into the
        # metrics registry by whoever hosts the hub — never a registry
        # lookup on the hot path).
        self.stat_frames_posted = 0
        self.stat_runs_posted = 0
        self.stat_window_stalls = 0
        self.stat_max_inflight_runs = 0

    # -- wiring ------------------------------------------------------------

    async def connect_sites(
        self, transport, addresses, restore_states=None
    ) -> None:
        """Connect and spawn every site actor (round-robin over hosts).

        ``addresses`` is one or more site-host addresses; site ``i``
        lands on ``addresses[i % len(addresses)]``.  With
        ``restore_states`` the spawned sites are immediately merged from
        the given snapshots (cluster recovery).
        """
        if isinstance(addresses, str):
            addresses = [addresses]
        if not addresses:
            raise ValueError("need at least one site-host address")
        self._loop = asyncio.get_running_loop()
        for site_id in range(self.num_sites):
            conn = await transport.connect(addresses[site_id % len(addresses)])
            self._conns[site_id] = conn
            self._posters[site_id] = _make_poster(conn, self._loop)
            self._pumps[site_id] = asyncio.ensure_future(
                self._pump(site_id, conn)
            )
        await self._loop.run_in_executor(
            None, self._spawn_all_sync, restore_states
        )

    async def _pump(self, site_id: int, conn) -> None:
        """Feed one connection's frames into the shared, tagged inbox."""
        try:
            while True:
                message = await conn.recv()
                self._inbox.put((site_id, message))
                if message is None:
                    return
        except Exception:
            self._inbox.put((site_id, None))

    def _spawn_all_sync(self, restore_states) -> None:
        for site_id in range(self.num_sites):
            self._send_sync(
                site_id,
                {
                    "t": "spawn",
                    "scheme": encode_value(self.scheme),
                    "site_id": site_id,
                    "k": self.num_sites,
                    "seed": self.seed,
                    "one_way": self.one_way,
                    # negotiate the dispatch mode: streaming sites send
                    # uplinks without awaiting acks (see SiteWorker)
                    "relaxed": self._stream_uplinks,
                },
            )
            self._expect_sync(site_id, "ok")
            if restore_states is not None:
                self._send_sync(
                    site_id,
                    {"t": "restore", "state": restore_states[site_id]},
                )
                self._expect_sync(site_id, "ok")

    # -- sync plumbing (executor thread) -----------------------------------

    def _send_sync(self, site_id: int, obj) -> None:
        conn = self._conns[site_id]
        if conn is None or site_id in self._dead:
            raise SiteUnavailableError(f"site {site_id} is down")
        future = asyncio.run_coroutine_threadsafe(conn.send(obj), self._loop)
        try:
            future.result(self.rpc_timeout)
        except NetError:
            raise
        except Exception as exc:
            self._dead.add(site_id)
            raise SiteUnavailableError(
                f"site {site_id} send failed: {exc}"
            ) from exc

    def _post_fast(self, site_id: int, obj) -> None:
        """Fire-and-forget send (relaxed hot path): serialize on this
        thread, hand the loop one buffered write, never wait.  Falls
        back to the blocking send for connections without a poster."""
        if self._conns[site_id] is None or site_id in self._dead:
            raise SiteUnavailableError(f"site {site_id} is down")
        poster = self._posters[site_id]
        if poster is None:
            self._send_sync(site_id, obj)
            return
        try:
            poster(obj)
        except NetError:
            raise
        except Exception as exc:
            self._dead.add(site_id)
            raise SiteUnavailableError(
                f"site {site_id} send failed: {exc}"
            ) from exc

    def _recv_sync(self, site_id: int) -> dict:
        """Next frame from ``site_id``, servicing whatever else arrives.

        In lockstep only the engaged site may speak (anything else is a
        protocol violation — except a connection EOF, which just marks
        the sender dead).  In relaxed mode, frames from *other* sites
        are part of the overlap and are serviced in arrival order:
        uplinks run their cascade inline, ``run_done`` completes an
        outstanding posted run.
        """
        deadline = time.monotonic() + self.rpc_timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise SiteUnavailableError(
                    f"site {site_id} did not respond within "
                    f"{self.rpc_timeout}s"
                )
            try:
                sender, message = self._inbox.get(timeout=remaining)
            except queue.Empty:
                raise SiteUnavailableError(
                    f"site {site_id} did not respond within "
                    f"{self.rpc_timeout}s"
                ) from None
            if message is None:
                self._dead.add(sender)
                if sender == site_id:
                    raise SiteUnavailableError(
                        f"site {site_id} closed the connection"
                    )
                continue
            if message.get("t") == "error":
                raise RemoteActorError(
                    f"site {sender}: {message.get('error')}"
                )
            if sender == site_id:
                return message
            self._service_out_of_band(sender, message, site_id)

    def _service_out_of_band(self, sender: int, message: dict,
                             engaged: int) -> None:
        """A frame from a site we are not currently waiting on.

        Relaxed mode: ``run_done`` completes a posted run immediately;
        an ``uplink`` is *deferred* — the coordinator is mid-cascade
        (that is why we are blocked on another site), and processing a
        second report inside it would interleave two cascades' delivery
        waits.  Deferred uplinks run, in arrival order, as soon as the
        current cascade unwinds (see :meth:`_collect_outstanding`).
        """
        kind = message.get("t")
        if self.relaxed:
            if kind == "uplink":
                self._pending_uplinks.append((sender, message))
                return
            if kind == "run_done":
                self._note_run_done(sender, message)
                return
            if kind == "deliver_done":
                self._done_credits[sender] += 1
                return
        raise ProtocolError(
            f"site {sender}: unexpected {kind!r} frame while engaging "
            f"site {engaged}"
        )

    def _expect_sync(self, site_id: int, kind: str) -> dict:
        message = self._recv_sync(site_id)
        got = message.get("t")
        if got != kind:
            raise ProtocolError(
                f"site {site_id}: expected {kind!r}, got {got!r}"
            )
        return message

    def _deliver_sync(self, site_id: int, message) -> None:
        """One coordinator->site message, delivered at cascade position.

        Invoked (via :class:`SiteProxy`) from inside the ``Network``'s
        synchronous delivery — possibly nested under an uplink that is
        itself nested under a deliver.  Uplinks the remote handler emits
        while applying are processed inline, recursing into the
        coordinator exactly like the simulator's re-entrant network.
        """
        frame = {"t": "deliver", "msgs": [encode_message(message)]}
        if self._stream_uplinks:
            # The wait below provides the synchronization; the send
            # itself need not block a second time on the event loop.
            self._post_fast(site_id, frame)
        else:
            self._send_sync(site_id, frame)
        while True:
            if self._done_credits[site_id] > 0:
                # A nested wait already consumed this site's frame and
                # banked the token; per-site tokens are fungible.
                self._done_credits[site_id] -= 1
                return
            reply = self._recv_sync(site_id)
            kind = reply.get("t")
            if kind == "uplink":
                self._uplink_sync(site_id, reply)
            elif kind == "deliver_done":
                return
            elif kind == "run_done" and self.relaxed:
                # The site was mid-run when the deliver was posted; its
                # completion frame precedes the deliver_done (per-site
                # FIFO).  Account it and keep waiting.
                self._note_run_done(site_id, reply)
            else:
                raise ProtocolError(
                    f"site {site_id}: unexpected {kind!r} during deliver"
                )

    def _uplink_sync(self, site_id: int, frame: dict) -> None:
        """Route one uplink through the real network, then release.

        The ack is a pure transport sync token — it never touches the
        ``Network`` ledger.  Lockstep needs it (the site blocks until
        the cascade finished, which is what makes transcripts
        byte-identical); relaxed sites stream without waiting, so the
        hub sends no ack at all and every uplink costs one frame
        instead of two.
        """
        self.network.send_to_coordinator(
            site_id, decode_message(frame["msg"])
        )
        if self._stream_uplinks:
            return  # streaming sites do not wait; no ack at all
        self._send_sync(site_id, {"t": "ack"})

    def _run_sync(self, site_id: int, chunk) -> int:
        if site_id in self._dead or self._conns[site_id] is None:
            raise SiteUnavailableError(f"site {site_id} is down")
        self._send_sync(site_id, {"t": "run", "chunk": encode_chunk(chunk)})
        while True:
            message = self._recv_sync(site_id)
            kind = message.get("t")
            if kind == "uplink":
                self._uplink_sync(site_id, message)
            elif kind == "run_done":
                self.proxies[site_id].last_space = message["space"]
                self.space.record_site(site_id, message["space"])
                return message["n"]
            else:
                raise ProtocolError(
                    f"site {site_id}: unexpected {kind!r} during run"
                )

    def _post_run(self, site_id: int, chunk, weight: int = 1) -> None:
        """Relaxed mode: post one (super-)run fire-and-forget.

        ``weight`` is the number of original runs the chunk carries —
        the unit in-flight credit is accounted in.  The weight queue is
        per-site FIFO, matching run_done arrival order.
        """
        frame = {
            "t": "run",
            "chunk": encode_chunk(chunk),
            "e": self._run_epoch,
        }
        if weight != 1:
            frame["w"] = weight
        if self._stream_uplinks:
            self._post_fast(site_id, frame)
        else:
            # Sync-uplink schemes keep the blocking post: the relaxed
            # accuracy envelope of a response-dependent protocol is
            # sensitive to dispatch pacing, so their path stays exactly
            # the pre-streaming one.
            self._send_sync(site_id, frame)
        self._outstanding[site_id] += 1
        self._outstanding_total += 1
        self._posted_weights[site_id].append(weight)
        self._inflight_weight += weight
        self.stat_frames_posted += 1
        self.stat_runs_posted += weight
        if self._inflight_weight > self.stat_max_inflight_runs:
            self.stat_max_inflight_runs = self._inflight_weight

    def _note_run_done(self, site_id: int, message: dict) -> None:
        """Account one completed run (relaxed mode).

        A frame from an earlier epoch is a leftover of a batch whose
        dispatch failed (its counters were reset with runs in flight);
        booking it here would inflate the current batch's element count
        and complete a run the current batch never posted, so it is
        dropped entirely.
        """
        if message.get("e") != self._run_epoch:
            return
        if self._outstanding[site_id] > 0:
            self._outstanding[site_id] -= 1
            self._outstanding_total -= 1
            weights = self._posted_weights[site_id]
            if weights:
                self._inflight_weight -= weights.popleft()
        self._collected_n += message["n"]
        self.proxies[site_id].last_space = message["space"]
        self.space.record_site(site_id, message["space"])

    def _service_one(self) -> None:
        """Service exactly one pending protocol event (relaxed mode).

        A deferred uplink runs first (its cascade was postponed to keep
        an earlier one atomic); otherwise the next inbound frame is
        taken from the shared inbox.  This is both the collect loop's
        body and what the windowed dispatcher calls while waiting for
        in-flight credit."""
        if self._pending_uplinks:
            sender, frame = self._pending_uplinks.pop(0)
            self._uplink_sync(sender, frame)
            return
        try:
            sender, message = self._inbox.get(timeout=self.rpc_timeout)
        except queue.Empty:
            waiting = [
                s for s, n in enumerate(self._outstanding) if n > 0
            ]
            raise SiteUnavailableError(
                f"sites {waiting} did not finish their runs within "
                f"{self.rpc_timeout}s"
            ) from None
        if message is None:
            self._dead.add(sender)
            if self._outstanding[sender] > 0:
                raise SiteUnavailableError(
                    f"site {sender} closed the connection mid-run"
                )
            return
        kind = message.get("t")
        if kind == "error":
            raise RemoteActorError(
                f"site {sender}: {message.get('error')}"
            )
        if kind == "uplink":
            self._uplink_sync(sender, message)
        elif kind == "run_done":
            self._note_run_done(sender, message)
        else:
            raise ProtocolError(
                f"site {sender}: unexpected {kind!r} frame during "
                "relaxed collection"
            )

    def _collect_outstanding(self) -> int:
        """Relaxed mode: wait out every posted run, servicing the
        protocol messages the overlap produces in arrival order.

        Each uplink's cascade runs atomically; uplinks that arrived
        while one was in progress were deferred and run first here, in
        arrival order.  The loop also drains deferred uplinks that
        arrive *after* the last run completed (a site may report, then
        finish its run; FIFO puts the report first)."""
        while self._outstanding_total > 0 or self._pending_uplinks:
            self._service_one()
        return self._collected_n

    def _count_stall(self) -> None:
        self.stat_window_stalls += 1

    def _ingest_sync(self, site_ids, items) -> int:
        runs = decompose_runs(site_ids, items)
        if self.relaxed:
            self._run_epoch += 1
            self._collected_n = 0
            # Coalesce per site within each window of original runs:
            # one frame and one vectorized apply per site per window,
            # with per-site order — the relaxed contract — untouched.
            # Sync-uplink schemes depend on timely coordinator
            # responses, and merging a site's whole batch would push
            # every response to the end of one giant apply; they keep
            # their original chunking (consecutive merges only), which
            # the ack RPC already paces.
            super_runs = coalesce_runs(
                runs,
                window=self.window,
                per_site=self._stream_uplinks,
            )
            try:
                total = dispatch_windowed(
                    super_runs,
                    self._post_run,
                    self._collect_outstanding,
                    window=self.window,
                    per_site_depth=self.per_site_depth,
                    inflight_total=lambda: self._inflight_weight,
                    inflight_site=self._outstanding.__getitem__,
                    service_one=self._service_one,
                    on_stall=self._count_stall,
                )
            except BaseException:
                # A failed overlapped batch leaves runs in flight; the
                # counters must not poison the next dispatch.
                self._outstanding = [0] * self.num_sites
                self._outstanding_total = 0
                self._pending_uplinks.clear()
                self._done_credits = [0] * self.num_sites
                self._posted_weights = [
                    deque() for _ in range(self.num_sites)
                ]
                self._inflight_weight = 0
                raise
        else:
            total = dispatch_lockstep(runs, self._run_sync)
        self.elements_processed += total
        self.space.record_coordinator(self.coordinator.space_words())
        return total

    def _snapshot_sync(self) -> dict:
        sites = []
        for site_id in range(self.num_sites):
            if site_id in self._dead or self._conns[site_id] is None:
                raise SiteUnavailableError(
                    f"cannot snapshot: site {site_id} is down"
                )
            self._send_sync(site_id, {"t": "snapshot"})
            sites.append(self._expect_sync(site_id, "state")["state"])
        encoder = StateEncoder()
        return {
            "format": "repro-cluster",
            "config": {
                "scheme": encode_value(self.scheme),
                "num_sites": self.num_sites,
                "seed": self.seed,
                "one_way": self.one_way,
                "uplink_drop_rate": self.uplink_drop_rate,
            },
            "elements_processed": self.elements_processed,
            "wal_seq": -1,  # stamped by the cluster facade
            "coordinator": encoder.encode(self.coordinator),
            "network": encoder.encode(self.network),
            "space": encoder.encode(self.space),
            "sites": sites,
        }

    def _close_sync(self) -> None:
        for site_id in range(self.num_sites):
            if self._conns[site_id] is None or site_id in self._dead:
                continue
            try:
                self._send_sync(site_id, {"t": "stop"})
                self._expect_sync(site_id, "bye")
            except NetError:
                pass

    # -- async public surface ----------------------------------------------

    async def ingest(self, site_ids, items=None) -> int:
        """Drive one ordered event batch through the cluster.

        The batch is decomposed into per-site runs exactly like
        ``Simulation.run_batched`` and dispatched in lockstep.
        """
        return await self._loop.run_in_executor(
            None, self._ingest_sync, site_ids, items
        )

    async def query(self, method: Optional[str] = None, *args, **kwargs):
        """Run a coordinator query (same resolution rules as a job)."""
        return resolve_query(self.coordinator, method)(*args, **kwargs)

    async def snapshot_state(self) -> dict:
        """Collect a full-cluster state bundle (hub + every site actor).

        Hub-side components share one codec scope (like a job snapshot);
        each site's state is encoded in its own actor, which is also why
        cross-actor RNG sharing cannot exist in this runtime.
        """
        return await self._loop.run_in_executor(None, self._snapshot_sync)

    def load_hub_state(self, state: dict) -> None:
        """Merge the hub-side half of a snapshot bundle (one scope)."""
        decoder = StateDecoder()
        decoder.merge(self.coordinator, state["coordinator"])
        decoder.merge(self.network, state["network"])
        self.space = decoder.merge(self.space, state["space"])
        self.elements_processed = state["elements_processed"]

    @property
    def comm(self) -> CommStats:
        return self.network.stats

    @property
    def dispatch_mode(self) -> str:
        """``lockstep``, ``relaxed`` (unbounded) or ``windowed``."""
        if not self.relaxed:
            return "lockstep"
        if self.window is not None or self.per_site_depth is not None:
            return "windowed"
        return "relaxed"

    def dispatch_stats(self) -> dict:
        """Dispatch-plane telemetry (plain counters, zero hot-path cost).

        ``max_inflight_runs`` is the high-water mark of in-flight
        original runs — the flat-memory witness: with a window it never
        exceeds the window.  ``runs_per_frame`` is the lifetime mean
        coalescing ratio."""
        frames = self.stat_frames_posted
        return {
            "mode": self.dispatch_mode,
            "window": self.window,
            "per_site_depth": self.per_site_depth,
            "frames_posted": frames,
            "runs_posted": self.stat_runs_posted,
            "runs_per_frame": (
                self.stat_runs_posted / frames if frames else 0.0
            ),
            "max_inflight_runs": self.stat_max_inflight_runs,
            "window_stalls": self.stat_window_stalls,
        }

    def summary(self) -> dict:
        """Flat cost metrics, shaped like ``Simulation.summary``."""
        out = self.comm.snapshot()
        out["max_site_space_words"] = self.space.max_site_words
        out["mean_site_space_words"] = self.space.mean_site_words
        out["coordinator_space_words"] = self.space.coordinator_max_words
        out["elements"] = self.elements_processed
        return out

    # -- failure injection and shutdown -----------------------------------

    async def kill_site(self, site_id: int) -> None:
        """Abruptly drop a site actor (failure injection)."""
        self._dead.add(site_id)
        conn = self._conns[site_id]
        if conn is not None:
            await conn.close()

    @property
    def dead_sites(self) -> set:
        return set(self._dead)

    async def close(self) -> None:
        if self._loop is not None:
            await self._loop.run_in_executor(None, self._close_sync)
        for site_id, conn in enumerate(self._conns):
            if conn is not None:
                await conn.close()
            self._conns[site_id] = None
        for pump in self._pumps:
            if pump is not None and not pump.done():
                pump.cancel()
