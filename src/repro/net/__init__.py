"""Distributed runtime: actors, transports, and the HTTP query gateway.

This package turns the in-process protocol stacks into a real system:

* :mod:`repro.net.frames` — length-prefixed frame codec (partial reads,
  torn-frame detection, oversized-frame rejection).
* :mod:`repro.net.wire` — message/run serialization, reusing the WAL's
  packed-int codec and the snapshot codec for exact round-trips.
* :mod:`repro.net.transport` — pluggable transports: in-process
  loopback queues and framed TCP over asyncio streams.
* :mod:`repro.net.actors` — :class:`SiteHost` (site actors; sync
  protocol core on a worker thread per connection) and
  :class:`CoordinatorHub` (the coordinator actor, hosting the real
  ``Network`` ledger and transcript tracer).
* :mod:`repro.net.cluster` — :class:`Cluster`, the synchronous facade:
  run any scheme over loopback or TCP with transcripts byte-identical
  to :class:`~repro.runtime.Simulation`, checkpoint/restore included.
* :mod:`repro.net.gateway` — the HTTP/JSON query gateway over a
  :class:`~repro.service.TrackingService` (request batching, bounded
  ingest queue with backpressure).

Quickstart::

    from repro import RandomizedCountScheme
    from repro.net import Cluster

    with Cluster(RandomizedCountScheme(0.05), num_sites=8, seed=7,
                 transport="tcp") as cluster:
        cluster.run(uniform_sites(100_000, 8, seed=7))
        print(cluster.query(), cluster.comm.total_messages)
"""

from .actors import (
    CoordinatorHub,
    NetError,
    ProtocolError,
    RemoteActorError,
    SiteHost,
    SiteUnavailableError,
    SiteWorker,
)
from .cluster import Cluster, restore_cluster
from .frames import (
    DEFAULT_MAX_FRAME,
    FrameDecoder,
    FrameError,
    FrameTooLargeError,
    TornFrameError,
    encode_frame,
)
from .gateway import Gateway
from .transport import (
    ConnectionClosedError,
    LoopbackTransport,
    TcpTransport,
)
from .wire import decode_chunk, decode_message, encode_chunk, encode_message

__all__ = [
    "Cluster",
    "CoordinatorHub",
    "ConnectionClosedError",
    "DEFAULT_MAX_FRAME",
    "FrameDecoder",
    "FrameError",
    "FrameTooLargeError",
    "Gateway",
    "LoopbackTransport",
    "NetError",
    "ProtocolError",
    "RemoteActorError",
    "SiteHost",
    "SiteUnavailableError",
    "SiteWorker",
    "TcpTransport",
    "TornFrameError",
    "decode_chunk",
    "decode_message",
    "encode_chunk",
    "encode_frame",
    "encode_message",
    "restore_cluster",
]
