"""Pluggable actor transports: in-process loopback and framed TCP.

A *transport* moves JSON control messages between actors.  Both
implementations expose the same tiny surface so the runtime is wired
identically in tests and in production:

* ``await transport.listen(address, handler)`` — serve connections;
  ``handler(conn)`` is an async callable invoked once per connection.
* ``await transport.connect(address)`` — open a client connection.

Connections speak whole messages: ``await conn.send(obj)`` /
``await conn.recv()`` (``None`` at EOF).  Per-connection ordering is
FIFO — the delivery guarantee the distributed runtime's transcript
equivalence rests on.

:class:`LoopbackTransport` routes through paired ``asyncio.Queue``s in
one process (no sockets, no serialization) — the reference wiring for
tests and the loopback side of the benchmarks.  :class:`TcpTransport`
carries the same messages as length-prefixed frames
(:mod:`repro.net.frames`) over asyncio TCP streams: JSON for control
traffic, the binary payload envelope for frames with numeric bulk (run
chunks, shipped summaries) — pass ``binary=False`` to force the legacy
all-JSON encoding (the byte-volume comparison in ``bench_net``).
Addresses are ``"host:port"`` strings (port 0 binds an ephemeral port;
the listener reports the bound address).  Per-transport byte counters
(:attr:`TcpTransport.stats`) aggregate the framed traffic of every
connection the instance created.
"""

from __future__ import annotations

import asyncio
from typing import Dict, Optional

from .frames import (
    DEFAULT_MAX_FRAME,
    FrameDecoder,
    decode_payload,
    encode_frame,
    encode_json_frame,
    encode_payload,
)

__all__ = [
    "ConnectionClosedError",
    "LoopbackTransport",
    "TcpTransport",
    "parse_address",
    "format_address",
]

_EOF = object()


class ConnectionClosedError(ConnectionError):
    """An operation hit a connection that is already closed."""


def parse_address(address: str):
    """``"host:port"`` -> ``(host, port)`` (IPv6 hosts may be bracketed)."""
    text = address.strip()
    host, sep, port_text = text.rpartition(":")
    if not sep:
        raise ValueError(f"bad address {address!r}: expected HOST:PORT")
    host = host.strip("[]") or "127.0.0.1"
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(
            f"bad address {address!r}: port {port_text!r} is not an integer"
        ) from None
    return host, port


def format_address(host: str, port: int) -> str:
    return f"[{host}]:{port}" if ":" in host else f"{host}:{port}"


class _LoopbackConnection:
    """One side of an in-process queue pair."""

    def __init__(self, rx: asyncio.Queue, tx: asyncio.Queue):
        self._rx = rx
        self._tx = tx
        self._closed = False

    async def send(self, obj) -> None:
        if self._closed:
            raise ConnectionClosedError("loopback connection is closed")
        await self._tx.put(obj)

    def send_nowait(self, obj) -> None:
        """Enqueue without awaiting (loop thread only; unbounded queue).

        The relaxed hot path posts frames fire-and-forget via
        ``loop.call_soon_threadsafe(conn.send_nowait, obj)`` — one loop
        wakeup, no coroutine, no completion future.  A send into a
        closed connection is dropped silently, mirroring how an async
        ``send`` racing a peer close surfaces: the failure is observed
        on the next ``recv`` (EOF), not at the send site.
        """
        if not self._closed:
            self._tx.put_nowait(obj)

    async def recv(self):
        if self._closed:
            return None
        obj = await self._rx.get()
        if obj is _EOF:
            self._closed = True
            return None
        return obj

    async def close(self) -> None:
        if not self._closed:
            self._closed = True
            await self._tx.put(_EOF)


class _LoopbackListener:
    def __init__(self, transport: "LoopbackTransport", address: str):
        self.address = address
        self._transport = transport
        self.tasks = set()

    async def close(self) -> None:
        self._transport._servers.pop(self.address, None)
        for task in list(self.tasks):
            task.cancel()
        for task in list(self.tasks):
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self.tasks.clear()


class LoopbackTransport:
    """In-process transport: queue pairs, FIFO, same event loop.

    One transport instance is one namespace: ``connect`` resolves the
    address against this instance's listeners only.
    """

    def __init__(self):
        self._servers: Dict[str, tuple] = {}

    async def listen(self, address: str, handler) -> _LoopbackListener:
        if address in self._servers:
            raise ValueError(f"loopback address {address!r} already bound")
        listener = _LoopbackListener(self, address)
        self._servers[address] = (handler, listener)
        return listener

    async def connect(self, address: str) -> _LoopbackConnection:
        try:
            handler, listener = self._servers[address]
        except KeyError:
            raise ConnectionClosedError(
                f"nothing listening on loopback address {address!r}"
            ) from None
        client_to_server: asyncio.Queue = asyncio.Queue()
        server_to_client: asyncio.Queue = asyncio.Queue()
        client = _LoopbackConnection(server_to_client, client_to_server)
        server = _LoopbackConnection(client_to_server, server_to_client)
        task = asyncio.ensure_future(self._serve(handler, server))
        listener.tasks.add(task)
        task.add_done_callback(listener.tasks.discard)
        return client

    @staticmethod
    async def _serve(handler, conn: _LoopbackConnection) -> None:
        try:
            await handler(conn)
        finally:
            await conn.close()


class _TcpConnection:
    """Framed messages over one asyncio TCP stream."""

    def __init__(
        self,
        reader,
        writer,
        max_frame: int = DEFAULT_MAX_FRAME,
        binary: bool = True,
        stats: Optional[dict] = None,
    ):
        self._reader = reader
        self._writer = writer
        self._decoder = FrameDecoder(max_frame)
        self._pending = []
        self._max_frame = max_frame
        self._binary = binary
        self._stats = stats if stats is not None else _fresh_stats()
        self._closed = False

    async def send(self, obj) -> None:
        if self._closed:
            raise ConnectionClosedError("TCP connection is closed")
        try:
            if self._binary:
                frame = encode_frame(encode_payload(obj), self._max_frame)
            else:
                frame = encode_json_frame(obj, self._max_frame)
            self._stats["bytes_sent"] += len(frame)
            self._stats["frames_sent"] += 1
            self._writer.write(frame)
            await self._writer.drain()
        except (ConnectionError, OSError) as exc:
            self._closed = True
            raise ConnectionClosedError(str(exc)) from exc

    def encode_frame_bytes(self, obj) -> bytes:
        """Serialize ``obj`` to its on-wire frame (thread-safe, no I/O).

        The relaxed hot path encodes on the calling thread and ships the
        bytes to the loop thread via :meth:`write_frame_nowait`, so the
        loop callback does nothing but a buffered ``write``.
        """
        if self._binary:
            return encode_frame(encode_payload(obj), self._max_frame)
        return encode_json_frame(obj, self._max_frame)

    def write_frame_nowait(self, frame: bytes) -> None:
        """Write pre-encoded frame bytes without draining (loop thread).

        Skipping ``drain`` removes the completion round-trip that
        dominates per-frame cost; the OS socket buffer absorbs bursts
        and the dispatch window bounds how much can be in flight.
        Failures mark the connection closed and surface on the next
        ``recv``, exactly like a peer death mid-stream.
        """
        if self._closed:
            return
        try:
            self._stats["bytes_sent"] += len(frame)
            self._stats["frames_sent"] += 1
            self._writer.write(frame)
        except (ConnectionError, OSError):
            self._closed = True

    async def recv(self):
        while not self._pending:
            if self._closed:
                return None
            try:
                data = await self._reader.read(65536)
            except (ConnectionError, OSError):
                self._closed = True
                return None
            if not data:
                self._closed = True
                # A mid-frame EOF is a torn frame; surface it loudly
                # rather than silently dropping the partial message.
                self._decoder.finish()
                return None
            self._stats["bytes_received"] += len(data)
            self._pending.extend(self._decoder.feed(data))
        payload = self._pending.pop(0)
        self._stats["frames_received"] += 1
        # decode_payload auto-detects binary vs JSON, so either peer
        # encoding is accepted regardless of this side's send mode.
        return decode_payload(payload)

    async def close(self) -> None:
        self._closed = True
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass


class _TcpListener:
    def __init__(self, server: asyncio.base_events.Server, address: str):
        self._server = server
        self.address = address

    async def close(self) -> None:
        self._server.close()
        await self._server.wait_closed()


def _fresh_stats() -> dict:
    return {
        "bytes_sent": 0,
        "bytes_received": 0,
        "frames_sent": 0,
        "frames_received": 0,
    }


class TcpTransport:
    """Length-prefixed-frame TCP transport (asyncio streams).

    ``binary=True`` (default) sends the binary payload envelope —
    numeric bulk as raw typed blobs; ``binary=False`` forces the legacy
    all-JSON frames.  :attr:`stats` aggregates framed byte/frame counts
    over every connection this transport instance created (both sides,
    for listeners it spawned).
    """

    def __init__(self, max_frame: int = DEFAULT_MAX_FRAME,
                 binary: bool = True):
        self.max_frame = max_frame
        self.binary = binary
        self.stats = _fresh_stats()

    async def listen(self, address: str, handler) -> _TcpListener:
        host, port = parse_address(address)

        async def _serve(reader, writer):
            conn = _TcpConnection(
                reader, writer, self.max_frame, self.binary, self.stats
            )
            try:
                await handler(conn)
            finally:
                await conn.close()

        server = await asyncio.start_server(_serve, host, port)
        bound = server.sockets[0].getsockname()
        return _TcpListener(server, format_address(bound[0], bound[1]))

    async def connect(self, address: str) -> _TcpConnection:
        host, port = parse_address(address)
        try:
            reader, writer = await asyncio.open_connection(host, port)
        except (ConnectionError, OSError) as exc:
            raise ConnectionClosedError(
                f"cannot connect to {address}: {exc}"
            ) from exc
        return _TcpConnection(
            reader, writer, self.max_frame, self.binary, self.stats
        )
