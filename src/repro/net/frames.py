"""Length-prefixed frame codec for the distributed runtime's wire.

Every frame is a 4-byte big-endian payload length followed by the
payload bytes.  The codec is transport-agnostic byte plumbing:
:func:`encode_frame` produces one frame, :class:`FrameDecoder` consumes
an arbitrary chunking of the byte stream (TCP gives no message
boundaries) and yields complete payloads.

Failure modes are explicit:

* a frame whose declared length exceeds ``max_frame`` raises
  :class:`FrameTooLargeError` *before* buffering the body — a corrupt or
  hostile peer cannot make the decoder allocate unbounded memory;
* a stream that ends mid-frame is a *torn frame*; callers detect it by
  checking :attr:`FrameDecoder.pending_bytes` (or calling
  :meth:`FrameDecoder.finish`) at EOF.

On top of raw frames, :func:`encode_json_frame` / :func:`decode_json`
carry the runtime's JSON control messages (compact separators, UTF-8).

**Binary payloads.**  Control frames stay JSON, but the bulky payloads —
run chunks and shipped summaries — are mostly long homogeneous number
lists, which JSON (and the WAL's base64 packed-int codec) render at
2-4x their raw size.  :func:`encode_payload` walks an object, lifts
every long all-int / all-float list out into a raw little-endian typed
blob, and emits a *binary envelope*::

    0xF5 | u32 header_len | header JSON | u32 n_blobs | (u32 len | bytes)*

where the header is the original object with each lifted list replaced
by a ``{"__wblob__": [index, dtype]}`` placeholder.  Objects with no
packable lists encode as plain JSON (UTF-8 never begins with ``0xF5``,
so :func:`decode_payload` distinguishes the two without out-of-band
signalling, and a binary-capable peer interoperates with a JSON one).
Packing is exact: ints ride as ``i4``/``i8`` (bigger ints stay JSON),
floats as IEEE ``f8`` — every value round-trips bit-identically, so
transcript equivalence is untouched.  Columnar super-run chunks (typed
numpy arrays from the dispatch coalescer) take a fast path: the same
blob layout, produced by one ``tobytes`` instead of a per-element
``struct.pack`` walk, and decoded to the same plain Python scalars.
"""

from __future__ import annotations

import json
import struct
from typing import List, Optional, Tuple

try:  # optional accelerator: columnar chunks arrive as typed arrays
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

__all__ = [
    "DEFAULT_MAX_FRAME",
    "MIN_PACK",
    "FrameError",
    "FrameTooLargeError",
    "TornFrameError",
    "FrameDecoder",
    "encode_frame",
    "encode_json_frame",
    "decode_json",
    "encode_payload",
    "decode_payload",
]

_HEADER = struct.Struct(">I")
HEADER_BYTES = _HEADER.size

#: ceiling on one frame's payload; a run of a few million packed ints
#: fits comfortably, a corrupted length prefix does not
DEFAULT_MAX_FRAME = 64 * 1024 * 1024


class FrameError(RuntimeError):
    """Base class for framing failures."""


class FrameTooLargeError(FrameError):
    """A frame's declared payload length exceeds the configured maximum."""


class TornFrameError(FrameError):
    """The byte stream ended in the middle of a frame."""


def encode_frame(payload: bytes, max_frame: int = DEFAULT_MAX_FRAME) -> bytes:
    """Wrap ``payload`` in a length prefix; rejects oversized payloads."""
    if len(payload) > max_frame:
        raise FrameTooLargeError(
            f"refusing to send a {len(payload)}-byte frame "
            f"(max {max_frame})"
        )
    return _HEADER.pack(len(payload)) + payload


class FrameDecoder:
    """Incremental frame reassembly over an arbitrarily-chunked stream.

    Feed it whatever the transport produced — single bytes, half a
    header, three frames at once — and it returns the payloads that
    completed::

        decoder = FrameDecoder()
        for chunk in stream:
            for payload in decoder.feed(chunk):
                handle(payload)
        decoder.finish()   # raises TornFrameError on a mid-frame EOF
    """

    def __init__(self, max_frame: int = DEFAULT_MAX_FRAME):
        self.max_frame = max_frame
        self._buffer = bytearray()
        self._need: Optional[int] = None  # body length once header parsed

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered that do not yet form a complete frame."""
        return len(self._buffer)

    def feed(self, data: bytes) -> List[bytes]:
        """Consume one chunk; returns every payload it completed."""
        self._buffer.extend(data)
        out: List[bytes] = []
        while True:
            if self._need is None:
                if len(self._buffer) < HEADER_BYTES:
                    break
                (self._need,) = _HEADER.unpack_from(self._buffer)
                if self._need > self.max_frame:
                    raise FrameTooLargeError(
                        f"incoming frame declares {self._need} bytes "
                        f"(max {self.max_frame})"
                    )
                del self._buffer[:HEADER_BYTES]
            if len(self._buffer) < self._need:
                break
            body = bytes(self._buffer[: self._need])
            del self._buffer[: self._need]
            self._need = None
            out.append(body)
        return out

    def finish(self) -> None:
        """Assert the stream ended on a frame boundary."""
        if self._buffer or self._need is not None:
            pending = len(self._buffer) + (
                HEADER_BYTES if self._need is not None else 0
            )
            raise TornFrameError(
                f"stream ended mid-frame with {pending} buffered byte(s)"
            )


def encode_json_frame(obj, max_frame: int = DEFAULT_MAX_FRAME) -> bytes:
    """One JSON control message as a complete frame."""
    payload = json.dumps(obj, separators=(",", ":")).encode()
    return encode_frame(payload, max_frame)


def decode_json(payload: bytes):
    """Parse one frame payload as a JSON control message."""
    try:
        return json.loads(payload)
    except ValueError as exc:
        raise FrameError(f"malformed JSON frame: {exc}") from exc


# -- binary payload envelope -----------------------------------------------

_BINARY_MAGIC = 0xF5  # never a valid first byte of UTF-8 JSON
_U32 = struct.Struct(">I")

#: shortest list worth lifting into a typed blob; below this the JSON
#: rendering is competitive and the placeholder overhead is not
MIN_PACK = 16

_BLOB_KEY = "__wblob__"
_ESC_KEY = "__wesc__"

_I8_MIN, _I8_MAX = -(1 << 63), (1 << 63) - 1

#: dtype -> (struct format template, item size in bytes)
_PACKERS = {
    "u1": ("<%dB", 1),
    "i2": ("<%dh", 2),
    "i4": ("<%di", 4),
    "i8": ("<%dq", 8),
    "f8": ("<%dd", 8),
}

#: per-blob envelope overhead (placeholder JSON + length prefix), used
#: by the size gate below
_BLOB_OVERHEAD = 28


def _classify(values) -> Optional[str]:
    """The blob dtype for a list, or None when it must stay JSON.

    Ints pick the smallest fixed width that holds the whole list;
    bigger-than-i8 ints and mixed-type lists stay JSON.
    """
    first = type(values[0])
    if first is int:
        lo = hi = values[0]
        for v in values:
            if type(v) is not int:
                return None
            if v < lo:
                lo = v
            elif v > hi:
                hi = v
        if 0 <= lo and hi <= 0xFF:
            return "u1"
        if -0x8000 <= lo and hi <= 0x7FFF:
            return "i2"
        if -(1 << 31) <= lo and hi <= (1 << 31) - 1:
            return "i4"
        if _I8_MIN <= lo and hi <= _I8_MAX:
            return "i8"
        return None  # bigints stay JSON
    if first is float:
        for v in values:
            if type(v) is not float:
                return None
        return "f8"
    return None


def _json_length(values) -> int:
    """Byte length the list costs inside a JSON rendering.

    ``repr`` of ints and (finite) floats matches their JSON rendering;
    the +1 per element covers the comma/bracket.  Exactness does not
    matter — this only gates whether a raw blob is the smaller layout.
    """
    return sum(len(repr(v)) + 1 for v in values) + 1


#: numpy target dtype for each blob dtype tag
_ND_TARGETS = {"u1": "u1", "i2": "<i2", "i4": "<i4", "i8": "<i8", "f8": "<f8"}


def _pack_ndarray(arr, blobs: List[bytes]) -> Optional[dict]:
    """Blob a 1-D numeric numpy array via ``tobytes`` — no element walk.

    The blob layout is identical to the list path (smallest int width,
    little-endian), so the decoder needs no new cases and values
    round-trip to the same plain Python scalars.  Returns None for
    shapes/dtypes the envelope cannot carry exactly.
    """
    kind = arr.dtype.kind
    if arr.ndim != 1 or arr.size == 0 or kind not in "iuf":
        return None
    if kind == "f":
        if arr.dtype.itemsize > 8:
            return None  # long doubles would lose precision as f8
        dtype = "f8"
    else:
        lo, hi = int(arr.min()), int(arr.max())
        if hi > _I8_MAX or lo < _I8_MIN:
            return None  # u8 values beyond i8 stay JSON (as bigints do)
        if 0 <= lo and hi <= 0xFF:
            dtype = "u1"
        elif -0x8000 <= lo and hi <= 0x7FFF:
            dtype = "i2"
        elif -(1 << 31) <= lo and hi <= (1 << 31) - 1:
            dtype = "i4"
        else:
            dtype = "i8"
    data = arr.astype(_ND_TARGETS[dtype], copy=False)
    index = len(blobs)
    blobs.append(data.tobytes())
    return {_BLOB_KEY: [index, dtype]}


def _pack_walk(obj, blobs: List[bytes]):
    if _np is not None and isinstance(obj, _np.ndarray):
        packed = _pack_ndarray(obj, blobs)
        if packed is not None:
            return packed
        return _pack_walk(obj.tolist(), blobs)
    if isinstance(obj, (list, tuple)):
        if len(obj) >= MIN_PACK:
            dtype = _classify(obj)
            if dtype is not None:
                template, item_size = _PACKERS[dtype]
                blob_size = item_size * len(obj) + _BLOB_OVERHEAD
                # Size gate: small numbers (single-digit ints, "1.0"
                # floats) render tighter as JSON than as fixed-width
                # blobs; only pack when raw bytes actually win.
                if blob_size < _json_length(obj):
                    index = len(blobs)
                    blobs.append(struct.pack(template % len(obj), *obj))
                    return {_BLOB_KEY: [index, dtype]}
        return [_pack_walk(v, blobs) for v in obj]
    if isinstance(obj, dict):
        packed = {k: _pack_walk(v, blobs) for k, v in obj.items()}
        if _BLOB_KEY in obj or _ESC_KEY in obj:
            # A literal payload key collides with the envelope's markers;
            # wrap so the decoder treats this dict's keys as data.
            return {_ESC_KEY: packed}
        return packed
    return obj


def _unpack_walk(obj, blobs: List[bytes]):
    if isinstance(obj, list):
        return [_unpack_walk(v, blobs) for v in obj]
    if isinstance(obj, dict):
        keys = obj.keys()
        if len(obj) == 1 and _BLOB_KEY in keys:
            index, dtype = obj[_BLOB_KEY]
            blob = blobs[index]
            template, item_size = _PACKERS[dtype]
            count, rem = divmod(len(blob), item_size)
            if rem:
                raise FrameError(
                    f"blob {index} is not a whole number of {dtype} items"
                )
            return list(struct.unpack(template % count, blob))
        if len(obj) == 1 and _ESC_KEY in keys:
            return {
                k: _unpack_walk(v, blobs) for k, v in obj[_ESC_KEY].items()
            }
        return {k: _unpack_walk(v, blobs) for k, v in obj.items()}
    return obj


def encode_payload(obj) -> bytes:
    """One wire object as a frame payload, numeric bulk in raw blobs.

    Falls back to plain JSON when nothing is packable, so small control
    messages pay zero envelope overhead.
    """
    blobs: List[bytes] = []
    header_obj = _pack_walk(obj, blobs)
    if not blobs:
        try:
            return json.dumps(obj, separators=(",", ":")).encode()
        except TypeError:
            # Non-JSON leaves (e.g. an array the blob layout can't carry
            # exactly) were normalized into header_obj by the walk; ship
            # the envelope with zero blobs so the decoder unwraps it.
            pass
    header = json.dumps(header_obj, separators=(",", ":")).encode()
    parts = [bytes([_BINARY_MAGIC]), _U32.pack(len(header)), header,
             _U32.pack(len(blobs))]
    for blob in blobs:
        parts.append(_U32.pack(len(blob)))
        parts.append(blob)
    return b"".join(parts)


def _read_u32(payload: bytes, offset: int) -> Tuple[int, int]:
    if offset + 4 > len(payload):
        raise FrameError("truncated binary payload")
    return _U32.unpack_from(payload, offset)[0], offset + 4


def decode_payload(payload: bytes):
    """Inverse of :func:`encode_payload`; also accepts plain JSON."""
    if not payload or payload[0] != _BINARY_MAGIC:
        return decode_json(payload)
    header_len, offset = _read_u32(payload, 1)
    if offset + header_len > len(payload):
        raise FrameError("binary payload header overruns the frame")
    header = decode_json(payload[offset:offset + header_len])
    offset += header_len
    n_blobs, offset = _read_u32(payload, offset)
    blobs: List[bytes] = []
    for _ in range(n_blobs):
        blob_len, offset = _read_u32(payload, offset)
        if offset + blob_len > len(payload):
            raise FrameError("binary payload blob overruns the frame")
        blobs.append(payload[offset:offset + blob_len])
        offset += blob_len
    if offset != len(payload):
        raise FrameError(
            f"{len(payload) - offset} trailing byte(s) after the last blob"
        )
    return _unpack_walk(header, blobs)
