"""Length-prefixed frame codec for the distributed runtime's wire.

Every frame is a 4-byte big-endian payload length followed by the
payload bytes.  The codec is transport-agnostic byte plumbing:
:func:`encode_frame` produces one frame, :class:`FrameDecoder` consumes
an arbitrary chunking of the byte stream (TCP gives no message
boundaries) and yields complete payloads.

Failure modes are explicit:

* a frame whose declared length exceeds ``max_frame`` raises
  :class:`FrameTooLargeError` *before* buffering the body — a corrupt or
  hostile peer cannot make the decoder allocate unbounded memory;
* a stream that ends mid-frame is a *torn frame*; callers detect it by
  checking :attr:`FrameDecoder.pending_bytes` (or calling
  :meth:`FrameDecoder.finish`) at EOF.

On top of raw frames, :func:`encode_json_frame` / :func:`decode_json`
carry the runtime's JSON control messages (compact separators, UTF-8).
"""

from __future__ import annotations

import json
import struct
from typing import List, Optional

__all__ = [
    "DEFAULT_MAX_FRAME",
    "FrameError",
    "FrameTooLargeError",
    "TornFrameError",
    "FrameDecoder",
    "encode_frame",
    "encode_json_frame",
    "decode_json",
]

_HEADER = struct.Struct(">I")
HEADER_BYTES = _HEADER.size

#: ceiling on one frame's payload; a run of a few million packed ints
#: fits comfortably, a corrupted length prefix does not
DEFAULT_MAX_FRAME = 64 * 1024 * 1024


class FrameError(RuntimeError):
    """Base class for framing failures."""


class FrameTooLargeError(FrameError):
    """A frame's declared payload length exceeds the configured maximum."""


class TornFrameError(FrameError):
    """The byte stream ended in the middle of a frame."""


def encode_frame(payload: bytes, max_frame: int = DEFAULT_MAX_FRAME) -> bytes:
    """Wrap ``payload`` in a length prefix; rejects oversized payloads."""
    if len(payload) > max_frame:
        raise FrameTooLargeError(
            f"refusing to send a {len(payload)}-byte frame "
            f"(max {max_frame})"
        )
    return _HEADER.pack(len(payload)) + payload


class FrameDecoder:
    """Incremental frame reassembly over an arbitrarily-chunked stream.

    Feed it whatever the transport produced — single bytes, half a
    header, three frames at once — and it returns the payloads that
    completed::

        decoder = FrameDecoder()
        for chunk in stream:
            for payload in decoder.feed(chunk):
                handle(payload)
        decoder.finish()   # raises TornFrameError on a mid-frame EOF
    """

    def __init__(self, max_frame: int = DEFAULT_MAX_FRAME):
        self.max_frame = max_frame
        self._buffer = bytearray()
        self._need: Optional[int] = None  # body length once header parsed

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered that do not yet form a complete frame."""
        return len(self._buffer)

    def feed(self, data: bytes) -> List[bytes]:
        """Consume one chunk; returns every payload it completed."""
        self._buffer.extend(data)
        out: List[bytes] = []
        while True:
            if self._need is None:
                if len(self._buffer) < HEADER_BYTES:
                    break
                (self._need,) = _HEADER.unpack_from(self._buffer)
                if self._need > self.max_frame:
                    raise FrameTooLargeError(
                        f"incoming frame declares {self._need} bytes "
                        f"(max {self.max_frame})"
                    )
                del self._buffer[:HEADER_BYTES]
            if len(self._buffer) < self._need:
                break
            body = bytes(self._buffer[: self._need])
            del self._buffer[: self._need]
            self._need = None
            out.append(body)
        return out

    def finish(self) -> None:
        """Assert the stream ended on a frame boundary."""
        if self._buffer or self._need is not None:
            pending = len(self._buffer) + (
                HEADER_BYTES if self._need is not None else 0
            )
            raise TornFrameError(
                f"stream ended mid-frame with {pending} buffered byte(s)"
            )


def encode_json_frame(obj, max_frame: int = DEFAULT_MAX_FRAME) -> bytes:
    """One JSON control message as a complete frame."""
    payload = json.dumps(obj, separators=(",", ":")).encode()
    return encode_frame(payload, max_frame)


def decode_json(payload: bytes):
    """Parse one frame payload as a JSON control message."""
    try:
        return json.loads(payload)
    except ValueError as exc:
        raise FrameError(f"malformed JSON frame: {exc}") from exc
