"""HTTP/JSON query gateway over a multi-tenant tracking service.

A small asyncio HTTP/1.1 server (stdlib only — hand-rolled request
parsing over ``asyncio.start_server``) exposing the
:class:`~repro.service.TrackingService` surface:

====== ========================== ========================================
GET    /healthz                    liveness + ingest-queue gauges
GET    /v1/status                  full service status (pods-style)
GET    /v1/jobs                    registered jobs, compact
POST   /v1/jobs                    register: ``{"name", "spec", ...}``
DELETE /v1/jobs/<name>             unregister
POST   /v1/ingest                  ``{"site_ids": [...], "items": [...]}``
POST   /v1/query                   ``{"job", "method", "args"}``
GET    /v1/query/<job>             ``?method=...&arg=...`` (repeatable)
====== ========================== ========================================

Ingestion goes through the :class:`~repro.service.AsyncBatchIngestor`:
requests are coalesced into engine batches and admission is bounded —
when the queue is full the handler *waits* (the client sees latency,
never a drop), and a 200 response means the events have been applied
(post-WAL when the service is durable).

Queries and mutations take the ingestor's service lock on an executor
thread, so readers always see a batch boundary, and the event loop is
never blocked by protocol work.
"""

from __future__ import annotations

import asyncio
import hmac
import json
import math
import time
from typing import Optional
from urllib.parse import parse_qsl, urlsplit

from ..service import ServiceError, TrackingService
from ..service.async_ingest import AsyncBatchIngestor
from ..service.errors import DuplicateJobError, UnknownJobError
from ..service.jobspec import parse_job_spec, parse_query_literal

__all__ = ["Gateway", "GatewayThread", "TokenBucket", "jsonable"]

_MAX_BODY = 64 * 1024 * 1024
_MAX_HEADER_LINE = 16 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    401: "Unauthorized",
    403: "Forbidden",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
}


class TokenBucket:
    """Event-rate limiter for ingest admission (quota enforcement).

    Classic token bucket: ``rate`` tokens (events) per second refill up
    to ``burst``.  :meth:`try_admit` is non-blocking — it either debits
    the request or returns the seconds until enough tokens exist, which
    the gateway surfaces as ``Retry-After`` on a 429.  A request larger
    than the whole burst is admitted whenever the bucket is full (the
    balance goes negative, charging the overdraft to later requests), so
    oversized batches degrade to serial instead of being unserveable.
    """

    def __init__(self, rate: float, burst: float, clock=time.monotonic):
        if rate <= 0 or burst <= 0:
            raise ValueError("rate and burst must be positive")
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self._clock = clock
        self._last = clock()

    def try_admit(self, n: int) -> float:
        """Admit ``n`` events now (return 0.0) or return the wait, in
        seconds, after which a retry would succeed."""
        now = self._clock()
        self.tokens = min(
            self.burst, self.tokens + (now - self._last) * self.rate
        )
        self._last = now
        need = min(float(n), self.burst)
        if self.tokens >= need:
            self.tokens -= n
            return 0.0
        return (need - self.tokens) / self.rate


class _HttpError(Exception):
    def __init__(self, status: int, message: str, headers: Optional[dict] = None):
        super().__init__(message)
        self.status = status
        self.message = message
        self.headers = headers


def jsonable(value):
    """Make a query result JSON-renderable without losing structure.

    Tuples and sets become lists; dict keys that are not strings are
    stringified via ``json``-style rendering (so a tuple key shows as
    ``"[tenant, item]"`` rather than crashing the encoder).
    """
    if isinstance(value, dict):
        return {_key(k): jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonable(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted((jsonable(v) for v in value), key=repr)
    return value


def _key(key) -> str:
    if isinstance(key, str):
        return key
    try:
        return json.dumps(jsonable(key), separators=(",", ":"))
    except (TypeError, ValueError):
        return repr(key)


class Gateway:
    """The asyncio HTTP server; owns an ingest queue, not the service.

    Parameters
    ----------
    service:
        The :class:`TrackingService` to expose (caller keeps ownership —
        and responsibility for ``close()``).
    host / port:
        Bind address; port 0 picks an ephemeral port (see :attr:`port`).
    capacity_events / max_batch_events:
        Ingest-queue bound and coalescing ceiling
        (:class:`AsyncBatchIngestor`).
    default_eps:
        Error target used when a registered job spec omits ``:EPS``.
    max_ingest_rate / ingest_burst:
        Ingest quota: admit at most ``max_ingest_rate`` events/second
        (token bucket of ``ingest_burst`` events, default one queue
        capacity).  Requests over quota get **429** with ``Retry-After``
        instead of queueing.  ``None`` (default) disables the limiter.
        Space budgets are enforced independently: while any job exceeds
        its registered ``space_budget_words``, further ingests get
        **413** until the operator widens the budget or drops the job.
    api_keys:
        Per-tenant authentication: a mapping of API key -> tenant
        label.  When set, every ``/v1`` request must carry
        ``Authorization: Bearer <key>`` — a missing/malformed header is
        **401**, an unknown key **403** (``/healthz`` stays open for
        probes).  The ingest token buckets are then scoped **per key**
        (each tenant gets its own ``max_ingest_rate``/``ingest_burst``
        budget) instead of one bucket per gateway.
    """

    def __init__(
        self,
        service: TrackingService,
        host: str = "127.0.0.1",
        port: int = 0,
        capacity_events: int = 1 << 16,
        max_batch_events: int = 8192,
        default_eps: float = 0.02,
        max_ingest_rate: Optional[float] = None,
        ingest_burst: Optional[int] = None,
        api_keys: Optional[dict] = None,
    ):
        self.service = service
        self.host = host
        self._requested_port = port
        self.default_eps = default_eps
        self.ingestor = AsyncBatchIngestor(
            service,
            capacity_events=capacity_events,
            max_batch_events=max_batch_events,
        )
        if api_keys is not None:
            if not isinstance(api_keys, dict) or not api_keys or not all(
                isinstance(k, str) and k and isinstance(v, str)
                for k, v in api_keys.items()
            ):
                raise ValueError(
                    "api_keys must be a non-empty mapping of key -> tenant"
                )
        self.api_keys = dict(api_keys) if api_keys else None
        self._rate = max_ingest_rate
        self._burst = ingest_burst or capacity_events
        self.rate_limiter: Optional[TokenBucket] = None
        if max_ingest_rate is not None and self.api_keys is None:
            self.rate_limiter = TokenBucket(max_ingest_rate, self._burst)
        #: per-key token buckets (lazily created; auth mode only)
        self.key_buckets: dict = {}
        self.rejected_429 = 0
        self.rejected_413 = 0
        self.rejected_401 = 0
        self.rejected_403 = 0
        self._server: Optional[asyncio.base_events.Server] = None

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> "Gateway":
        await self.ingestor.start()
        self._server = await asyncio.start_server(
            self._handle, self.host, self._requested_port
        )
        return self

    @property
    def port(self) -> int:
        if self._server is None:
            return self._requested_port
        return self._server.sockets[0].getsockname()[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.ingestor.close()

    # -- HTTP plumbing -----------------------------------------------------

    async def _handle(self, reader, writer) -> None:
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except _HttpError as exc:
                    # Parse-level failures (malformed request line, huge
                    # header/body) still deserve their coded response;
                    # the stream position is unknown afterwards, so the
                    # connection closes.
                    await self._respond(
                        writer, exc.status, {"error": exc.message}, True
                    )
                    break
                if request is None:
                    break
                method, path, query, headers, body = request
                extra_headers = None
                try:
                    key = self._authenticate(path, headers)
                    status, payload = await self._route(
                        method, path, query, body, key
                    )
                except _HttpError as exc:
                    status, payload = exc.status, {"error": exc.message}
                    extra_headers = exc.headers
                except (UnknownJobError, AttributeError) as exc:
                    status, payload = 404, {"error": str(exc)}
                except DuplicateJobError as exc:
                    status, payload = 409, {"error": str(exc)}
                except (ValueError, TypeError, ServiceError) as exc:
                    status, payload = 400, {"error": str(exc)}
                except Exception as exc:  # keep serving other clients
                    status, payload = 500, {
                        "error": f"{type(exc).__name__}: {exc}"
                    }
                close = headers.get("connection", "").lower() == "close"
                await self._respond(
                    writer, status, payload, close, extra_headers
                )
                if close:
                    break
        except (
            ConnectionError,
            asyncio.IncompleteReadError,
            asyncio.LimitOverrunError,
            OSError,
        ):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(self, reader):
        line = await reader.readline()
        if not line:
            return None
        parts = line.decode("latin-1").strip().split()
        if len(parts) != 3:
            raise _HttpError(400, "malformed request line")
        method, target, _version = parts
        headers = {}
        while True:
            header = await reader.readline()
            if len(header) > _MAX_HEADER_LINE:
                raise _HttpError(400, "header line too long")
            if header in (b"\r\n", b"\n", b""):
                break
            name, _, value = header.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", 0) or 0)
        except ValueError:
            raise _HttpError(400, "malformed Content-Length header") from None
        if length > _MAX_BODY:
            raise _HttpError(413, f"body exceeds {_MAX_BODY} bytes")
        body = await reader.readexactly(length) if length else b""
        split = urlsplit(target)
        # query stays a pair list: repeatable keys (``arg``) must survive
        return method.upper(), split.path, parse_qsl(split.query), headers, body

    async def _respond(
        self, writer, status, payload, close, headers: Optional[dict] = None
    ) -> None:
        body = json.dumps(payload, separators=(",", ":")).encode()
        reason = _REASONS.get(status, "Unknown")
        connection = "close" if close else "keep-alive"
        extra = "".join(
            f"{name}: {value}\r\n" for name, value in (headers or {}).items()
        )
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"{extra}"
            f"Connection: {connection}\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + body)
        await writer.drain()

    # -- auth --------------------------------------------------------------

    def _authenticate(self, path: str, headers: dict) -> Optional[str]:
        """Resolve the request's API key (None when auth is off).

        ``/healthz`` stays open so liveness probes and dashboards work
        without credentials; everything else requires a valid
        ``Authorization: Bearer <key>`` when ``api_keys`` is set.
        """
        if self.api_keys is None or path == "/healthz":
            return None
        header = headers.get("authorization", "")
        scheme, _, token = header.partition(" ")
        token = token.strip()
        if not header or scheme.lower() != "bearer" or not token:
            self.rejected_401 += 1
            raise _HttpError(
                401,
                "missing or malformed Authorization header "
                "(expected: Bearer <api-key>)",
                headers={"WWW-Authenticate": "Bearer"},
            )
        # Constant-time scan of the (small, bounded) key set: no early
        # exit and no short-circuiting equality, so the 403 path's
        # timing does not leak how much of a candidate key matched.
        matched = None
        token_bytes = token.encode()
        for known in self.api_keys:
            if hmac.compare_digest(token_bytes, known.encode()):
                matched = known
        if matched is None:
            self.rejected_403 += 1
            raise _HttpError(403, "unknown API key")
        return matched

    def _bucket_for(self, key: Optional[str]) -> Optional[TokenBucket]:
        """The token bucket charging this request's ingest quota.

        Without auth there is one gateway-wide bucket; with auth each
        key gets its own (created on first use), so one tenant's burst
        cannot starve another's.
        """
        if self._rate is None:
            return None
        if self.api_keys is None or key is None:
            return self.rate_limiter
        bucket = self.key_buckets.get(key)
        if bucket is None:
            bucket = self.key_buckets[key] = TokenBucket(
                self._rate, self._burst
            )
        return bucket

    # -- routing -----------------------------------------------------------

    async def _route(self, method, path, query, body, key=None):
        segments = [s for s in path.split("/") if s]
        if path == "/healthz" and method == "GET":
            return 200, {
                "ok": True,
                "elements": self.service.elements_processed,
                "jobs": sorted(self.service.jobs),
                "queue": dict(
                    self.ingestor.stats,
                    queued_events=self.ingestor.queued_events,
                    capacity_events=self.ingestor.capacity_events,
                ),
                "quota": {
                    "max_ingest_rate": self._rate,
                    "rejected_429": self.rejected_429,
                    "rejected_413": self.rejected_413,
                },
                "auth": {
                    "enabled": self.api_keys is not None,
                    "keys": (
                        None if self.api_keys is None else len(self.api_keys)
                    ),
                    "rejected_401": self.rejected_401,
                    "rejected_403": self.rejected_403,
                },
            }
        if segments[:1] != ["v1"]:
            raise _HttpError(404, f"no route {path!r}")
        rest = segments[1:]
        if rest == ["status"] and method == "GET":
            return 200, jsonable(await self._locked(self.service.status))
        if rest == ["jobs"]:
            if method == "GET":
                return 200, {
                    "jobs": {
                        name: {
                            "scheme": job.scheme.name,
                            "elements": job.elements_processed,
                        }
                        for name, job in self.service.jobs.items()
                    }
                }
            if method == "POST":
                return await self._register(self._json_body(body))
            raise _HttpError(405, f"{method} not allowed on /v1/jobs")
        if len(rest) == 2 and rest[0] == "jobs" and method == "DELETE":
            await self._locked(self.service.unregister, rest[1])
            return 200, {"unregistered": rest[1]}
        if rest == ["ingest"] and method == "POST":
            return await self._ingest(self._json_body(body), key)
        if rest == ["query"] and method == "POST":
            payload = self._json_body(body)
            return await self._query(
                payload.get("job"),
                payload.get("method"),
                payload.get("args") or [],
            )
        if len(rest) == 2 and rest[0] == "query" and method == "GET":
            params = dict(query)
            args = [
                parse_query_literal(value) for key, value in query if key == "arg"
            ]
            return await self._query(rest[1], params.get("method"), args)
        raise _HttpError(404, f"no route {method} {path!r}")

    # -- handlers ----------------------------------------------------------

    @staticmethod
    def _json_body(body: bytes) -> dict:
        if not body:
            raise _HttpError(400, "expected a JSON body")
        try:
            payload = json.loads(body)
        except ValueError as exc:
            raise _HttpError(400, f"malformed JSON body: {exc}") from None
        if not isinstance(payload, dict):
            raise _HttpError(400, "JSON body must be an object")
        return payload

    async def _locked(self, fn, *args, **kwargs):
        """Run a service operation under the ingest lock, off-loop."""
        loop = asyncio.get_running_loop()

        def call():
            with self.ingestor.lock:
                return fn(*args, **kwargs)

        return await loop.run_in_executor(None, call)

    async def _register(self, payload):
        name = payload.get("name")
        spec = payload.get("spec")
        if not name or not isinstance(name, str):
            raise _HttpError(400, "register needs a job 'name'")
        if not spec or not isinstance(spec, str):
            raise _HttpError(
                400, "register needs a 'spec' like 'count/randomized:0.01'"
            )
        _, problem, scheme = parse_job_spec(
            f"{name}={spec}", payload.get("eps", self.default_eps)
        )
        await self._locked(
            self.service.register,
            name,
            scheme,
            seed=payload.get("seed"),
            space_budget_words=payload.get("space_budget_words"),
        )
        return 200, {
            "registered": name,
            "problem": problem,
            "scheme": scheme.name,
        }

    async def _ingest(self, payload, key=None):
        site_ids = payload.get("site_ids")
        if not isinstance(site_ids, list) or not site_ids:
            raise _HttpError(400, "ingest needs a non-empty 'site_ids' list")
        items = payload.get("items")
        if items is not None and (
            not isinstance(items, list) or len(items) != len(site_ids)
        ):
            raise _HttpError(400, "'items' must match 'site_ids' in length")
        bucket = self._bucket_for(key)
        if bucket is not None:
            wait = bucket.try_admit(len(site_ids))
            if wait > 0.0:
                self.rejected_429 += 1
                scope = "" if key is None else " for this API key"
                raise _HttpError(
                    429,
                    f"ingest rate limit exceeded{scope} "
                    f"({bucket.rate:g} events/s); retry in "
                    f"{wait:.2f}s",
                    headers={"Retry-After": str(max(1, math.ceil(wait)))},
                )
        if self.service.has_space_budgets():
            overages = await self._locked(self.service.space_overages)
            if overages:
                self.rejected_413 += 1
                detail = ", ".join(
                    f"{name} (used {info['used']} > budget "
                    f"{info['budget']} words)"
                    for name, info in sorted(overages.items())
                )
                raise _HttpError(
                    413, f"space budget exceeded for job(s): {detail}"
                )
        ingested = await self.ingestor.submit(site_ids, items)
        return 200, {
            "ingested": ingested,
            "elements": self.service.elements_processed,
        }

    async def _query(self, job, method, args):
        if not job or not isinstance(job, str):
            raise _HttpError(400, "query needs a 'job' name")
        if not isinstance(args, list):
            raise _HttpError(400, "'args' must be a list")
        result = await self._locked(self.service.query, job, method, *args)
        return 200, {
            "job": job,
            "method": method,
            "args": args,
            "result": jsonable(result),
        }


class GatewayThread:
    """Run a gateway (and its loop) on a background thread.

    For benchmarks, examples and tests that need a live HTTP endpoint
    inside one process::

        with GatewayThread(service) as gw:
            urllib.request.urlopen(gw.url + "/healthz")
    """

    def __init__(self, service: TrackingService, **gateway_kwargs):
        self.service = service
        self.gateway_kwargs = gateway_kwargs
        self.gateway: Optional[Gateway] = None
        self._loop = None
        self._thread = None

    def __enter__(self) -> "GatewayThread":
        import threading

        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="repro-gateway", daemon=True
        )
        self._thread.start()
        self.gateway = asyncio.run_coroutine_threadsafe(
            Gateway(self.service, **self.gateway_kwargs).start(), self._loop
        ).result(60)
        return self

    @property
    def url(self) -> str:
        return self.gateway.url

    def __exit__(self, *exc) -> None:
        asyncio.run_coroutine_threadsafe(
            self.gateway.close(), self._loop
        ).result(60)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=30)
        if not self._thread.is_alive():
            self._loop.close()
