"""HTTP/JSON query gateway over a multi-tenant tracking service.

A small asyncio HTTP/1.1 server (stdlib only — hand-rolled request
parsing over ``asyncio.start_server``) exposing the
:class:`~repro.service.TrackingService` surface:

====== ========================== ========================================
GET    /healthz                    liveness + ingest-queue gauges
GET    /metrics                    Prometheus text exposition (open)
GET    /v1/metrics                 the same registry as JSON
GET    /v1/trace                   cross-process trace spans
                                   (``?trace_id=``/``?name=``/``?limit=``)
GET    /v1/alerts                  alert rules, states and recent events
GET    /v1/status                  full service status (pods-style)
GET    /v1/jobs                    registered jobs, compact
POST   /v1/jobs                    register: ``{"name", "spec", ...}``
DELETE /v1/jobs/<name>             unregister
POST   /v1/ingest                  ``{"site_ids": [...], "items": [...]}``
POST   /v1/query                   ``{"job", "method", "args"}``
GET    /v1/query/<job>             ``?method=...&arg=...`` (repeatable)
POST   /v1/subscribe               register a standing query (SSE)
GET    /v1/subscriptions           live standing queries, compact
DELETE /v1/subscribe/<id>          drop a standing query
GET    /v1/stream/<id>             Server-Sent-Events delta stream
====== ========================== ========================================

Ingestion goes through the :class:`~repro.service.AsyncBatchIngestor`:
requests are coalesced into engine batches and admission is bounded —
when the queue is full the handler *waits* (the client sees latency,
never a drop), and a 200 response means the events have been applied
(post-WAL when the service is durable).

Queries and mutations take the ingestor's service lock on an executor
thread, so readers always see a batch boundary, and the event loop is
never blocked by protocol work.

**Observability.**  Each gateway owns a
:class:`~repro.obs.MetricsRegistry` (pass ``registry=`` to share one):
request counters/latency histograms per route template, rejection
counters, queue gauges, plus scrape-time collector bridges into the
service (``metrics_sample`` — engine totals, WAL bytes, per-job comm,
per-shard space), the exec plane (per-backend dispatch-latency
histograms, the pending-fence gauge) and cluster transports (frame and
byte counters).  ``/metrics`` and ``/healthz`` read the same registry,
so the two surfaces cannot disagree.  Scrapes run under the service
lock; on a relaxed sharded facade they fence outstanding batches,
exactly like ``/v1/status``.

**Standing queries.**  ``POST /v1/subscribe`` registers a spec —
``{"kind": "query", "job", "method", "args"}`` (delta on every change
of the answer), ``{"kind": "threshold", ..., "op", "value"}`` (event
when the predicate flips), or ``{"kind": "metrics", "metric"}`` (delta
on a metric family's total) — and ``GET /v1/stream/<id>`` serves the
deltas over SSE.  Evaluation is push-based: the ingestor's
``on_applied`` hook marks the plane dirty after every coalescing
round, and one evaluator task re-evaluates all standing queries under
the service lock — clients stop polling.

**Alerting.**  Pass ``alert_rules=`` (the parsed ``--alert-rules``
manifest) and the same evaluator also computes each alert rule's raw
value per coalescing round, steps the
:class:`~repro.obs.AlertManager` state machines, and routes
firing/resolved transitions to the manifest's sinks.  Every event
carries the ``trace_id`` of the round that flipped it, and
``/v1/trace?trace_id=`` resolves that exemplar to the stitched
cross-process dispatch — gateway ``round`` span, facade ``dispatch``
span, and remote hubs' ``ingest`` spans (collected over the exec
plane's ``collect_spans`` command and retained gateway-side).

**Tracing.**  ``POST /v1/ingest`` mints a ``trace_id`` (returned in
the 200) and the coalescing round that applies the request adopts the
first queued request's trace; the context rides the exec plane's
command envelopes into worker threads, subprocesses and remote hub
actors, so one ``GET /v1/trace?trace_id=<id>`` shows the whole path.
"""

from __future__ import annotations

import asyncio
import hmac
import json
import math
import time
from collections import deque
from typing import Optional
from urllib.parse import parse_qsl, urlsplit

from ..obs import (
    AlertManager,
    FleetMonitor,
    FleetTarget,
    MetricsRegistry,
    SpanRecorder,
    SubscriptionHub,
    filter_spans,
    new_trace_id,
    register_process_metrics,
    render_prometheus,
    render_sse_event,
)
from ..obs.metrics import DEFAULT_BUCKETS, LATENCY_BUCKETS, SIZE_BUCKETS
from ..obs.prometheus import CONTENT_TYPE as _PROMETHEUS_CONTENT_TYPE
from ..service import ServiceError, TrackingService
from ..service.async_ingest import AsyncBatchIngestor
from ..service.errors import DuplicateJobError, UnknownJobError
from ..service.jobspec import parse_job_spec, parse_query_literal

__all__ = ["Gateway", "GatewayThread", "TokenBucket", "jsonable"]

#: seconds between SSE keep-alive comments on an idle stream
_SSE_KEEPALIVE = 15.0

#: client reconnect hint (the SSE ``retry:`` field), milliseconds
_SSE_RETRY_MS = 3000

#: scrape-side cache of the service's ``metrics_sample`` (a fan-out on
#: sharded facades); scrapes within the TTL reuse the last sample
_SAMPLE_TTL = 0.5

_MAX_BODY = 64 * 1024 * 1024
_MAX_HEADER_LINE = 16 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    401: "Unauthorized",
    403: "Forbidden",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
}


class TokenBucket:
    """Event-rate limiter for ingest admission (quota enforcement).

    Classic token bucket: ``rate`` tokens (events) per second refill up
    to ``burst``.  :meth:`try_admit` is non-blocking — it either debits
    the request or returns the seconds until enough tokens exist, which
    the gateway surfaces as ``Retry-After`` on a 429.  A request larger
    than the whole burst is admitted whenever the bucket is full (the
    balance goes negative, charging the overdraft to later requests), so
    oversized batches degrade to serial instead of being unserveable.
    """

    def __init__(self, rate: float, burst: float, clock=time.monotonic):
        if rate <= 0 or burst <= 0:
            raise ValueError("rate and burst must be positive")
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self._clock = clock
        self._last = clock()

    def try_admit(self, n: int) -> float:
        """Admit ``n`` events now (return 0.0) or return the wait, in
        seconds, after which a retry would succeed."""
        now = self._clock()
        self.tokens = min(
            self.burst, self.tokens + (now - self._last) * self.rate
        )
        self._last = now
        need = min(float(n), self.burst)
        if self.tokens >= need:
            self.tokens -= n
            return 0.0
        return (need - self.tokens) / self.rate


class _HttpError(Exception):
    def __init__(self, status: int, message: str, headers: Optional[dict] = None):
        super().__init__(message)
        self.status = status
        self.message = message
        self.headers = headers


class _Raw:
    """A non-JSON response payload (body bytes + content type)."""

    __slots__ = ("body", "content_type")

    def __init__(self, body: str, content_type: str):
        self.body = body.encode()
        self.content_type = content_type


class _SSEStream:
    """Route-result marker: hijack this connection into an SSE stream."""

    __slots__ = ("subscription",)

    def __init__(self, subscription):
        self.subscription = subscription


def jsonable(value):
    """Make a query result JSON-renderable without losing structure.

    Tuples and sets become lists; dict keys that are not strings are
    stringified via ``json``-style rendering (so a tuple key shows as
    ``"[tenant, item]"`` rather than crashing the encoder).
    """
    if isinstance(value, dict):
        return {_key(k): jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonable(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted((jsonable(v) for v in value), key=repr)
    return value


def _key(key) -> str:
    if isinstance(key, str):
        return key
    try:
        return json.dumps(jsonable(key), separators=(",", ":"))
    except (TypeError, ValueError):
        return repr(key)


def _route_template(path: str) -> str:
    """Collapse a request path to its route template.

    Request metrics are labelled by template (``/v1/query/{job}``, not
    the literal path), so a client cycling job names or probing random
    URLs cannot blow up the label cardinality.
    """
    if path in ("/healthz", "/metrics"):
        return path
    segments = [s for s in path.split("/") if s]
    if segments[:1] == ["v1"] and len(segments) >= 2:
        head = segments[1]
        if head in (
            "status", "metrics", "trace", "alerts", "ingest", "query",
            "jobs", "subscribe", "subscriptions", "stream", "fleet",
        ):
            if len(segments) == 2:
                return f"/v1/{head}"
            if head == "fleet":
                return "/v1/fleet/events"
            if head == "jobs":
                return "/v1/jobs/{name}"
            if head == "query":
                return "/v1/query/{job}"
            if head == "subscribe":
                return "/v1/subscribe/{id}"
            if head == "stream":
                return "/v1/stream/{id}"
    return "other"


#: comparison operators a threshold subscription may use
_THRESHOLD_OPS = {
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
}


class Gateway:
    """The asyncio HTTP server; owns an ingest queue, not the service.

    Parameters
    ----------
    service:
        The :class:`TrackingService` to expose (caller keeps ownership —
        and responsibility for ``close()``).
    host / port:
        Bind address; port 0 picks an ephemeral port (see :attr:`port`).
    capacity_events / max_batch_events:
        Ingest-queue bound and coalescing ceiling
        (:class:`AsyncBatchIngestor`).
    default_eps:
        Error target used when a registered job spec omits ``:EPS``.
    max_ingest_rate / ingest_burst:
        Ingest quota: admit at most ``max_ingest_rate`` events/second
        (token bucket of ``ingest_burst`` events, default one queue
        capacity).  Requests over quota get **429** with ``Retry-After``
        instead of queueing.  ``None`` (default) disables the limiter.
        Space budgets are enforced independently: while any job exceeds
        its registered ``space_budget_words``, further ingests get
        **413** until the operator widens the budget or drops the job.
    api_keys:
        Per-tenant authentication: a mapping of API key -> tenant
        label.  When set, every ``/v1`` request must carry
        ``Authorization: Bearer <key>`` — a missing/malformed header is
        **401**, an unknown key **403** (``/healthz`` stays open for
        probes).  The ingest token buckets are then scoped **per key**
        (each tenant gets its own ``max_ingest_rate``/``ingest_burst``
        budget) instead of one bucket per gateway.
    alert_rules:
        The parsed ``--alert-rules`` JSON manifest (see
        :meth:`repro.obs.AlertManager.from_manifest`): delivery sinks
        plus rules whose raw values the gateway evaluates each
        coalescing round.  ``None`` (default) runs without alerting;
        ``GET /v1/alerts`` then answers with an empty rule set.
    fleet_interval:
        Seconds between fleet heartbeat polls (``hub_stats`` to every
        shard hub — or to the in-process service when unsharded).  The
        monitor behind it feeds ``GET /v1/fleet``, the
        ``repro_fleet_*`` families, and ``fleet``-kind alert rules.
    """

    def __init__(
        self,
        service: TrackingService,
        host: str = "127.0.0.1",
        port: int = 0,
        capacity_events: int = 1 << 16,
        max_batch_events: int = 8192,
        default_eps: float = 0.02,
        max_ingest_rate: Optional[float] = None,
        ingest_burst: Optional[int] = None,
        api_keys: Optional[dict] = None,
        registry: Optional[MetricsRegistry] = None,
        alert_rules: Optional[dict] = None,
        fleet_interval: float = 2.0,
    ):
        self.service = service
        self.host = host
        self._requested_port = port
        self.default_eps = default_eps
        self.ingestor = AsyncBatchIngestor(
            service,
            capacity_events=capacity_events,
            max_batch_events=max_batch_events,
        )
        if api_keys is not None:
            if not isinstance(api_keys, dict) or not api_keys or not all(
                isinstance(k, str) and k and isinstance(v, str)
                for k, v in api_keys.items()
            ):
                raise ValueError(
                    "api_keys must be a non-empty mapping of key -> tenant"
                )
        self.api_keys = dict(api_keys) if api_keys else None
        self._rate = max_ingest_rate
        self._burst = ingest_burst or capacity_events
        self.rate_limiter: Optional[TokenBucket] = None
        if max_ingest_rate is not None and self.api_keys is None:
            self.rate_limiter = TokenBucket(max_ingest_rate, self._burst)
        #: per-key token buckets (lazily created; auth mode only)
        self.key_buckets: dict = {}
        self._server: Optional[asyncio.base_events.Server] = None
        #: the dispatch-plane span buffer (the facade's when sharded,
        #: else a gateway-owned recorder so /v1/trace always answers).
        #: Explicit None check: an empty SpanRecorder is falsy (__len__).
        service_spans = getattr(service, "spans", None)
        self.spans: SpanRecorder = (
            service_spans if service_spans is not None else SpanRecorder()
        )
        # The ingestor records its per-round "round" spans here too, so
        # gateway, facade and (unsharded) hub spans share one buffer.
        self.ingestor.spans = self.spans
        #: hub-side spans already collected from remote shard hubs
        #: (collection *drains* their buffers, so the gateway retains
        #: what it has seen for repeated /v1/trace reads)
        self._hub_spans: deque = deque(maxlen=4096)
        #: trace id of the most recently applied coalescing round — the
        #: exemplar stamped onto alert transition events
        self._last_trace_id: Optional[str] = None
        self.subscriptions = SubscriptionHub()
        self._dirty: Optional[asyncio.Event] = None
        self._evaluator_task: Optional[asyncio.Task] = None
        self._stream_writers: set = set()
        self._sample_cache: Optional[dict] = None
        self._sample_time = 0.0
        self.registry = registry if registry is not None else MetricsRegistry()
        self.alerts: Optional[AlertManager] = (
            None
            if alert_rules is None
            else AlertManager.from_manifest(alert_rules, registry=self.registry)
        )
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self.fleet = self._init_fleet(fleet_interval)
        self._init_metrics()

    def _init_fleet(self, fleet_interval: float) -> FleetMonitor:
        """One poll target per shard hub; the service itself unsharded.

        Each poll posts ``hub_stats`` down the hub's command pipe
        *under the ingest lock* — the pipes are FIFO and not safe
        against interleaved dispatch, so polls queue behind coalescing
        rounds exactly like scrapes and status reads do.  Liveness
        transitions wake the evaluator (via ``call_soon_threadsafe``)
        only when ``fleet``-kind alert rules exist: their values change
        with time, not with ingest, so the ingest-driven wakeup alone
        would never fire a hub-down alert on a quiet gateway.
        """
        targets = []
        backends = list(getattr(self.service, "backends", None) or ())
        if backends:
            def make_poll(backend):
                def poll():
                    with self.ingestor.lock:
                        return backend.dispatch_run("hub_stats")

                return poll

            for shard, backend in enumerate(backends):
                targets.append(
                    FleetTarget(
                        str(shard),
                        make_poll(backend),
                        address=(
                            getattr(backend, "address", None)
                            or type(backend).__name__
                        ),
                        pending=(lambda b=backend: b.pending),
                    )
                )
        else:
            from ..exec.workers import hub_stats

            def poll_local():
                with self.ingestor.lock:
                    return hub_stats(self.service)

            targets.append(
                FleetTarget("0", poll_local, address="in-process")
            )
        self._fleet_wakes = self.alerts is not None and any(
            rule.spec.get("kind") == "fleet"
            for rule in self.alerts.rules.values()
        )
        return FleetMonitor(
            targets,
            interval=fleet_interval,
            spans=self.spans,
            on_round=self._on_fleet_round,
        )

    def _on_fleet_round(self) -> None:
        """Fleet-poll callback (monitor thread): nudge the evaluator."""
        if not self._fleet_wakes:
            return
        loop, dirty = self._loop, self._dirty
        if loop is None or dirty is None:
            return
        try:
            loop.call_soon_threadsafe(dirty.set)
        except RuntimeError:
            pass  # loop already closed

    # -- metrics wiring ----------------------------------------------------

    def _init_metrics(self) -> None:
        """Declare the gateway's families and bridge every layer in.

        Hot paths own plain counters or standalone instruments; the
        registry reaches them through ``set_function`` gauges,
        ``attach``-ed children, and scrape-time collectors — nothing
        here adds work to the per-event ingest path.
        """
        r = self.registry
        register_process_metrics(r)
        self.fleet.register_metrics(r)
        self.m_requests = r.counter(
            "repro_gateway_requests_total",
            "HTTP requests served, by route template, method and status.",
            ["route", "method", "status"],
        )
        self.m_request_seconds = r.histogram(
            "repro_gateway_request_seconds",
            "Request handling latency by route template.",
            ["route"],
            buckets=LATENCY_BUCKETS,
        )
        self.m_inflight = r.gauge(
            "repro_gateway_inflight_requests",
            "Requests currently being handled, by route template.",
            ["route"],
        )
        self.m_route_errors = r.counter(
            "repro_gateway_errors_total",
            "Responses with a 5xx status, by route template (the "
            "top-level handler's exception path).",
            ["route"],
        )
        self.m_rejections = r.counter(
            "repro_gateway_rejections_total",
            "Requests refused by the auth (401/403), space-budget (413) "
            "and quota (429) guards.",
            ["code"],
        )
        for code in ("401", "403", "413", "429"):
            self.m_rejections.labels(code)
        self.m_ingested = r.counter(
            "repro_gateway_events_ingested_total",
            "Events accepted through /v1/ingest, per tenant.",
            ["tenant"],
        )
        self.m_batch_events = r.histogram(
            "repro_gateway_batch_events",
            "Events per applied coalescing round.",
            buckets=SIZE_BUCKETS,
        )
        self.m_apply_seconds = r.histogram(
            "repro_gateway_apply_seconds",
            "Engine apply latency per coalescing round.",
            buckets=DEFAULT_BUCKETS,
        )
        r.gauge(
            "repro_gateway_queue_depth_events",
            "Events admitted but not yet applied.",
        ).set_function(lambda: self.ingestor.queued_events)
        r.gauge(
            "repro_gateway_queue_capacity_events",
            "Ingest queue bound, in events.",
        ).set_function(lambda: self.ingestor.capacity_events)
        r.gauge(
            "repro_gateway_subscriptions",
            "Registered standing queries.",
        ).set_function(lambda: len(self.subscriptions))
        r.gauge(
            "repro_gateway_streams",
            "Open SSE streaming connections.",
        ).set_function(lambda: len(self._stream_writers))
        self.m_queue_stats = r.counter(
            "repro_gateway_ingest_queue_stat",
            "AsyncBatchIngestor running totals, by stat name.",
            ["stat"],
        )
        # -- service layer (bridged from metrics_sample at scrape time)
        self.m_service_elements = r.counter(
            "repro_service_elements_total",
            "Events applied to the service, all jobs observing each.",
        )
        self.m_engine_batches = r.counter(
            "repro_service_ingest_batches_total",
            "Engine calls (coalesced batches applied).",
        )
        self.m_wal_bytes = r.counter(
            "repro_service_wal_bytes_total",
            "Bytes appended to write-ahead logs (0 without durability).",
        )
        self.m_wal_records = r.counter(
            "repro_service_wal_records_total",
            "Records appended to write-ahead logs.",
        )
        self.m_comm_messages = r.counter(
            "repro_service_comm_messages_total",
            "Protocol messages, fleet-wide, by channel.",
            ["channel"],
        )
        self.m_comm_words = r.counter(
            "repro_service_comm_words_total",
            "Protocol words, fleet-wide, by channel.",
            ["channel"],
        )
        self.m_job_elements = r.counter(
            "repro_service_job_elements_total",
            "Events observed per job.",
            ["job"],
        )
        self.m_job_comm_words = r.counter(
            "repro_service_job_comm_words_total",
            "Protocol words per job (its own ledger).",
            ["job"],
        )
        self.m_space_used = r.gauge(
            "repro_shard_space_used_words",
            "High-water site space per shard and job (max over the "
            "shard's sites).",
            ["shard", "job"],
        )
        self.m_space_available = r.gauge(
            "repro_shard_space_available_words",
            "Budget headroom per shard and job (budgeted jobs only).",
            ["shard", "job"],
        )
        self.m_shard_elements = r.counter(
            "repro_shard_elements_total",
            "Events routed to each shard hub.",
            ["shard"],
        )
        r.register_collector(self._collect_queue_stats)
        r.register_collector(self._collect_service)
        # -- shard merge plane + exec plane (facade-owned instruments)
        merge_latency = getattr(self.service, "merge_latency", None)
        if merge_latency is not None:
            fam = r.histogram(
                "repro_shard_merge_seconds",
                "Cross-shard query merge latency (fan-out included).",
                buckets=DEFAULT_BUCKETS,
            )
            fam.attach((), merge_latency)
            fam = r.histogram(
                "repro_shard_merge_candidates",
                "Candidate-union sizes of quantile/heavy-hitter/top-k "
                "merges.",
                buckets=SIZE_BUCKETS,
            )
            fam.attach((), self.service.merge_candidates)
        backends = list(getattr(self.service, "backends", None) or ())
        if backends:
            fam = r.histogram(
                "repro_exec_dispatch_seconds",
                "Per-backend submit-to-collect latency; under relaxed "
                "dispatch this is the in-flight window.",
                ["shard"],
                buckets=LATENCY_BUCKETS,
            )
            for shard, backend in enumerate(backends):
                fam.attach((str(shard),), backend.latency)
            r.gauge(
                "repro_exec_pending_commands",
                "Commands posted to shard hubs but not collected (the "
                "pending-fence depth).",
            ).set_function(lambda: self.service.pending_commands)
        # -- windowed relaxed dispatch (facade-owned; see
        #    docs/relaxed-mode.md → "Windowing")
        coalesced = getattr(self.service, "coalesced_runs", None)
        if coalesced is not None:
            fam = r.histogram(
                "repro_exec_coalesced_runs_per_frame",
                "Run weight of each windowed sub-batch command posted "
                "to a shard hub (runs riding one frame).",
                buckets=SIZE_BUCKETS,
            )
            fam.attach((), coalesced)
            r.gauge(
                "repro_exec_inflight_runs",
                "Runs posted under the relaxed window but not yet "
                "collected.",
            ).set_function(lambda: self.service.inflight_runs())
            self.m_window_stalls = r.counter(
                "repro_exec_window_stalls_total",
                "Posts that collected an in-flight reply to free "
                "window credit before proceeding.",
            )
            r.register_collector(self._collect_dispatch)
        transports = [
            backend._transport
            for backend in backends
            if getattr(backend, "_transport", None) is not None
        ]
        if transports:
            self.m_net_bytes = r.counter(
                "repro_net_bytes_total",
                "Transport bytes over cluster-backend connections.",
                ["direction"],
            )
            self.m_net_frames = r.counter(
                "repro_net_frames_total",
                "Transport frames over cluster-backend connections.",
                ["direction"],
            )
            self._transports = transports
            r.register_collector(self._collect_net)

    def _collect_queue_stats(self) -> None:
        for stat, value in self.ingestor.stats.items():
            # mirror externally owned monotonic totals: assignment, not
            # inc, so the bridge is idempotent across scrapes
            self.m_queue_stats.labels(stat).value = float(value)

    def _service_sample(self) -> dict:
        now = time.monotonic()
        if (
            self._sample_cache is None
            or now - self._sample_time >= _SAMPLE_TTL
        ):
            self._sample_cache = self.service.metrics_sample()
            self._sample_time = now
        return self._sample_cache

    def _collect_service(self) -> None:
        sample = self._service_sample()
        self.m_service_elements.labels().value = float(sample["elements"])
        self.m_engine_batches.labels().value = float(
            sample["engine"].get("batches", 0)
        )
        self.m_wal_bytes.labels().value = float(sample["wal_bytes"])
        self.m_wal_records.labels().value = float(sample["wal_records"])
        for channel in ("uplink", "downlink", "broadcast"):
            self.m_comm_messages.labels(channel).value = float(
                sample["comm"].get(f"{channel}_messages", 0)
            )
            self.m_comm_words.labels(channel).value = float(
                sample["comm"].get(f"{channel}_words", 0)
            )
        for name, info in sample["jobs"].items():
            self.m_job_elements.labels(name).value = float(info["elements"])
            self.m_job_comm_words.labels(name).value = float(
                info["comm"].get("total_words", 0)
            )
            budget = info.get("budget")
            shards = info.get("shards") or [
                {"shard": 0, "space": info["space"]}
            ]
            for entry in shards:
                shard = str(entry["shard"])
                used = entry["space"]["max_site_words"]
                self.m_space_used.labels(shard, name).set(used)
                if budget is not None:
                    self.m_space_available.labels(shard, name).set(
                        budget - used
                    )
        for entry in sample.get("shards") or [
            {"shard": 0, "elements": sample["elements"]}
        ]:
            self.m_shard_elements.labels(str(entry["shard"])).value = float(
                entry["elements"]
            )

    def _collect_dispatch(self) -> None:
        """Bridge the facade's plain windowed-dispatch counters."""
        self.m_window_stalls.labels().value = float(
            getattr(self.service, "window_stalls", 0)
        )

    def _collect_net(self) -> None:
        totals = {"sent": [0, 0], "received": [0, 0]}
        for transport in self._transports:
            stats = transport.stats
            for direction in totals:
                totals[direction][0] += stats.get(f"bytes_{direction}", 0)
                totals[direction][1] += stats.get(f"frames_{direction}", 0)
        for direction, (nbytes, nframes) in totals.items():
            self.m_net_bytes.labels(direction).value = float(nbytes)
            self.m_net_frames.labels(direction).value = float(nframes)

    # -- rejection counters (registry-backed; /healthz reads these) --------

    @property
    def rejected_429(self) -> int:
        return int(self.m_rejections.labels("429").value)

    @property
    def rejected_413(self) -> int:
        return int(self.m_rejections.labels("413").value)

    @property
    def rejected_401(self) -> int:
        return int(self.m_rejections.labels("401").value)

    @property
    def rejected_403(self) -> int:
        return int(self.m_rejections.labels("403").value)

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> "Gateway":
        await self.ingestor.start()
        self._loop = asyncio.get_running_loop()
        self._dirty = asyncio.Event()
        self.ingestor.on_applied.append(self._on_applied)
        self._evaluator_task = asyncio.ensure_future(self._evaluator())
        self.fleet.start()
        self._server = await asyncio.start_server(
            self._handle, self.host, self._requested_port
        )
        return self

    def _on_applied(self, events: int, seconds: float) -> None:
        """Ingestor callback after each applied coalescing round."""
        self.m_batch_events.observe(events)
        self.m_apply_seconds.observe(seconds)
        self._last_trace_id = self.ingestor.last_trace_id
        # the TTL cache only dedupes *concurrent* scrapes; an applied
        # batch must be visible to the next scrape (and to metrics-kind
        # standing queries) immediately
        self._sample_cache = None
        if self._dirty is not None:
            self._dirty.set()

    @property
    def port(self) -> int:
        if self._server is None:
            return self._requested_port
        return self._server.sockets[0].getsockname()[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    async def close(self) -> None:
        # stop heartbeating first: a poll in flight holds the ingest
        # lock and may be blocked on a dead hub, so join it off-loop
        await asyncio.get_running_loop().run_in_executor(
            None, self.fleet.stop
        )
        if self._server is not None:
            self._server.close()
            # SSE connections are long-lived by design; abort them so
            # wait_closed() (which joins handlers on newer Pythons)
            # cannot hang on a subscribed client.
            for writer in list(self._stream_writers):
                try:
                    writer.transport.abort()
                except Exception:
                    pass
            await self._server.wait_closed()
            self._server = None
        if self._evaluator_task is not None:
            self._evaluator_task.cancel()
            try:
                await self._evaluator_task
            except asyncio.CancelledError:
                pass
            self._evaluator_task = None
        await self.ingestor.close()
        if self.alerts is not None:
            # joins the delivery thread; off-loop so a slow sink's
            # in-flight emit cannot stall the event loop
            await asyncio.get_running_loop().run_in_executor(
                None, self.alerts.close
            )

    # -- HTTP plumbing -----------------------------------------------------

    async def _handle(self, reader, writer) -> None:
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except _HttpError as exc:
                    # Parse-level failures (malformed request line, huge
                    # header/body) still deserve their coded response;
                    # the stream position is unknown afterwards, so the
                    # connection closes.
                    await self._respond(
                        writer, exc.status, {"error": exc.message}, True
                    )
                    break
                if request is None:
                    break
                method, path, query, headers, body = request
                extra_headers = None
                route = _route_template(path)
                inflight = self.m_inflight.labels(route)
                inflight.inc()
                started = time.perf_counter()
                try:
                    try:
                        key = self._authenticate(path, headers)
                        status, payload = await self._route(
                            method, path, query, body, key
                        )
                    except _HttpError as exc:
                        status, payload = exc.status, {"error": exc.message}
                        extra_headers = exc.headers
                    except (UnknownJobError, AttributeError) as exc:
                        status, payload = 404, {"error": str(exc)}
                    except DuplicateJobError as exc:
                        status, payload = 409, {"error": str(exc)}
                    except (ValueError, TypeError, ServiceError) as exc:
                        status, payload = 400, {"error": str(exc)}
                    except Exception as exc:  # keep serving other clients
                        status, payload = 500, {
                            "error": f"{type(exc).__name__}: {exc}"
                        }
                finally:
                    inflight.dec()
                self.m_requests.labels(route, method, str(status)).inc()
                self.m_request_seconds.labels(route).observe(
                    time.perf_counter() - started
                )
                if status >= 500:
                    self.m_route_errors.labels(route).inc()
                if isinstance(payload, _SSEStream):
                    # Hijack: the connection becomes a one-way event
                    # stream and closes when either side gives up.
                    await self._stream(
                        reader, writer, payload.subscription, headers
                    )
                    break
                close = headers.get("connection", "").lower() == "close"
                await self._respond(
                    writer, status, payload, close, extra_headers
                )
                if close:
                    break
        except (
            ConnectionError,
            asyncio.IncompleteReadError,
            asyncio.LimitOverrunError,
            OSError,
        ):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(self, reader):
        line = await reader.readline()
        if not line:
            return None
        parts = line.decode("latin-1").strip().split()
        if len(parts) != 3:
            raise _HttpError(400, "malformed request line")
        method, target, _version = parts
        headers = {}
        while True:
            header = await reader.readline()
            if len(header) > _MAX_HEADER_LINE:
                raise _HttpError(400, "header line too long")
            if header in (b"\r\n", b"\n", b""):
                break
            name, _, value = header.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", 0) or 0)
        except ValueError:
            raise _HttpError(400, "malformed Content-Length header") from None
        if length > _MAX_BODY:
            raise _HttpError(413, f"body exceeds {_MAX_BODY} bytes")
        body = await reader.readexactly(length) if length else b""
        split = urlsplit(target)
        # query stays a pair list: repeatable keys (``arg``) must survive
        return method.upper(), split.path, parse_qsl(split.query), headers, body

    async def _respond(
        self, writer, status, payload, close, headers: Optional[dict] = None
    ) -> None:
        if isinstance(payload, _Raw):
            body = payload.body
            content_type = payload.content_type
        else:
            body = json.dumps(payload, separators=(",", ":")).encode()
            content_type = "application/json"
        reason = _REASONS.get(status, "Unknown")
        connection = "close" if close else "keep-alive"
        extra = "".join(
            f"{name}: {value}\r\n" for name, value in (headers or {}).items()
        )
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"{extra}"
            f"Connection: {connection}\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + body)
        await writer.drain()

    # -- auth --------------------------------------------------------------

    def _authenticate(self, path: str, headers: dict) -> Optional[str]:
        """Resolve the request's API key (None when auth is off).

        ``/healthz`` and ``/metrics`` stay open so liveness probes and
        scrapers work without credentials; everything else requires a
        valid ``Authorization: Bearer <key>`` when ``api_keys`` is set.
        """
        if self.api_keys is None or path in ("/healthz", "/metrics"):
            return None
        header = headers.get("authorization", "")
        scheme, _, token = header.partition(" ")
        token = token.strip()
        if not header or scheme.lower() != "bearer" or not token:
            self.m_rejections.labels("401").inc()
            raise _HttpError(
                401,
                "missing or malformed Authorization header "
                "(expected: Bearer <api-key>)",
                headers={"WWW-Authenticate": "Bearer"},
            )
        # Constant-time scan of the (small, bounded) key set: no early
        # exit and no short-circuiting equality, so the 403 path's
        # timing does not leak how much of a candidate key matched.
        matched = None
        token_bytes = token.encode()
        for known in self.api_keys:
            if hmac.compare_digest(token_bytes, known.encode()):
                matched = known
        if matched is None:
            self.m_rejections.labels("403").inc()
            raise _HttpError(403, "unknown API key")
        return matched

    def _bucket_for(self, key: Optional[str]) -> Optional[TokenBucket]:
        """The token bucket charging this request's ingest quota.

        Without auth there is one gateway-wide bucket; with auth each
        key gets its own (created on first use), so one tenant's burst
        cannot starve another's.
        """
        if self._rate is None:
            return None
        if self.api_keys is None or key is None:
            return self.rate_limiter
        bucket = self.key_buckets.get(key)
        if bucket is None:
            bucket = self.key_buckets[key] = TokenBucket(
                self._rate, self._burst
            )
        return bucket

    # -- routing -----------------------------------------------------------

    async def _route(self, method, path, query, body, key=None):
        segments = [s for s in path.split("/") if s]
        if path == "/healthz" and method == "GET":
            return 200, {
                "ok": True,
                "elements": self.service.elements_processed,
                "jobs": sorted(self.service.jobs),
                "queue": dict(
                    self.ingestor.stats,
                    queued_events=self.ingestor.queued_events,
                    capacity_events=self.ingestor.capacity_events,
                ),
                "quota": {
                    "max_ingest_rate": self._rate,
                    "rejected_429": self.rejected_429,
                    "rejected_413": self.rejected_413,
                },
                "auth": {
                    "enabled": self.api_keys is not None,
                    "keys": (
                        None if self.api_keys is None else len(self.api_keys)
                    ),
                    "rejected_401": self.rejected_401,
                    "rejected_403": self.rejected_403,
                },
            }
        if path == "/metrics" and method == "GET":
            # Collect under the service lock so bridged samples land on
            # batch boundaries (fences a relaxed facade, like /v1/status).
            text = await self._locked(render_prometheus, self.registry)
            return 200, _Raw(text, _PROMETHEUS_CONTENT_TYPE)
        if segments[:1] != ["v1"]:
            raise _HttpError(404, f"no route {path!r}")
        rest = segments[1:]
        if rest == ["metrics"] and method == "GET":
            return 200, await self._locked(self.registry.as_dict)
        if rest == ["trace"] and method == "GET":
            return 200, await self._trace(dict(query))
        if rest == ["alerts"] and method == "GET":
            if self.alerts is None:
                return 200, {
                    "rules": [], "sinks": {}, "events": [],
                    "dead_letters": [],
                }
            return 200, jsonable(self.alerts.describe())
        if rest == ["fleet"] and method == "GET":
            return 200, jsonable(self.fleet.snapshot())
        if rest == ["fleet", "events"] and method == "GET":
            params = dict(query)
            try:
                limit = int(params.get("limit", 0) or 0) or None
            except ValueError:
                raise _HttpError(400, "malformed limit") from None
            return 200, {"events": jsonable(self.fleet.events(limit))}
        if rest == ["subscribe"] and method == "POST":
            return await self._subscribe(self._json_body(body))
        if rest == ["subscriptions"] and method == "GET":
            return 200, {
                "subscriptions": [
                    sub.describe() for sub in self.subscriptions.all()
                ]
            }
        if len(rest) == 2 and rest[0] == "subscribe" and method == "DELETE":
            if not self.subscriptions.unsubscribe(rest[1]):
                raise _HttpError(404, f"no subscription {rest[1]!r}")
            return 200, {"unsubscribed": rest[1]}
        if len(rest) == 2 and rest[0] == "stream" and method == "GET":
            subscription = self.subscriptions.get(rest[1])
            if subscription is None:
                raise _HttpError(404, f"no subscription {rest[1]!r}")
            return 200, _SSEStream(subscription)
        if rest == ["status"] and method == "GET":
            return 200, jsonable(await self._locked(self.service.status))
        if rest == ["jobs"]:
            if method == "GET":
                return 200, {
                    "jobs": {
                        name: {
                            "scheme": job.scheme.name,
                            "elements": job.elements_processed,
                        }
                        for name, job in self.service.jobs.items()
                    }
                }
            if method == "POST":
                return await self._register(self._json_body(body))
            raise _HttpError(405, f"{method} not allowed on /v1/jobs")
        if len(rest) == 2 and rest[0] == "jobs" and method == "DELETE":
            await self._locked(self.service.unregister, rest[1])
            return 200, {"unregistered": rest[1]}
        if rest == ["ingest"] and method == "POST":
            return await self._ingest(self._json_body(body), key)
        if rest == ["query"] and method == "POST":
            payload = self._json_body(body)
            return await self._query(
                payload.get("job"),
                payload.get("method"),
                payload.get("args") or [],
            )
        if len(rest) == 2 and rest[0] == "query" and method == "GET":
            params = dict(query)
            args = [
                parse_query_literal(value) for key, value in query if key == "arg"
            ]
            return await self._query(rest[1], params.get("method"), args)
        raise _HttpError(404, f"no route {method} {path!r}")

    # -- handlers ----------------------------------------------------------

    @staticmethod
    def _json_body(body: bytes) -> dict:
        if not body:
            raise _HttpError(400, "expected a JSON body")
        try:
            payload = json.loads(body)
        except ValueError as exc:
            raise _HttpError(400, f"malformed JSON body: {exc}") from None
        if not isinstance(payload, dict):
            raise _HttpError(400, "JSON body must be an object")
        return payload

    async def _locked(self, fn, *args, **kwargs):
        """Run a service operation under the ingest lock, off-loop."""
        loop = asyncio.get_running_loop()

        def call():
            with self.ingestor.lock:
                return fn(*args, **kwargs)

        return await loop.run_in_executor(None, call)

    async def _register(self, payload):
        name = payload.get("name")
        spec = payload.get("spec")
        if not name or not isinstance(name, str):
            raise _HttpError(400, "register needs a job 'name'")
        if not spec or not isinstance(spec, str):
            raise _HttpError(
                400, "register needs a 'spec' like 'count/randomized:0.01'"
            )
        _, problem, scheme = parse_job_spec(
            f"{name}={spec}", payload.get("eps", self.default_eps)
        )
        await self._locked(
            self.service.register,
            name,
            scheme,
            seed=payload.get("seed"),
            space_budget_words=payload.get("space_budget_words"),
        )
        return 200, {
            "registered": name,
            "problem": problem,
            "scheme": scheme.name,
        }

    async def _ingest(self, payload, key=None):
        site_ids = payload.get("site_ids")
        if not isinstance(site_ids, list) or not site_ids:
            raise _HttpError(400, "ingest needs a non-empty 'site_ids' list")
        items = payload.get("items")
        if items is not None and (
            not isinstance(items, list) or len(items) != len(site_ids)
        ):
            raise _HttpError(400, "'items' must match 'site_ids' in length")
        bucket = self._bucket_for(key)
        if bucket is not None:
            wait = bucket.try_admit(len(site_ids))
            if wait > 0.0:
                self.m_rejections.labels("429").inc()
                scope = "" if key is None else " for this API key"
                raise _HttpError(
                    429,
                    f"ingest rate limit exceeded{scope} "
                    f"({bucket.rate:g} events/s); retry in "
                    f"{wait:.2f}s",
                    headers={"Retry-After": str(max(1, math.ceil(wait)))},
                )
        if self.service.has_space_budgets():
            overages = await self._locked(self.service.space_overages)
            if overages:
                self.m_rejections.labels("413").inc()
                detail = ", ".join(
                    f"{name} (used {info['used']} > budget "
                    f"{info['budget']} words)"
                    for name, info in sorted(overages.items())
                )
                raise _HttpError(
                    413, f"space budget exceeded for job(s): {detail}"
                )
        trace_id = new_trace_id()
        ingested = await self.ingestor.submit(
            site_ids, items, trace_id=trace_id
        )
        tenant = (
            "default"
            if key is None or self.api_keys is None
            else self.api_keys[key]
        )
        self.m_ingested.labels(tenant).inc(ingested)
        return 200, {
            "ingested": ingested,
            "elements": self.service.elements_processed,
            "trace_id": trace_id,
        }

    async def _trace(self, params: dict):
        """``GET /v1/trace``: the stitched cross-process span view.

        Gathers gateway-side spans (rounds, dispatch/fence/merge) and
        hub-side spans (collected from placed hubs over the exec plane,
        then retained), merges them in start order, and applies the
        ``?name=`` / ``?trace_id=`` / ``?limit=`` filters.
        """
        limit = params.get("limit")
        if limit is not None:
            try:
                limit = int(limit)
            except ValueError:
                raise _HttpError(400, "'limit' must be an integer") from None
            if limit < 0:
                raise _HttpError(400, "'limit' must be >= 0")
        spans = await self._locked(self._stitched_spans)
        spans = filter_spans(
            spans,
            name=params.get("name"),
            trace_id=params.get("trace_id"),
            limit=limit,
        )
        return {"spans": jsonable(spans)}

    def _stitched_spans(self) -> list:
        """Merge gateway- and hub-side spans (runs under the lock).

        ``collect_spans`` *drains* hub buffers (fencing relaxed batches
        like any collecting command), so collected spans are retained
        in a gateway-side ring — repeated reads keep seeing them.  On
        an unsharded service the hub recorder *is* ``self.spans`` and
        there is nothing to collect.
        """
        collect = getattr(self.service, "collect_spans", None)
        if collect is not None:
            for span in collect():
                self._hub_spans.append(span)
        merged = list(self.spans.dump()) + list(self._hub_spans)
        merged.sort(key=lambda s: s.get("start") or 0.0)
        return merged

    async def _query(self, job, method, args):
        if not job or not isinstance(job, str):
            raise _HttpError(400, "query needs a 'job' name")
        if not isinstance(args, list):
            raise _HttpError(400, "'args' must be a list")
        result = await self._locked(self.service.query, job, method, *args)
        return 200, {
            "job": job,
            "method": method,
            "args": args,
            "result": jsonable(result),
        }

    # -- standing queries (SSE) --------------------------------------------

    def _validate_spec(self, payload: dict) -> dict:
        kind = payload.get("kind", "query")
        if kind not in ("query", "threshold", "metrics"):
            raise _HttpError(
                400, "subscription 'kind' must be query, threshold or metrics"
            )
        spec = {"kind": kind}
        if kind == "metrics":
            metric = payload.get("metric")
            if not metric or not isinstance(metric, str):
                raise _HttpError(
                    400, "a metrics subscription needs a 'metric' family name"
                )
            spec["metric"] = metric
            return spec
        job = payload.get("job")
        if not job or not isinstance(job, str):
            raise _HttpError(400, "subscription needs a 'job' name")
        if job not in self.service.jobs:
            raise _HttpError(404, f"no job {job!r}")
        args = payload.get("args") or []
        if not isinstance(args, list):
            raise _HttpError(400, "'args' must be a list")
        spec.update({"job": job, "method": payload.get("method"), "args": args})
        if kind == "threshold":
            op = payload.get("op")
            if op not in _THRESHOLD_OPS:
                raise _HttpError(
                    400,
                    f"threshold 'op' must be one of "
                    f"{sorted(_THRESHOLD_OPS)}",
                )
            value = payload.get("value")
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise _HttpError(400, "threshold 'value' must be a number")
            spec.update({"op": op, "value": value})
        return spec

    async def _subscribe(self, payload: dict):
        spec = self._validate_spec(payload)
        try:
            sub = self.subscriptions.subscribe(spec)
        except OverflowError as exc:
            raise _HttpError(429, str(exc)) from None
        try:
            # Baseline evaluation: deltas are relative to the answer at
            # subscribe time, so a client never sees a phantom first
            # delta for state that predates it.
            sub.last_value = await self._locked(self._evaluate_spec, spec)
        except BaseException:
            self.subscriptions.unsubscribe(sub.sid)
            raise
        return 200, {
            "subscription": sub.sid,
            "stream": f"/v1/stream/{sub.sid}",
            "value": jsonable(sub.last_value),
        }

    def _evaluate_spec(self, spec: dict):
        """Evaluate one standing query (runs under the service lock)."""
        if spec["kind"] == "metrics":
            return self._metric_total(spec["metric"])
        value = self.service.query(
            spec["job"], spec["method"], *spec["args"]
        )
        if spec["kind"] == "query":
            return jsonable(value)
        crossed = _THRESHOLD_OPS[spec["op"]](float(value), float(spec["value"]))
        return {
            "crossed": crossed,
            "value": float(value),
            "op": spec["op"],
            "threshold": spec["value"],
        }

    def _rule_value(self, spec: dict) -> float:
        """One alert rule's raw value (runs under the service lock).

        ``threshold`` rules evaluate a job query, ``metrics`` rules a
        registry family total, ``fleet`` rules a liveness/capacity
        quantity from the fleet monitor, and ``error_bound`` rules the
        composed accuracy accounting — the facade's ``error_bound``
        when it has one, else the paper's ``epsilon * n`` directly.
        """
        kind = spec.get("kind", "threshold")
        if kind == "metrics":
            return float(self._metric_total(spec["metric"]))
        if kind == "fleet":
            return float(self.fleet.rule_value(spec["metric"]))
        if kind == "error_bound":
            error_bound = getattr(self.service, "error_bound", None)
            if error_bound is not None:
                return float(error_bound(spec["job"])["bound"])
            job = self.service.job(spec["job"])
            epsilon = getattr(job.scheme, "epsilon", None)
            if epsilon is None:
                raise ValueError(
                    f"job {spec['job']!r} scheme has no epsilon"
                )
            return float(epsilon) * job.elements_processed
        return float(
            self.service.query(
                spec["job"], spec.get("method"), *(spec.get("args") or ())
            )
        )

    def _metric_total(self, name: str) -> float:
        """One metric family's total over all children (count for
        histograms), straight from the registry."""
        family = self.registry.as_dict().get(name)
        if family is None:
            raise ValueError(f"no metric family {name!r}")
        total = 0.0
        for sample in family["samples"]:
            value = sample["value"]
            total += value["count"] if isinstance(value, dict) else value
        return total

    @staticmethod
    def _ckey(spec: dict, value):
        """The change key: a delta fires when this differs.

        Threshold subscriptions fire on predicate *flips*, not on every
        underlying value change; everything else compares the answer.
        """
        if spec["kind"] == "threshold" and isinstance(value, dict):
            return value.get("crossed")
        return value

    async def _evaluator(self) -> None:
        """The push plane: re-evaluate standing queries after ingest.

        Woken by the ingestor's ``on_applied`` hook (never by a timer),
        it evaluates *all* subscriptions in one trip under the service
        lock — one coalescing round costs one lock acquisition however
        many standing queries exist — then publishes a delta to each
        subscription whose change key moved.
        """
        while True:
            await self._dirty.wait()
            self._dirty.clear()
            subs = self.subscriptions.all()
            rules = (
                list(self.alerts.rules.values())
                if self.alerts is not None
                else []
            )
            if not subs and not rules:
                continue

            def eval_all(subs=subs, rules=rules):
                results = []
                rule_values = {}
                with self.ingestor.lock:
                    for sub in subs:
                        try:
                            results.append((sub, self._evaluate_spec(sub.spec), None))
                        except Exception as exc:
                            results.append((sub, None, exc))
                    for rule in rules:
                        try:
                            rule_values[rule.name] = self._rule_value(
                                rule.spec
                            )
                        except Exception:
                            rule_values[rule.name] = None
                return results, rule_values

            loop = asyncio.get_running_loop()
            results, rule_values = await loop.run_in_executor(None, eval_all)
            if rules:
                self.alerts.step(rule_values, trace_id=self._last_trace_id)
                # A quiet gateway must still complete pending -> firing:
                # schedule a re-evaluation for the earliest `for` expiry
                # (the step itself needs no new ingest, only time).
                deadline = self.alerts.pending_deadline()
                if deadline is not None:
                    delay = max(0.0, deadline - time.monotonic()) + 0.02
                    loop.call_later(delay, self._dirty.set)
            elements = self.service.elements_processed
            for sub, value, error in results:
                if self.subscriptions.get(sub.sid) is not sub:
                    continue  # unsubscribed while evaluating
                if error is not None:
                    value = {"error": f"{type(error).__name__}: {error}"}
                previous = sub.last_value
                first = sub.never_evaluated
                if not first and self._ckey(sub.spec, value) == self._ckey(
                    sub.spec, previous
                ):
                    continue
                sub.last_value = value
                event = (
                    "error"
                    if error is not None
                    else (
                        "threshold"
                        if sub.spec["kind"] == "threshold"
                        else "delta"
                    )
                )
                sub.publish(
                    {
                        "elements": elements,
                        "value": jsonable(value),
                        "previous": None if first else jsonable(previous),
                    },
                    event=event,
                )

    async def _stream(self, reader, writer, sub, headers: dict) -> None:
        """Serve one SSE connection until either side disconnects.

        Honors ``Last-Event-ID`` (replayed from the subscription's ring
        buffer), then forwards live events as they are published, with
        keep-alive comments on idle streams so proxies do not reap the
        connection.
        """
        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: text/event-stream\r\n"
            "Cache-Control: no-cache\r\n"
            "Connection: close\r\n\r\n"
        )
        queue = sub.attach_listener()
        self._stream_writers.add(writer)
        eof_task = asyncio.ensure_future(reader.read(1))
        get_task = None
        try:
            writer.write(head.encode("latin-1"))
            writer.write(
                render_sse_event(
                    json.dumps({"subscription": sub.sid}),
                    event="hello",
                    retry=_SSE_RETRY_MS,
                ).encode()
            )
            last_id = headers.get("last-event-id")
            if last_id is not None:
                try:
                    last = int(last_id)
                except ValueError:
                    last = None
                if last is not None:
                    for event_id, event, data in sub.replay_after(last):
                        writer.write(
                            render_sse_event(
                                data, event=event, id=event_id
                            ).encode()
                        )
            await writer.drain()
            while True:
                if get_task is None:
                    get_task = asyncio.ensure_future(queue.get())
                done, _ = await asyncio.wait(
                    {get_task, eof_task},
                    timeout=_SSE_KEEPALIVE,
                    return_when=asyncio.FIRST_COMPLETED,
                )
                if eof_task in done:
                    break  # client closed (or half-closed) its side
                if get_task in done:
                    event_id, event, data = get_task.result()
                    get_task = None
                    writer.write(
                        render_sse_event(
                            data, event=event, id=event_id
                        ).encode()
                    )
                else:
                    writer.write(b": keep-alive\n\n")
                await writer.drain()
        except (ConnectionError, OSError):
            pass
        finally:
            self._stream_writers.discard(writer)
            sub.detach_listener(queue)
            for task in (eof_task, get_task):
                if task is not None and not task.done():
                    task.cancel()


class GatewayThread:
    """Run a gateway (and its loop) on a background thread.

    For benchmarks, examples and tests that need a live HTTP endpoint
    inside one process::

        with GatewayThread(service) as gw:
            urllib.request.urlopen(gw.url + "/healthz")
    """

    def __init__(self, service: TrackingService, **gateway_kwargs):
        self.service = service
        self.gateway_kwargs = gateway_kwargs
        self.gateway: Optional[Gateway] = None
        self._loop = None
        self._thread = None

    def __enter__(self) -> "GatewayThread":
        import threading

        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="repro-gateway", daemon=True
        )
        self._thread.start()
        self.gateway = asyncio.run_coroutine_threadsafe(
            Gateway(self.service, **self.gateway_kwargs).start(), self._loop
        ).result(60)
        return self

    @property
    def url(self) -> str:
        return self.gateway.url

    def __exit__(self, *exc) -> None:
        asyncio.run_coroutine_threadsafe(
            self.gateway.close(), self._loop
        ).result(60)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=30)
        if not self._thread.is_alive():
            self._loop.close()
