"""Wire encoding of protocol messages and event runs.

Two payload families cross the distributed runtime's wire:

* **Protocol messages** (:class:`~repro.runtime.Message`): the kind tag
  and word count ride as-is; the payload — arbitrary immutable Python
  (tuples, floats, nested repro objects for shipped summaries) — goes
  through the persistence snapshot codec, so a decoded message compares
  ``==`` to the original and transcripts stay byte-identical across the
  wire.
* **Event runs** (the per-site chunks of an ingested batch): these reuse
  the write-ahead log's packed-int codec (base64 numpy arrays for all-int
  payloads, snapshot-coded values otherwise), so shipping a run costs the
  same as logging it.
"""

from __future__ import annotations

from ..persistence.codec import decode_value, encode_value
from ..persistence.wal import decode_items, encode_items
from ..runtime.protocol import Message

__all__ = [
    "encode_message",
    "decode_message",
    "encode_chunk",
    "decode_chunk",
]


def encode_message(message: Message) -> dict:
    """A :class:`Message` as a JSON-safe dict (payload snapshot-coded)."""
    return {
        "k": message.kind,
        "p": encode_value(message.payload),
        "w": message.words,
    }


def decode_message(obj: dict) -> Message:
    """Inverse of :func:`encode_message`; payload values round-trip."""
    return Message(obj["k"], decode_value(obj["p"]), obj["w"])


def encode_chunk(items) -> dict:
    """One run's item list as a JSON-safe dict (packed-int fast path)."""
    payload, coded = encode_items(items)
    return {"items": payload, "coded": coded}


def decode_chunk(obj: dict) -> list:
    """Inverse of :func:`encode_chunk`."""
    return decode_items(obj["items"], obj.get("coded", False))
