"""Wire encoding of protocol messages and event runs.

Two payload families cross the distributed runtime's wire:

* **Protocol messages** (:class:`~repro.runtime.Message`): the kind tag
  and word count ride as-is; the payload — arbitrary immutable Python
  (tuples, floats, nested repro objects for shipped summaries) — goes
  through the persistence snapshot codec, so a decoded message compares
  ``==`` to the original and transcripts stay byte-identical across the
  wire.
* **Event runs** (the per-site chunks of an ingested batch): shipped as
  plain item lists.  Serialization happens at the frame layer: the
  binary payload envelope (:func:`repro.net.frames.encode_payload`)
  lifts long numeric runs — and the number arrays inside snapshot-coded
  summaries — into raw typed blobs, so TCP byte volume is raw-array
  sized instead of JSON/base64 sized, and the loopback transport ships
  the lists with no serialization at all.
"""

from __future__ import annotations

from ..persistence.codec import decode_value, encode_value
from ..persistence.wal import _SCALAR_TYPES, decode_items
from ..runtime.protocol import Message

try:  # optional accelerator: columnar super-run chunks ride as arrays
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

__all__ = [
    "encode_message",
    "decode_message",
    "encode_chunk",
    "decode_chunk",
]


def encode_message(message: Message) -> dict:
    """A :class:`Message` as a JSON-safe dict (payload snapshot-coded)."""
    return {
        "k": message.kind,
        "p": encode_value(message.payload),
        "w": message.words,
    }


def decode_message(obj: dict) -> Message:
    """Inverse of :func:`encode_message`; payload values round-trip."""
    return Message(obj["k"], decode_value(obj["p"]), obj["w"])


def encode_chunk(items) -> dict:
    """One run's item list as a frame-ready dict.

    Count-style unit runs (``[1, 1, ...]``, what the run decomposition
    materializes for item-less streams) collapse to their length — O(1)
    wire bytes per run.  Other items ride as a plain list; the frame
    layer's binary envelope packs all-int / all-float runs into raw
    blobs on TCP.

    Columnar super-runs (typed numpy arrays from
    :func:`repro.exec.dispatch.coalesce_runs`) keep their array form:
    the unit-run collapse becomes one vectorized comparison and the
    frame layer packs the array via ``tobytes`` with no per-element
    walk.  :func:`decode_chunk` normalizes arrays back to plain lists,
    so sites see identical values on every transport.
    """
    if _np is not None and isinstance(items, _np.ndarray):
        kind = items.dtype.kind
        if kind in "iu":
            if items.size and bool((items == 1).all()):
                return {"unit": int(items.size)}
            return {"items": items}
        if kind == "f":
            return {"items": items}
        items = items.tolist()
    if not isinstance(items, list):
        items = list(items)
    if items and all(type(v) is int and v == 1 for v in items):
        return {"unit": len(items)}
    if set(map(type, items)) <= _SCALAR_TYPES:
        return {"items": items}
    # Rich items (tuples, e.g. labeled multi-tenant events) go through
    # the snapshot codec so JSON transports restore identical values.
    return {
        "items": [
            v if type(v) in _SCALAR_TYPES else encode_value(v)
            for v in items
        ],
        "coded": True,
    }


def decode_chunk(obj: dict) -> list:
    """Inverse of :func:`encode_chunk` (also reads the pre-binary
    base64 packed-int layout, flagged by a ``coded`` field)."""
    if "unit" in obj:
        return [1] * obj["unit"]
    if "coded" in obj:
        return decode_items(obj["items"], obj["coded"])
    items = obj["items"]
    if isinstance(items, list):
        return items
    if _np is not None and isinstance(items, _np.ndarray):
        # tolist() yields native Python scalars — schemes never see
        # numpy types, and loopback (no serialization) matches TCP.
        return items.tolist()
    return list(items)
