"""One-shot (k-party, single round) protocols — Section 1.3.

The paper observes that continuous tracking is only a Theta(log N)
factor harder than the one-shot versions of the frequency and rank
problems ([13, 14]), and *much* harder for count (whose one-shot version
is trivially exact at k words).  These implementations regenerate that
comparison (experiment E15).
"""

from .count import one_shot_count
from .frequency import OneShotFrequency
from .rank import OneShotRank

__all__ = ["one_shot_count", "OneShotFrequency", "OneShotRank"]
