"""One-shot distributed rank/quantile estimation ([13], Section 1.3).

Each site holds a static set of values; the coordinator wants any rank
within ``eps * n``.  The sampling algorithm of Huang et al. [13]:
each site sorts its data and ships a *systematic sample with a random
offset* — every ``s``-th element starting from a uniformly random
position, with spacing ``s = Theta(eps * n / sqrt(k))``.

For a query x, site i's local rank is estimated as ``s * c_i + r_i``
where ``c_i`` is the number of shipped values below x (the random offset
makes the within-stride residual uniform, hence the estimator unbiased
up to rounding, with variance ``s^2/12``).  Summing k sites:
variance ``k * s^2 / 12 = (eps n)^2 / 12`` — error ``eps*n`` w.c.p.
Communication: ``n / s = sqrt(k)/eps`` values plus ``k`` words for the
local counts.
"""

from __future__ import annotations

import bisect
import math
import random

__all__ = ["OneShotRank"]


class OneShotRank:
    """One round of the [13]-style systematic-sampling protocol."""

    def __init__(self, eps: float, rng: random.Random):
        if not 0.0 < eps < 1.0:
            raise ValueError("eps must be in (0, 1)")
        self.eps = eps
        self.rng = rng
        self._samples = []  # per site: (sorted sample list, spacing, count)
        self.words = 0
        self.n = 0
        self.k = 0

    def run(self, site_datasets) -> "OneShotRank":
        """Execute the protocol over per-site value lists."""
        datasets = [sorted(d) for d in site_datasets]
        self.k = len(datasets)
        self.n = sum(len(d) for d in datasets)
        self.words = self.k  # local counts
        if self.n == 0:
            return self
        spacing = max(1, int(self.eps * self.n / math.sqrt(self.k)))
        for values in datasets:
            if not values:
                self._samples.append(([], spacing, 0))
                continue
            offset = self.rng.randrange(spacing)
            sample = values[offset::spacing]
            self.words += len(sample)
            self._samples.append((sample, spacing, len(values)))
        return self

    def estimate_rank(self, x) -> float:
        """Estimate of |{v < x}| over the union of all sites."""
        rank = 0.0
        for sample, spacing, count in self._samples:
            if count == 0:
                continue
            below = bisect.bisect_left(sample, x)
            # below strides are fully below x; the random offset puts the
            # expected residual at (spacing - 1) / 2 per crossed stride.
            est = below * spacing
            rank += min(float(count), est)
        return rank

    def quantile(self, phi: float):
        """A value whose global rank is ~phi * n."""
        candidates = sorted(
            v for sample, _, _ in self._samples for v in sample
        )
        if not candidates:
            raise ValueError("no data")
        target = min(max(phi, 0.0), 1.0) * self.n
        lo, hi = 0, len(candidates) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self.estimate_rank(candidates[mid]) + 1 >= target:
                hi = mid
            else:
                lo = mid + 1
        return candidates[lo]
