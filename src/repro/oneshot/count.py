"""One-shot distributed count (Section 1.3).

In the k-party communication model the count problem is trivial: every
site ships its exact counter once — ``k`` messages, zero error.  The
point of implementing it is the paper's comparison: *tracking* the count
continuously costs ``Theta(sqrt(k)/eps * log N)``, i.e. the tracking
problem is genuinely harder than its one-shot version (for count, much
harder — the one-shot cost has no 1/eps or log N at all).
"""

from __future__ import annotations

__all__ = ["one_shot_count"]


def one_shot_count(local_counts) -> tuple:
    """Solve one-shot count exactly.

    Parameters
    ----------
    local_counts:
        Sequence of per-site counters ``n_i``.

    Returns
    -------
    (estimate, words):
        The exact total and the communication cost in words (one word
        per site).
    """
    counts = list(local_counts)
    return float(sum(counts)), len(counts)
