"""One-shot distributed frequency estimation ([14], Section 1.3).

Each site holds a static multiset; the coordinator wants every item's
global frequency within ``eps * n``.  The optimal randomized strategy
(Huang et al. [14]) is importance sampling of local counters: site ``i``
ships ``(j, f_ij)`` with probability ``pi_ij = min(1, f_ij * p)`` where
``p = sqrt(k) / (eps * n)``; the coordinator uses the Horvitz–Thompson
estimator ``f_hat_ij = f_ij / pi_ij`` for shipped pairs and 0 otherwise.

Per site the estimator is unbiased with variance at most ``f_ij / p <=
1/p^2 = (eps n / sqrt(k))^2``, so the k-site total has variance
``(eps n)^2`` — error ``eps*n`` with constant probability.  Expected
communication: ``sum min(1, f_ij p) <= n p = sqrt(k)/eps`` pairs, plus
``k`` words to learn ``n``.
"""

from __future__ import annotations

import math
import random

from ..runtime.rng import coin

__all__ = ["OneShotFrequency"]


class OneShotFrequency:
    """One round of the [14]-style importance-sampling protocol.

    Parameters
    ----------
    eps:
        Target additive error as a fraction of the global count.
    rng:
        Randomness source for the shipping coins.
    """

    def __init__(self, eps: float, rng: random.Random):
        if not 0.0 < eps < 1.0:
            raise ValueError("eps must be in (0, 1)")
        self.eps = eps
        self.rng = rng
        self._estimates = {}
        self.words = 0
        self.n = 0
        self.k = 0

    def run(self, site_datasets) -> "OneShotFrequency":
        """Execute the protocol over per-site item-count dicts."""
        datasets = [dict(d) for d in site_datasets]
        self.k = len(datasets)
        # Round 0: learn n exactly (k words).
        self.n = sum(sum(d.values()) for d in datasets)
        self.words = self.k
        if self.n == 0:
            return self
        p = min(1.0, math.sqrt(self.k) / (self.eps * self.n))
        for dataset in datasets:
            for item, count in dataset.items():
                pi = min(1.0, count * p)
                if coin(self.rng, pi):
                    self.words += 2  # (item, count)
                    self._estimates[item] = (
                        self._estimates.get(item, 0.0) + count / pi
                    )
        return self

    def estimate_frequency(self, item) -> float:
        """Unbiased global frequency estimate for ``item``."""
        return self._estimates.get(item, 0.0)

    def heavy_hitters(self, phi: float) -> dict:
        threshold = phi * self.n
        return {
            j: f for j, f in self._estimates.items() if f >= threshold
        }
