"""Greenwald–Khanna epsilon-approximate quantile summary [12].

Deterministic streaming summary answering any rank query within
``eps * n``.  Entries are ``(value, g, delta)`` tuples with the classic
invariants: ``sum(g)`` over the prefix gives the minimum rank of an entry,
``g + delta <= floor(2 * eps * n)`` after compression.
"""

from __future__ import annotations

import bisect
import math

from ..persistence.codec import PersistableState

__all__ = ["GKSummary"]


class GKSummary(PersistableState):
    """Greenwald–Khanna summary with error parameter ``eps``."""

    def __init__(self, eps: float):
        if not 0.0 < eps < 1.0:
            raise ValueError("eps must be in (0, 1)")
        self.eps = eps
        # Parallel arrays sorted by value: values[i], g[i], delta[i].
        self.values: list = []
        self.g: list = []
        self.delta: list = []
        self.n = 0
        self._since_compress = 0

    # -- updates -----------------------------------------------------------

    def add(self, value) -> None:
        """Insert one element."""
        self.n += 1
        idx = bisect.bisect_left(self.values, value)
        if idx == 0 or idx == len(self.values):
            delta = 0
        else:
            delta = max(0, int(math.floor(2 * self.eps * self.n)) - 1)
        self.values.insert(idx, value)
        self.g.insert(idx, 1)
        self.delta.insert(idx, delta)
        self._since_compress += 1
        if self._since_compress >= max(1, int(1.0 / (2 * self.eps))):
            self.compress()
            self._since_compress = 0

    def compress(self) -> None:
        """Merge adjacent entries while invariants allow."""
        if len(self.values) < 3:
            return
        cap = int(math.floor(2 * self.eps * self.n))
        values, g, delta = self.values, self.g, self.delta
        # Sweep right-to-left, merging entry i into i+1 when legal.
        i = len(values) - 2
        while i >= 1:
            if g[i] + g[i + 1] + delta[i + 1] <= cap:
                g[i + 1] += g[i]
                del values[i], g[i], delta[i]
            i -= 1

    # -- queries -----------------------------------------------------------

    def rank(self, x) -> float:
        """Estimate the rank of ``x`` (number of elements < x).

        Guaranteed within ``eps * n``: for x in (v_{i-1}, v_i] the true
        rank lies in [rmin_{i-1} - 1, rmin_i + delta_i - 1]; we return the
        midpoint, whose error is (g_i + delta_i)/2 <= eps * n.
        """
        if not self.values:
            return 0.0
        if x <= self.values[0]:
            return 0.0
        if x > self.values[-1]:
            return float(self.n)
        prev_rmin = 0
        rmin = 0
        for i, v in enumerate(self.values):
            rmin += self.g[i]
            if v >= x:
                lower = prev_rmin - 1
                upper = rmin + self.delta[i] - 1
                return max(0.0, (lower + upper) / 2.0)
            prev_rmin = rmin
        return float(self.n)

    def quantile(self, phi: float):
        """Return a value whose rank is within ``eps * n`` of ``phi * n``."""
        if not self.values:
            raise ValueError("summary is empty")
        phi = min(max(phi, 0.0), 1.0)
        target = phi * self.n
        bound = self.eps * self.n
        rmin = 0
        for i, v in enumerate(self.values):
            rmin += self.g[i]
            rmax = rmin + self.delta[i]
            if target - bound <= rmin and rmax <= target + bound:
                return v
            if rmin >= target:
                return v
        return self.values[-1]

    def space_words(self) -> int:
        return 3 * len(self.values) + 2

    def __len__(self) -> int:
        return len(self.values)
