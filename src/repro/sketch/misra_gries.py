"""Misra–Gries frequent-items summary [20].

Maintains at most ``capacity`` counters over a stream of items.  For any
item ``j``, the reported count undercounts the true frequency by at most
``n / (capacity + 1)`` where ``n`` is the stream length — the classic
deterministic heavy-hitters guarantee in ``O(1/eps)`` space.
"""

from __future__ import annotations

from ..persistence.codec import PersistableState

__all__ = ["MisraGries"]


class MisraGries(PersistableState):
    """Deterministic heavy-hitters summary with bounded undercount.

    Parameters
    ----------
    capacity:
        Maximum number of counters kept.  With ``capacity = ceil(1/eps)``
        the undercount of any item is at most ``eps * n``.
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.counters: dict = {}
        self.n = 0
        self.decrements = 0  # total decrement rounds applied

    def add(self, item, count: int = 1) -> None:
        """Process ``count`` occurrences of ``item``."""
        if count < 1:
            raise ValueError("count must be >= 1")
        self.n += count
        cur = self.counters.get(item)
        if cur is not None:
            self.counters[item] = cur + count
            return
        if len(self.counters) < self.capacity:
            self.counters[item] = count
            return
        # Decrement-all step.  The minimum counter bounds how far we can
        # decrement in one batch; repeat until the new item is absorbed.
        remaining = count
        while remaining > 0:
            if item in self.counters:
                self.counters[item] += remaining
                return
            if len(self.counters) < self.capacity:
                self.counters[item] = remaining
                return
            m = min(self.counters.values())
            dec = min(m, remaining)
            self.decrements += dec
            remaining -= dec
            self.counters = {
                j: c - dec for j, c in self.counters.items() if c > dec
            }

    def merge_from(self, other: "MisraGries") -> None:
        """Absorb another summary (the mergeable-summaries MG merge).

        Counter maps are summed key-wise; if more than ``capacity``
        counters survive, the ``(capacity + 1)``-th largest value is
        subtracted from every counter and non-positive ones dropped —
        one batched decrement round.  The merged undercount is at most
        ``(n_self + n_other) / (capacity + 1)``, i.e. merging preserves
        the summary's error guarantee over the concatenated stream
        (Agarwal et al., *Mergeable Summaries*).  Capacities must match.
        """
        if other.capacity != self.capacity:
            raise ValueError("capacities must match to merge")
        merged = dict(self.counters)
        for item, count in other.counters.items():
            merged[item] = merged.get(item, 0) + count
        self.n += other.n
        self.decrements += other.decrements
        if len(merged) > self.capacity:
            cut = sorted(merged.values(), reverse=True)[self.capacity]
            self.decrements += cut
            merged = {j: c - cut for j, c in merged.items() if c > cut}
        self.counters = merged

    def estimate(self, item) -> int:
        """Lower bound on the frequency of ``item``.

        The true frequency lies in ``[estimate, estimate + error_bound]``.
        """
        return self.counters.get(item, 0)

    def error_bound(self) -> float:
        """Maximum possible undercount for any item."""
        return self.n / (self.capacity + 1)

    def heavy_hitters(self, threshold: float):
        """Items whose *upper-bound* count reaches ``threshold``.

        Guaranteed to contain every item with true frequency
        >= threshold + error_bound().
        """
        bound = self.error_bound()
        return {
            j: c for j, c in self.counters.items() if c + bound >= threshold
        }

    def space_words(self) -> int:
        """Footprint: two words (item, count) per counter plus scalars."""
        return 2 * len(self.counters) + 2
