"""Sticky sampling counter list (Manku–Motwani [18]).

This is the per-site summary used inside the paper's frequency tracker
(Section 3.1): when an item arrives, an existing counter is always
incremented; a *new* counter is created only with probability ``p``.  The
expected number of counters after ``n`` arrivals is at most ``p * n``
(each distinct item contributes at most a geometric number of misses).

A created counter starts at 1 and counts *exactly* from that point on, so
``count = (true occurrences) - (occurrences missed before creation)``.
"""

from __future__ import annotations

import random

from ..runtime.rng import coin

from ..persistence.codec import PersistableState

__all__ = ["StickySampler"]


class StickySampler(PersistableState):
    """Probabilistic counter list with creation probability ``p``."""

    def __init__(self, p: float, rng: random.Random):
        if not 0.0 < p <= 1.0:
            raise ValueError("p must be in (0, 1]")
        self.p = p
        self.rng = rng
        self.counters: dict = {}
        self.n = 0

    def add(self, item) -> tuple:
        """Process one occurrence of ``item``.

        Returns ``(created, count)`` where ``created`` says whether a new
        counter was inserted by this arrival and ``count`` is the counter
        value afterwards (``0`` if the item is still untracked).
        """
        self.n += 1
        cur = self.counters.get(item)
        if cur is not None:
            self.counters[item] = cur + 1
            return False, cur + 1
        if coin(self.rng, self.p):
            self.counters[item] = 1
            return True, 1
        return False, 0

    def count(self, item) -> int:
        """Counter value for ``item`` (0 if untracked)."""
        return self.counters.get(item, 0)

    def clear(self) -> None:
        """Drop all counters (used at round boundaries)."""
        self.counters.clear()
        self.n = 0

    def space_words(self) -> int:
        return 2 * len(self.counters) + 2
