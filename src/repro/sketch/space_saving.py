"""SpaceSaving frequent-items summary (Metwally et al. [19]).

Keeps ``capacity`` (item, count, overestimate) triples.  Reported counts
*overestimate* the truth by at most ``n / capacity``; the per-item
``error`` field gives an item-specific bound.
"""

from __future__ import annotations

from ..persistence.codec import PersistableState

__all__ = ["SpaceSaving"]


class SpaceSaving(PersistableState):
    """Deterministic heavy-hitters summary with bounded overcount."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.counts: dict = {}
        self.errors: dict = {}
        self.n = 0

    def add(self, item, count: int = 1) -> None:
        """Process ``count`` occurrences of ``item``."""
        if count < 1:
            raise ValueError("count must be >= 1")
        self.n += count
        if item in self.counts:
            self.counts[item] += count
            return
        if len(self.counts) < self.capacity:
            self.counts[item] = count
            self.errors[item] = 0
            return
        # Evict the current minimum and inherit its count as error.
        victim = min(self.counts, key=self.counts.get)
        floor = self.counts.pop(victim)
        self.errors.pop(victim)
        self.counts[item] = floor + count
        self.errors[item] = floor

    def merge_from(self, other: "SpaceSaving") -> None:
        """Absorb another summary, keeping the overestimate guarantee.

        An item absent from one summary may still have occurred in that
        summary's stream up to its minimum stored count, so the merge
        credits absent items with that minimum as both count and error.
        The top ``capacity`` merged counts are kept; discarded items'
        true counts are below every survivor's upper bound.  The merged
        worst-case overcount is ``(n_self + n_other) / capacity``.
        Capacities must match.
        """
        if other.capacity != self.capacity:
            raise ValueError("capacities must match to merge")
        floor_self = (
            min(self.counts.values())
            if len(self.counts) >= self.capacity else 0
        )
        floor_other = (
            min(other.counts.values())
            if len(other.counts) >= other.capacity else 0
        )
        merged_counts: dict = {}
        merged_errors: dict = {}
        for item in set(self.counts) | set(other.counts):
            c_self = self.counts.get(item)
            c_other = other.counts.get(item)
            count = (c_self if c_self is not None else floor_self) + (
                c_other if c_other is not None else floor_other
            )
            error = (
                self.errors.get(item, floor_self)
                + other.errors.get(item, floor_other)
            )
            merged_counts[item] = count
            merged_errors[item] = error
        keep = sorted(
            merged_counts, key=merged_counts.get, reverse=True
        )[: self.capacity]
        self.counts = {j: merged_counts[j] for j in keep}
        self.errors = {j: merged_errors[j] for j in keep}
        self.n += other.n

    def estimate(self, item) -> int:
        """Upper bound on the frequency of ``item``.

        True frequency lies in ``[estimate - error(item), estimate]``.
        """
        return self.counts.get(item, 0)

    def guaranteed_count(self, item) -> int:
        """Lower bound on the frequency of ``item``."""
        if item not in self.counts:
            return 0
        return self.counts[item] - self.errors[item]

    def error_bound(self) -> float:
        """Worst-case overcount for any stored item."""
        return self.n / self.capacity

    def heavy_hitters(self, threshold: float):
        """All stored items whose estimate reaches ``threshold``.

        Contains every item with true frequency >= threshold (no false
        negatives among sufficiently heavy items).
        """
        return {j: c for j, c in self.counts.items() if c >= threshold}

    def space_words(self) -> int:
        return 3 * len(self.counts) + 2
