"""SpaceSaving frequent-items summary (Metwally et al. [19]).

Keeps ``capacity`` (item, count, overestimate) triples.  Reported counts
*overestimate* the truth by at most ``n / capacity``; the per-item
``error`` field gives an item-specific bound.
"""

from __future__ import annotations

from ..persistence.codec import PersistableState

__all__ = ["SpaceSaving"]


class SpaceSaving(PersistableState):
    """Deterministic heavy-hitters summary with bounded overcount."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.counts: dict = {}
        self.errors: dict = {}
        self.n = 0

    def add(self, item, count: int = 1) -> None:
        """Process ``count`` occurrences of ``item``."""
        if count < 1:
            raise ValueError("count must be >= 1")
        self.n += count
        if item in self.counts:
            self.counts[item] += count
            return
        if len(self.counts) < self.capacity:
            self.counts[item] = count
            self.errors[item] = 0
            return
        # Evict the current minimum and inherit its count as error.
        victim = min(self.counts, key=self.counts.get)
        floor = self.counts.pop(victim)
        self.errors.pop(victim)
        self.counts[item] = floor + count
        self.errors[item] = floor

    def estimate(self, item) -> int:
        """Upper bound on the frequency of ``item``.

        True frequency lies in ``[estimate - error(item), estimate]``.
        """
        return self.counts.get(item, 0)

    def guaranteed_count(self, item) -> int:
        """Lower bound on the frequency of ``item``."""
        if item not in self.counts:
            return 0
        return self.counts[item] - self.errors[item]

    def error_bound(self) -> float:
        """Worst-case overcount for any stored item."""
        return self.n / self.capacity

    def heavy_hitters(self, threshold: float):
        """All stored items whose estimate reaches ``threshold``.

        Contains every item with true frequency >= threshold (no false
        negatives among sufficiently heavy items).
        """
        return {j: c for j, c in self.counts.items() if c >= threshold}

    def space_words(self) -> int:
        return 3 * len(self.counts) + 2
