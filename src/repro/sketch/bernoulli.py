"""Bernoulli and binary-Bernoulli (level) samplers.

``BernoulliSampler`` keeps each element independently with probability
``p`` — the residual-block estimator of the rank tracker and the ``d``
stream of the frequency tracker both use it.

``LevelSampler`` assigns each element a geometric level
(``P(level >= j) = 2^-j``) and keeps elements at or above a moving
threshold — the engine of the distributed sampling baseline [9].
"""

from __future__ import annotations

import random

from ..runtime.rng import coin, trailing_level

from ..persistence.codec import PersistableState

__all__ = ["BernoulliSampler", "LevelSampler"]


class BernoulliSampler(PersistableState):
    """Keep each offered element independently with probability ``p``."""

    def __init__(self, p: float, rng: random.Random):
        if not 0.0 < p <= 1.0:
            raise ValueError("p must be in (0, 1]")
        self.p = p
        self.rng = rng
        self.sample: list = []
        self.n = 0

    def offer(self, item) -> bool:
        """Return True (and retain) with probability ``p``."""
        self.n += 1
        if coin(self.rng, self.p):
            self.sample.append(item)
            return True
        return False

    def estimate_count(self) -> float:
        """Unbiased estimate of the number of offered elements."""
        return len(self.sample) / self.p

    def space_words(self) -> int:
        return len(self.sample) + 2


class LevelSampler(PersistableState):
    """Binary-Bernoulli sampler with an adjustable level threshold.

    Elements are stored as ``(item, level)``.  ``raise_level`` discards
    elements below the new threshold; surviving elements are a Bernoulli
    ``2^-level`` sample of everything offered.
    """

    def __init__(self, rng: random.Random, level: int = 0):
        self.rng = rng
        self.level = level
        self.sample: list = []
        self.n = 0

    def draw_level(self) -> int:
        """Sample the geometric level for a fresh element."""
        return trailing_level(self.rng)

    def offer(self, item) -> int:
        """Assign a level; retain if it clears the threshold.

        Returns the assigned level (callers forward qualifying elements).
        """
        self.n += 1
        lvl = self.draw_level()
        if lvl >= self.level:
            self.sample.append((item, lvl))
        return lvl

    def admit(self, item, lvl: int) -> None:
        """Store an element whose level was drawn elsewhere."""
        if lvl >= self.level:
            self.sample.append((item, lvl))

    def raise_level(self, new_level: int) -> None:
        """Increase the threshold, subsampling the retained set."""
        if new_level < self.level:
            raise ValueError("level can only increase")
        self.level = new_level
        self.sample = [(x, l) for (x, l) in self.sample if l >= new_level]

    def estimate_count(self) -> float:
        """Unbiased estimate of the number of offered elements."""
        return len(self.sample) * float(2**self.level)

    def space_words(self) -> int:
        return 2 * len(self.sample) + 2
