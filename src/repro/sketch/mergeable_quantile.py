"""Unbiased mergeable quantile summary (random-merge buffers).

This is the stand-in for "algorithm A" of Section 4 — the unbiased rank
summary of Suri et al. [24] / Agarwal et al. [1] ("Mergeable summaries").
It maintains equal-size buffers at geometric weights; two same-level
buffers are merged by merge-sorting and keeping either the odd- or
even-indexed elements with probability 1/2 each.  Rank estimates are
*unbiased* and their standard error over ``n`` elements with buffer size
``m`` is ``O((n/m) * sqrt(log(n/m)))``.

The builder ingests a stream; :meth:`finalize` freezes it into a compact
:class:`QuantileSummary` of ``(value, weight)`` pairs supporting O(log s)
rank queries.
"""

from __future__ import annotations

import bisect
import math
import random

from ..persistence.codec import PersistableState

__all__ = ["QuantileSketchBuilder", "QuantileSummary"]


class QuantileSummary(PersistableState):
    """Immutable weighted sample supporting unbiased rank queries."""

    def __init__(self, values, weights):
        """``values`` must be sorted; ``weights`` aligned with it."""
        self.values = list(values)
        self.weights = list(weights)
        # Prefix sums: cum[i] = total weight of values[:i].
        self._cum = [0.0]
        for w in self.weights:
            self._cum.append(self._cum[-1] + w)
        self.total_weight = self._cum[-1]

    def rank(self, x) -> float:
        """Estimated number of summarized elements smaller than ``x``."""
        idx = bisect.bisect_left(self.values, x)
        return self._cum[idx]

    def quantile(self, phi: float):
        """Smallest stored value whose estimated rank reaches ``phi * W``."""
        if not self.values:
            raise ValueError("empty summary")
        target = min(max(phi, 0.0), 1.0) * self.total_weight
        lo, hi = 0, len(self.values) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self._cum[mid + 1] >= target:
                hi = mid
            else:
                lo = mid + 1
        return self.values[lo]

    def size_words(self) -> int:
        """Shipping cost: one word per value plus one per distinct weight run."""
        return len(self.values) + 2

    def __len__(self) -> int:
        return len(self.values)


def _random_halve(merged, rng: random.Random):
    """Keep odd- or even-indexed elements of a sorted list, at random."""
    offset = 1 if rng.random() < 0.5 else 0
    return merged[offset::2]


def _merge_sorted(a, b):
    """Merge two sorted lists."""
    out = []
    i = j = 0
    while i < len(a) and j < len(b):
        if a[i] <= b[j]:
            out.append(a[i])
            i += 1
        else:
            out.append(b[j])
            j += 1
    out.extend(a[i:])
    out.extend(b[j:])
    return out


class QuantileSketchBuilder(PersistableState):
    """Streaming builder for :class:`QuantileSummary`.

    Parameters
    ----------
    buffer_size:
        Elements per buffer (``m``).  Larger means more accurate and
        bigger summaries.
    rng:
        Source of the random odd/even merge choices.
    """

    def __init__(self, buffer_size: int, rng: random.Random):
        if buffer_size < 1:
            raise ValueError("buffer_size must be >= 1")
        self.m = buffer_size
        self.rng = rng
        self._partial: list = []  # raw, unsorted level-0 intake
        self._buffers: dict = {}  # level -> list of sorted buffers
        self.n = 0

    @classmethod
    def for_error(cls, n_max: int, abs_error: float, rng: random.Random):
        """Builder sized so the rank std-error over ``n_max`` elements
        is approximately ``abs_error``.

        The random-halving merge at weight ``w`` adds zero-mean rank error
        with variance <= w^2/4; summing the geometric series over all
        merges gives a standard error of about ``n / (2.8 m)``, so we pick
        ``m ~ 0.4 n / err``.  ``m`` is then rounded so ``n_max / m`` is a
        power of two: after exactly ``n_max`` insertions all buffers
        consolidate into a *single* top buffer, and the finalized summary
        has ~m entries instead of ~m log(n/m).
        """
        if abs_error <= 0:
            raise ValueError("abs_error must be positive")
        ratio = max(1.0, n_max / abs_error)
        m0 = max(4, int(math.ceil(0.4 * ratio)))
        if n_max <= 4 * m0:
            # Small node: keep it exact (no merges ever happen).
            return cls(max(4, n_max), rng)
        if n_max & (n_max - 1) == 0:
            # n_max is a power of two (the rank tracker arranges this):
            # a power-of-two m makes n_max / m a power of two, so the
            # binary counter of buffers collapses to a single top buffer.
            m = 1 << int(math.ceil(math.log2(m0)))
            return cls(min(m, n_max), rng)
        s = int(math.floor(math.log2(n_max / m0)))
        m = int(math.ceil(n_max / (1 << s)))
        return cls(max(4, m), rng)

    # -- updates -----------------------------------------------------------

    def add(self, value) -> None:
        """Insert one element."""
        self.n += 1
        self._partial.append(value)
        if len(self._partial) >= self.m:
            self._partial.sort()
            self._push(0, self._partial)
            self._partial = []

    def _push(self, level: int, buf) -> None:
        """Add a sorted buffer at ``level``, carrying merges upward."""
        while True:
            stack = self._buffers.setdefault(level, [])
            if not stack:
                stack.append(buf)
                return
            other = stack.pop()
            merged = _merge_sorted(other, buf)
            buf = _random_halve(merged, self.rng)
            level += 1

    def merge_from(self, other: "QuantileSketchBuilder") -> None:
        """Absorb another builder with the same ``m`` (mergeability)."""
        if other.m != self.m:
            raise ValueError("buffer sizes must match to merge")
        self.n += other.n
        for level in sorted(other._buffers):
            for buf in other._buffers[level]:
                self._push(level, list(buf))
        for v in other._partial:
            self._partial.append(v)
            if len(self._partial) >= self.m:
                self._partial.sort()
                self._push(0, self._partial)
                self._partial = []

    # -- queries -----------------------------------------------------------

    def finalize(self) -> QuantileSummary:
        """Freeze into a compact weighted-sample summary.

        The partial buffer is kept exactly (weight 1), so summaries of
        short streams are lossless.
        """
        pairs = [(v, 1.0) for v in self._partial]
        for level, stack in self._buffers.items():
            w = float(1 << level)
            for buf in stack:
                pairs.extend((v, w) for v in buf)
        pairs.sort(key=lambda t: t[0])
        values = [v for v, _ in pairs]
        weights = [w for _, w in pairs]
        return QuantileSummary(values, weights)

    def rank(self, x) -> float:
        """Rank estimate straight from the builder (used by tests)."""
        est = sum(1 for v in self._partial if v < x)
        for level, stack in self._buffers.items():
            w = 1 << level
            for buf in stack:
                est += w * bisect.bisect_left(buf, x)
        return float(est)

    def space_words(self) -> int:
        words = len(self._partial) + 3
        for stack in self._buffers.values():
            for buf in stack:
                words += len(buf) + 1
        return words
