"""Streaming summaries used as substrates by the tracking protocols."""

from .bernoulli import BernoulliSampler, LevelSampler
from .gk import GKSummary
from .mergeable_quantile import QuantileSketchBuilder, QuantileSummary
from .misra_gries import MisraGries
from .reservoir import ReservoirSampler
from .space_saving import SpaceSaving
from .sticky_sampling import StickySampler

__all__ = [
    "BernoulliSampler",
    "LevelSampler",
    "GKSummary",
    "QuantileSketchBuilder",
    "QuantileSummary",
    "MisraGries",
    "ReservoirSampler",
    "SpaceSaving",
    "StickySampler",
]
