"""Classic reservoir sampling (Vitter's algorithm R)."""

from __future__ import annotations

import random

from ..persistence.codec import PersistableState

__all__ = ["ReservoirSampler"]


class ReservoirSampler(PersistableState):
    """Uniform sample without replacement of fixed size over a stream."""

    def __init__(self, size: int, rng: random.Random):
        if size < 1:
            raise ValueError("size must be >= 1")
        self.size = size
        self.rng = rng
        self.sample: list = []
        self.n = 0

    def add(self, item) -> None:
        """Offer one stream element to the reservoir."""
        self.n += 1
        if len(self.sample) < self.size:
            self.sample.append(item)
            return
        j = self.rng.randrange(self.n)
        if j < self.size:
            self.sample[j] = item

    def space_words(self) -> int:
        return len(self.sample) + 2
