"""Exponential histogram (Datar–Gionis–Indyk–Motwani) for window counts.

Maintains a (1+eps)-approximate count of how many events fell in the
last ``window`` time units, using ``O((1/eps) log(eps * W))`` buckets of
power-of-two sizes.  The classic sliding-window substrate; used by the
windowed count tracker (`repro.core.window`), our implementation of the
related-work setting the paper cites as [5].
"""

from __future__ import annotations

import math
from collections import deque

from ..persistence.codec import PersistableState

__all__ = ["ExponentialHistogram"]


class ExponentialHistogram(PersistableState):
    """Approximate count of events within a sliding time window.

    Parameters
    ----------
    window:
        Window length in time units (events older than ``now - window``
        no longer count).
    eps:
        Relative error target; at most ``ceil(1/eps) + 1`` buckets of
        each power-of-two size are kept, so the oldest (half-counted)
        bucket is at most an eps-fraction of the window count.
    """

    def __init__(self, window: int, eps: float):
        if window < 1:
            raise ValueError("window must be >= 1")
        if not 0.0 < eps < 1.0:
            raise ValueError("eps must be in (0, 1)")
        self.window = window
        self.eps = eps
        self.cap = int(math.ceil(1.0 / eps)) + 1
        # Buckets newest-first: (newest timestamp in bucket, size).
        self.buckets: deque = deque()
        self.last_time = None

    def add(self, timestamp) -> None:
        """Record one event at ``timestamp`` (non-decreasing)."""
        if self.last_time is not None and timestamp < self.last_time:
            raise ValueError("timestamps must be non-decreasing")
        self.last_time = timestamp
        self.expire(timestamp)
        self.buckets.appendleft([timestamp, 1])
        # Cascade merges: more than cap buckets of a size -> merge the
        # two oldest of that size into one of double size.
        size = 1
        while True:
            idx = [i for i, b in enumerate(self.buckets) if b[1] == size]
            if len(idx) <= self.cap:
                break
            second_oldest, oldest = idx[-2], idx[-1]
            merged_time = self.buckets[second_oldest][0]
            self.buckets[second_oldest] = [merged_time, 2 * size]
            del self.buckets[oldest]
            size *= 2

    def expire(self, now) -> None:
        """Drop buckets entirely older than the window."""
        cutoff = now - self.window
        while self.buckets and self.buckets[-1][0] <= cutoff:
            self.buckets.pop()

    def estimate(self, now=None) -> float:
        """Approximate number of events in ``(now - window, now]``.

        The oldest surviving bucket straddles the boundary; counting
        half of it bounds the relative error by ``eps``.
        """
        if now is None:
            now = self.last_time
        if now is None or not self.buckets:
            return 0.0
        self.expire(now)
        if not self.buckets:
            return 0.0
        total = sum(size for _, size in self.buckets)
        oldest = self.buckets[-1][1]
        return total - oldest / 2.0

    def snapshot(self) -> tuple:
        """Immutable copy of the bucket list, for shipping."""
        return tuple((t, s) for t, s in self.buckets)

    @staticmethod
    def estimate_from_snapshot(snapshot, now, window) -> float:
        """Evaluate a shipped snapshot at a (possibly later) time.

        Expiry is computable from the bucket timestamps alone, so a
        coordinator can age a site's snapshot without extra messages.
        """
        cutoff = now - window
        alive = [(t, s) for t, s in snapshot if t > cutoff]
        if not alive:
            return 0.0
        total = sum(s for _, s in alive)
        return total - alive[-1][1] / 2.0

    def space_words(self) -> int:
        return 2 * len(self.buckets) + 3
