"""Abstract base class for protocol coordinators."""

from __future__ import annotations

from abc import ABC, abstractmethod

from ..persistence.codec import PersistableState
from .network import Network
from .protocol import Message

__all__ = ["Coordinator"]


class Coordinator(PersistableState, ABC):
    """The central party that continuously maintains the tracked function.

    Subclasses implement :meth:`on_message` plus one or more query methods
    (``estimate()``, ``estimate_frequency(item)``, ``estimate_rank(x)``,
    ...), and report their memory footprint through :meth:`space_words`.
    ``state_dict()``/``load_state_dict()`` snapshot everything except the
    network wiring.
    """

    #: attributes rebuilt by constructors/wiring, never snapshotted
    _persist_transient_ = ("network",)

    def __init__(self, network: Network):
        self.network = network

    @abstractmethod
    def on_message(self, site_id: int, message: Message) -> None:
        """Handle a message arriving from site ``site_id``."""

    def space_words(self) -> int:
        """Coordinator working-space footprint, in words (optional)."""
        return 0

    # -- helpers ------------------------------------------------------------

    def send_to(self, site_id: int, kind: str, payload=None, words: int = 1) -> None:
        """Send a message to one site."""
        self.network.send_to_site(site_id, Message(kind, payload, words))

    def broadcast(self, kind: str, payload=None, words: int = 1) -> None:
        """Send a message to every site (costs k messages)."""
        self.network.broadcast(Message(kind, payload, words))
