"""Message types exchanged between sites and the coordinator.

The paper's cost model charges communication in *words*: any counter value
below N, or one stream element, fits in a single word.  Each ``Message``
therefore carries an explicit word count; senders are responsible for
setting it to the number of words a real implementation would ship.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["Message", "UPLINK", "DOWNLINK", "BROADCAST"]

UPLINK = "uplink"  # site -> coordinator
DOWNLINK = "downlink"  # coordinator -> one site
BROADCAST = "broadcast"  # coordinator -> all sites (costs k messages)


@dataclass(frozen=True)
class Message:
    """A single protocol message.

    Parameters
    ----------
    kind:
        Protocol-specific tag, e.g. ``"update"`` or ``"round"``.
    payload:
        Arbitrary immutable content (tuples preferred).
    words:
        Size charged by the accounting model, in words.  Defaults to 1.
    """

    kind: str
    payload: Any = None
    words: int = 1

    def __post_init__(self):
        if self.words < 0:
            raise ValueError("message size cannot be negative")
