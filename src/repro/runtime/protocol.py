"""Message types exchanged between sites and the coordinator.

The paper's cost model charges communication in *words*: any counter value
below N, or one stream element, fits in a single word.  Each ``Message``
therefore carries an explicit word count; senders are responsible for
setting it to the number of words a real implementation would ship.
"""

from __future__ import annotations

from collections import namedtuple

__all__ = ["Message", "UPLINK", "DOWNLINK", "BROADCAST"]

UPLINK = "uplink"  # site -> coordinator
DOWNLINK = "downlink"  # coordinator -> one site
BROADCAST = "broadcast"  # coordinator -> all sites (costs k messages)

_MessageBase = namedtuple("_MessageBase", ["kind", "payload", "words"])


class Message(_MessageBase):
    """A single protocol message.

    An immutable (kind, payload, words) triple.  Built on a namedtuple
    rather than a frozen dataclass because construction sits on the
    ingestion hot path — one object per protocol message — and tuple
    construction is ~2x cheaper.

    Parameters
    ----------
    kind:
        Protocol-specific tag, e.g. ``"update"`` or ``"round"``.
    payload:
        Arbitrary immutable content (tuples preferred).
    words:
        Size charged by the accounting model, in words.  Defaults to 1.
    """

    __slots__ = ()

    def __new__(cls, kind: str, payload=None, words: int = 1):
        if words < 0:
            raise ValueError("message size cannot be negative")
        return _MessageBase.__new__(cls, kind, payload, words)
