"""Seeded, splittable random-number utilities.

Every protocol component in this library draws randomness from a
``random.Random`` instance derived deterministically from a root seed and a
string path (e.g. ``("site", 3)``).  This makes whole simulations
reproducible while keeping per-component streams independent.
"""

from __future__ import annotations

import hashlib
import math
import random

__all__ = [
    "derive_rng",
    "derive_seed",
    "geometric_failures",
    "coin",
    "trailing_level",
]

_MASK64 = (1 << 64) - 1


def _mix(root_seed: int, path: tuple) -> int:
    """Hash a root seed and a path of labels into a 64-bit child seed."""
    h = hashlib.blake2b(digest_size=8)
    h.update(str(root_seed).encode())
    for part in path:
        h.update(b"/")
        h.update(str(part).encode())
    return int.from_bytes(h.digest(), "big") & _MASK64


def derive_seed(root_seed: int, *path) -> int:
    """Return a 64-bit child seed derived from ``root_seed`` and ``path``.

    Used wherever an *integer* seed (rather than a generator) must be
    handed to an independent component — e.g. each job registered with a
    :class:`~repro.service.TrackingService` gets its own protocol seed
    derived from the service seed and the job name.
    """
    return _mix(root_seed, tuple(path))


def derive_rng(root_seed: int, *path) -> random.Random:
    """Return a ``random.Random`` seeded from ``root_seed`` and ``path``.

    The same ``(root_seed, path)`` always yields the same stream, and
    distinct paths yield (cryptographically) independent streams.
    """
    return random.Random(_mix(root_seed, tuple(path)))


def coin(rng: random.Random, p: float) -> bool:
    """Flip a coin that lands heads with probability ``p``."""
    if p >= 1.0:
        return True
    if p <= 0.0:
        return False
    return rng.random() < p


def geometric_failures(rng: random.Random, p: float) -> int:
    """Number of failed Bernoulli(p) trials before the first success.

    Sampled in O(1) by inversion.  ``p`` must be in (0, 1].  For ``p == 1``
    the answer is always 0.
    """
    if p >= 1.0:
        return 0
    if p <= 0.0:
        raise ValueError("geometric_failures requires p > 0")
    u = rng.random()
    # Guard against log(0); u == 0.0 has probability ~2^-53 anyway.
    if u <= 0.0:
        u = 5e-324
    return int(math.log(u) / math.log1p(-p))


def trailing_level(rng: random.Random) -> int:
    """Sample a geometric "level": the number of fair-coin heads in a row.

    ``P(level >= j) = 2^{-j}``, used by binary-Bernoulli samplers.
    """
    level = 0
    while rng.random() < 0.5:
        level += 1
    return level
