"""Communication and space accounting.

``CommStats`` counts every message routed through the :class:`Network`,
split by direction.  A broadcast is charged ``k`` messages and ``k * words``
words, exactly as in the paper's model ("broadcasting a message costs k
times the communication for a single message").

``SpaceStats`` records per-site space samples (in words) taken by the
simulation loop, keeping the running maximum per site.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..persistence.codec import PersistableState

__all__ = ["CommStats", "SpaceStats"]


@dataclass
class CommStats(PersistableState):
    """Running totals of messages and words, split by direction.

    ``state_dict()``/``load_state_dict()`` persist the ledger for
    service snapshots.
    """

    uplink_messages: int = 0
    uplink_words: int = 0
    downlink_messages: int = 0
    downlink_words: int = 0
    broadcast_messages: int = 0
    broadcast_words: int = 0

    @property
    def total_messages(self) -> int:
        return self.uplink_messages + self.downlink_messages + self.broadcast_messages

    @property
    def total_words(self) -> int:
        return self.uplink_words + self.downlink_words + self.broadcast_words

    def record_uplink(self, words: int) -> None:
        self.uplink_messages += 1
        self.uplink_words += words

    def record_downlink(self, words: int) -> None:
        self.downlink_messages += 1
        self.downlink_words += words

    def record_broadcast(self, words: int, k: int) -> None:
        self.broadcast_messages += k
        self.broadcast_words += words * k

    def as_metrics(self) -> dict:
        """The ledger as flat metric-name/value pairs.

        The uniform stats surface: :class:`SpaceStats` exposes the same
        method, so registries and status payloads consume either
        without per-call-site key translation.
        """
        return {
            "uplink_messages": self.uplink_messages,
            "uplink_words": self.uplink_words,
            "downlink_messages": self.downlink_messages,
            "downlink_words": self.downlink_words,
            "broadcast_messages": self.broadcast_messages,
            "broadcast_words": self.broadcast_words,
            "total_messages": self.total_messages,
            "total_words": self.total_words,
        }

    def snapshot(self) -> dict:
        """A plain-dict copy, handy for tables and asserts."""
        return self.as_metrics()


@dataclass
class SpaceStats(PersistableState):
    """Per-site space high-water marks, in words.

    ``state_dict()``/``load_state_dict()`` persist the marks for
    service snapshots.
    """

    max_words_per_site: dict = field(default_factory=dict)
    coordinator_max_words: int = 0

    def record_site(self, site_id: int, words: int) -> None:
        cur = self.max_words_per_site.get(site_id, 0)
        if words > cur:
            self.max_words_per_site[site_id] = words

    def record_coordinator(self, words: int) -> None:
        if words > self.coordinator_max_words:
            self.coordinator_max_words = words

    @property
    def max_site_words(self) -> int:
        """The largest space ever used by any single site."""
        if not self.max_words_per_site:
            return 0
        return max(self.max_words_per_site.values())

    @property
    def mean_site_words(self) -> float:
        """Mean over sites of each site's high-water mark."""
        if not self.max_words_per_site:
            return 0.0
        vals = self.max_words_per_site.values()
        return sum(vals) / len(vals)

    def as_metrics(self) -> dict:
        """The high-water marks as flat metric-name/value pairs.

        Key names match the job-status ``space.used`` payload (the
        ``coordinator_max_words`` field travels as
        ``coordinator_words``), so status building and registry
        bridging share one translation, here.
        """
        return {
            "max_site_words": self.max_site_words,
            "mean_site_words": self.mean_site_words,
            "coordinator_words": self.coordinator_max_words,
        }
