"""Order-preserving batch decomposition for the ingestion fast path.

The per-event driving loop (`Simulation.process`) pays Python call
overhead and space-ledger bookkeeping on every element.  The batched path
instead splits an ordered batch of ``(site_id, item)`` events into *runs*
— maximal stretches of consecutive events bound for the same site — and
hands each run to :meth:`repro.runtime.Site.on_elements` in one call.

Global arrival order is preserved exactly: runs are emitted in stream
order and a run never spans a site change.  Protocol transcripts (every
message, every RNG draw) are therefore identical to per-event driving,
which is what makes batched ingestion safe for round-based protocols
whose behaviour depends on the interleaving across sites.

The decomposition is computed once per batch, so a multi-tenant service
amortizes it over every registered job.  numpy is used when available
(boundary detection on arrays is ~100x faster than a Python loop) but is
not required.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

# The run dispatcher lives on the shared execution plane now
# (:mod:`repro.exec.dispatch`); re-exported here because the batching
# module is where every driving layer historically imported it from.
from ..exec.dispatch import drive_runs

try:  # gate: keep the runtime importable on numpy-less installs
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

__all__ = ["decompose_runs", "batch_from_stream", "drive_runs"]


def batch_from_stream(stream) -> Tuple[list, list]:
    """Materialize an iterable of ``(site_id, item)`` pairs as two lists.

    Convenience for feeding existing workload generators into the batched
    APIs: ``sim.run_batched(*batch_from_stream(uniform_sites(n, k)))``.
    """
    site_ids: list = []
    items: list = []
    append_site = site_ids.append
    append_item = items.append
    for site_id, item in stream:
        append_site(site_id)
        append_item(item)
    return site_ids, items


def _item_list(items, n: int) -> Optional[list]:
    """Normalize the item carrier to a plain list (or None for count-style
    streams, where every element is the unit item ``1``)."""
    if items is None:
        return None
    if _np is not None and isinstance(items, _np.ndarray):
        items = items.tolist()
    elif not isinstance(items, list):
        items = list(items)
    if len(items) != n:
        raise ValueError(
            f"site_ids and items length mismatch: {n} vs {len(items)}"
        )
    return items


def decompose_runs(
    site_ids: Sequence[int], items=None
) -> List[Tuple[int, list]]:
    """Split an ordered event batch into per-site runs.

    Parameters
    ----------
    site_ids:
        Destination site of each event, in arrival order.  A numpy integer
        array or any sequence of ints.
    items:
        The event payloads, same length as ``site_ids``, or None for
        count-style streams (each run then carries ``[1] * run_length``).

    Returns
    -------
    list of ``(site_id, run_items)`` preserving global arrival order;
    concatenating the runs reproduces the input batch exactly.
    """
    if _np is not None and isinstance(site_ids, _np.ndarray):
        n = int(site_ids.shape[0])
        if n == 0:
            return []
        change = _np.flatnonzero(site_ids[1:] != site_ids[:-1])
        starts = _np.concatenate(([0], change + 1)).tolist()
        run_sites = site_ids[starts].tolist()
        ends = starts[1:] + [n]
        item_list = _item_list(items, n)
        if item_list is None:
            return [
                (s, [1] * (b - a))
                for s, a, b in zip(run_sites, starts, ends)
            ]
        return [
            (s, item_list[a:b]) for s, a, b in zip(run_sites, starts, ends)
        ]

    sids = site_ids if isinstance(site_ids, list) else list(site_ids)
    n = len(sids)
    if n == 0:
        return []
    item_list = _item_list(items, n)
    runs: List[Tuple[int, list]] = []
    i = 0
    while i < n:
        site = sids[i]
        j = i + 1
        while j < n and sids[j] == site:
            j += 1
        chunk = [1] * (j - i) if item_list is None else item_list[i:j]
        runs.append((int(site), chunk))
        i = j
    return runs
