"""Abstract base class for protocol sites."""

from __future__ import annotations

from abc import ABC, abstractmethod

from ..persistence.codec import PersistableState
from .network import Network
from .protocol import Message

__all__ = ["Site"]


class Site(PersistableState, ABC):
    """One of the ``k`` distributed sites receiving a local stream.

    Subclasses implement :meth:`on_element` (a new stream element arrived
    locally) and :meth:`on_message` (the coordinator sent us something),
    and report their memory footprint through :meth:`space_words`.
    ``state_dict()``/``load_state_dict()`` snapshot everything except the
    network wiring — counters, sketches, RNG streams — so a freshly
    constructed site resumes the exact transcript.
    """

    #: attributes rebuilt by constructors/wiring, never snapshotted
    _persist_transient_ = ("network",)

    def __init__(self, site_id: int, network: Network):
        self.site_id = site_id
        self.network = network

    # -- protocol hooks ---------------------------------------------------

    @abstractmethod
    def on_element(self, item) -> None:
        """Process one element of the local stream."""

    def on_elements(self, items) -> None:
        """Process a contiguous run of local elements (batched fast path).

        ``items`` is a sized sequence delivered in arrival order.  The
        default is a tight loop over :meth:`on_element`; subclasses may
        override with a faster implementation, but it MUST be *exactly*
        equivalent — same messages, same RNG consumption — so batched and
        per-event driving produce identical transcripts from the same seed.
        """
        on_element = self.on_element
        for item in items:
            on_element(item)

    def on_message(self, message: Message) -> None:
        """Handle a message from the coordinator.  Default: ignore."""

    # -- accounting --------------------------------------------------------

    @abstractmethod
    def space_words(self) -> int:
        """Current working-space footprint, in words."""

    # -- helpers ------------------------------------------------------------

    def send(self, kind: str, payload=None, words: int = 1) -> None:
        """Send a message to the coordinator."""
        self.network.send_to_coordinator(
            self.site_id, Message(kind, payload, words)
        )
