"""Simulation driver: feeds a stream of (site, item) events to a scheme.

The driver owns the network, instantiates the scheme, and exposes the
coordinator's query interface together with the communication and space
ledgers.  Space is sampled every ``space_sample_interval`` events (exact
high-water marks would require sampling after every message; the interval
is a measurement cost knob, not a protocol knob).
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from ..exec.dispatch import drive_runs
from .batching import decompose_runs
from .metrics import SpaceStats
from .network import Network
from .scheme import TrackingScheme

__all__ = ["Simulation"]


class Simulation:
    """Drive a :class:`TrackingScheme` over a stream of events.

    Parameters
    ----------
    scheme:
        Factory for the protocol under test.
    num_sites:
        Number of distributed sites, ``k``.
    seed:
        Root seed; all protocol randomness derives from it.
    one_way:
        If True, the network rejects coordinator-to-site traffic
        (the Theorem 2.2 model).
    uplink_drop_rate:
        Fault injection: fraction of uplink messages lost in transit
        (charged but not delivered).  Default 0 (the paper's model).
    space_sample_interval:
        Sample per-site space every this many processed elements.
    """

    def __init__(
        self,
        scheme: TrackingScheme,
        num_sites: int,
        seed: int = 0,
        one_way: bool = False,
        space_sample_interval: int = 64,
        uplink_drop_rate: float = 0.0,
    ):
        self.scheme = scheme
        self.num_sites = num_sites
        self.network = Network(
            num_sites,
            one_way=one_way,
            uplink_drop_rate=uplink_drop_rate,
            drop_seed=seed ^ 0x5EED,
        )
        self.coordinator = scheme.make_coordinator(self.network, num_sites, seed)
        self.sites = [
            scheme.make_site(self.network, site_id, num_sites, seed)
            for site_id in range(num_sites)
        ]
        self.network.bind(self.coordinator, self.sites)
        self.space = SpaceStats()
        self.space_sample_interval = max(1, space_sample_interval)
        self.elements_processed = 0
        # Which site received each element is only needed for space
        # sampling of the *active* site; we sample all sites periodically.

    # -- driving the stream ----------------------------------------------

    def process(self, site_id: int, item) -> None:
        """Deliver one element to ``site_id`` and do bookkeeping."""
        site = self.sites[site_id]
        site.on_element(item)
        self.elements_processed += 1
        # Cheap per-event sample of the receiving site, full sweep rarely.
        self.space.record_site(site_id, site.space_words())
        if self.elements_processed % self.space_sample_interval == 0:
            self.sample_space()

    def run(
        self,
        stream: Iterable,
        checkpoint_every: Optional[int] = None,
        on_checkpoint: Optional[Callable[["Simulation", int], None]] = None,
    ) -> None:
        """Process an iterable of ``(site_id, item)`` pairs.

        ``on_checkpoint(sim, elements_processed)`` is invoked every
        ``checkpoint_every`` elements — used by accuracy experiments to
        compare the coordinator's estimate against ground truth mid-stream.
        """
        for site_id, item in stream:
            self.process(site_id, item)
            if (
                checkpoint_every
                and on_checkpoint is not None
                and self.elements_processed % checkpoint_every == 0
            ):
                on_checkpoint(self, self.elements_processed)

    def run_batched(self, site_ids, items=None) -> None:
        """Batched fast path over an ordered event batch.

        ``site_ids`` (numpy array or sequence of ints) and ``items``
        (same length, or None for the unit item) describe the same stream
        ``run`` would consume as ``zip(site_ids, items)``.  The batch is
        decomposed into per-site runs (global order preserved) and each
        run is delivered through :meth:`Site.on_elements`, so protocol
        messages and estimates are *identical* to per-event driving with
        the same seed.  Space is sampled once per run instead of once per
        event — high-water marks are therefore lower bounds of the
        per-event ledger, which is a measurement knob, not protocol state.
        """
        drive_runs(
            self, decompose_runs(site_ids, items), self.space_sample_interval
        )

    def sample_space(self) -> None:
        """Record current space of every site and the coordinator."""
        for site in self.sites:
            self.space.record_site(site.site_id, site.space_words())
        self.space.record_coordinator(self.coordinator.space_words())

    # -- results -----------------------------------------------------------

    @property
    def comm(self):
        """The communication ledger (:class:`CommStats`)."""
        return self.network.stats

    def summary(self) -> dict:
        """A flat dict of cost metrics, for table rows."""
        self.sample_space()
        out = self.comm.snapshot()
        out["max_site_space_words"] = self.space.max_site_words
        out["mean_site_space_words"] = self.space.mean_site_words
        out["coordinator_space_words"] = self.space.coordinator_max_words
        out["elements"] = self.elements_processed
        return out
