"""The communication channel between the coordinator and the sites.

The network delivers messages synchronously (the paper assumes instant
communication: "no element will arrive until all parties have decided not
to send more messages"), and charges every message to a :class:`CommStats`
ledger.  It can be restricted to one-way (site -> coordinator) traffic to
reproduce the Theorem 2.2 setting.

Fault injection: ``uplink_drop_rate`` silently discards that fraction of
site-to-coordinator messages *after* charging them (the sender paid for
the send; the network lost it).  The paper assumes reliable channels —
this knob exists to study robustness: protocols in this library report
absolute values (counter snapshots), so dropped reports are repaired by
the next report, while shipped summaries (rank) lose their mass.
"""

from __future__ import annotations

import random

from ..persistence.codec import PersistableState
from .metrics import CommStats
from .protocol import BROADCAST, DOWNLINK, UPLINK, Message

__all__ = ["Network", "OneWayViolation"]

_MAX_DEPTH = 10_000


class OneWayViolation(RuntimeError):
    """Raised when a coordinator tries to talk on a one-way network."""


class Network(PersistableState):
    """Routes messages between one coordinator and ``k`` sites.

    Delivery is synchronous and re-entrant: a message handler may itself
    send messages, which are delivered before the original call returns.
    A depth guard catches accidental infinite chatter.

    ``state_dict()`` snapshots the ledger, drop counters and the loss
    RNG stream; loading it into a freshly bound network resumes
    identical accounting and identical fault-injection decisions.
    """

    #: wiring, mirrors and tracers are rebuilt by bind()/attach_mirror()/
    #: set_tracer(); the delivery depth is always 0 between batches
    #: (snapshot points)
    _persist_transient_ = (
        "_coordinator",
        "_sites",
        "_mirrors",
        "_depth",
        "_tracer",
    )

    def __init__(
        self,
        num_sites: int,
        one_way: bool = False,
        uplink_drop_rate: float = 0.0,
        drop_seed: int = 0,
    ):
        if num_sites < 1:
            raise ValueError("need at least one site")
        if not 0.0 <= uplink_drop_rate < 1.0:
            raise ValueError("uplink_drop_rate must be in [0, 1)")
        self.num_sites = num_sites
        self.one_way = one_way
        self.uplink_drop_rate = uplink_drop_rate
        self.dropped_uplink_messages = 0
        self._drop_rng = random.Random(drop_seed)
        self.stats = CommStats()
        self._mirrors = []
        self._coordinator = None
        self._sites = {}
        self._depth = 0
        self._tracer = None

    # -- wiring ----------------------------------------------------------

    def set_tracer(self, tracer) -> None:
        """Observe every send: ``tracer(direction, site_id, message)``.

        ``direction`` is :data:`~repro.runtime.protocol.UPLINK`,
        :data:`~repro.runtime.protocol.DOWNLINK` or
        :data:`~repro.runtime.protocol.BROADCAST` (``site_id`` is None
        for broadcasts).  Uplinks are traced before the loss knob rolls,
        matching the ledger (the sender paid for the send either way).
        One tracer per network; pass None to detach.
        """
        self._tracer = tracer

    def attach_mirror(self, stats: CommStats) -> None:
        """Mirror every charge into an extra ledger (multiplexing hook).

        A :class:`~repro.service.TrackingService` runs one logical network
        per job over a shared fleet; mirroring lets each job keep its own
        ledger while the service aggregates fleet-wide totals.
        """
        self._mirrors.append(stats)

    def bind(self, coordinator, sites) -> None:
        """Attach the coordinator and the site list after construction."""
        if len(sites) != self.num_sites:
            raise ValueError(
                f"expected {self.num_sites} sites, got {len(sites)}"
            )
        self._coordinator = coordinator
        self._sites = {site.site_id: site for site in sites}
        if len(self._sites) != self.num_sites:
            raise ValueError("duplicate site ids")

    # -- delivery --------------------------------------------------------

    def _enter(self):
        self._depth += 1
        if self._depth > _MAX_DEPTH:
            raise RuntimeError("message recursion too deep; protocol loop?")

    def _exit(self):
        self._depth -= 1

    def send_to_coordinator(self, site_id: int, message: Message) -> None:
        """Deliver a site's message to the coordinator (uplink)."""
        # Ledger bookkeeping is inlined (not record_uplink) because this
        # runs once per protocol message on the ingestion hot path.
        words = message.words
        stats = self.stats
        stats.uplink_messages += 1
        stats.uplink_words += words
        for mirror in self._mirrors:
            mirror.uplink_messages += 1
            mirror.uplink_words += words
        if self._tracer is not None:
            self._tracer(UPLINK, site_id, message)
        if (
            self.uplink_drop_rate > 0.0
            and self._drop_rng.random() < self.uplink_drop_rate
        ):
            self.dropped_uplink_messages += 1
            return
        depth = self._depth + 1
        if depth > _MAX_DEPTH:
            raise RuntimeError("message recursion too deep; protocol loop?")
        self._depth = depth
        try:
            self._coordinator.on_message(site_id, message)
        finally:
            self._depth = depth - 1

    def send_to_site(self, site_id: int, message: Message) -> None:
        """Deliver a coordinator message to one site (downlink)."""
        if self.one_way:
            raise OneWayViolation("downlink disabled on a one-way network")
        self.stats.record_downlink(message.words)
        for mirror in self._mirrors:
            mirror.record_downlink(message.words)
        if self._tracer is not None:
            self._tracer(DOWNLINK, site_id, message)
        self._enter()
        try:
            self._sites[site_id].on_message(message)
        finally:
            self._exit()

    def broadcast(self, message: Message) -> None:
        """Deliver a coordinator message to every site; costs k messages."""
        if self.one_way:
            raise OneWayViolation("broadcast disabled on a one-way network")
        self.stats.record_broadcast(message.words, self.num_sites)
        for mirror in self._mirrors:
            mirror.record_broadcast(message.words, self.num_sites)
        if self._tracer is not None:
            self._tracer(BROADCAST, None, message)
        self._enter()
        try:
            for site_id in sorted(self._sites):
                self._sites[site_id].on_message(message)
        finally:
            self._exit()
