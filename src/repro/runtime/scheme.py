"""Scheme interface: a factory pairing a coordinator with its sites.

A *tracking scheme* bundles everything needed to instantiate one protocol:
given a network, the number of sites ``k`` and a root seed, it constructs
the coordinator and the per-site state machines.  :class:`Simulation` then
wires them together and drives the stream.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from ..persistence.codec import PersistableState
from .coordinator import Coordinator
from .network import Network
from .site import Site

__all__ = ["TrackingScheme"]


class TrackingScheme(PersistableState, ABC):
    """Factory for one (coordinator, sites) protocol instance.

    Subclasses carry the protocol parameters (``epsilon`` etc.) and create
    fresh, independent state machines on each ``make_*`` call.
    ``state_dict()`` captures those parameters (including inner schemes)
    as the recipe from which recovery rebuilds an equivalent factory.
    """

    #: short human-readable identifier used in tables
    name: str = "scheme"

    @abstractmethod
    def make_coordinator(self, network: Network, k: int, seed: int) -> Coordinator:
        """Create the coordinator for a ``k``-site deployment."""

    @abstractmethod
    def make_site(self, network: Network, site_id: int, k: int, seed: int) -> Site:
        """Create the state machine for site ``site_id``."""

    #: set False for schemes that need downlink traffic (two-way protocols)
    one_way_capable: bool = False

    #: True when a site may *depend* on its uplink's coordinator
    #: response applying inside the send (the synchronous model's
    #: re-entrant delivery — e.g. the rank site requires the round
    #: geometry broadcast its first report triggers).  Schemes whose
    #: sites merely *tolerate* responses landing at a later bounded
    #: position (the relaxed drift contract, e.g. count tracking with a
    #: stale report probability) set False, which lets relaxed mode
    #: stream uplinks without per-message acks.  Has no effect on
    #: lockstep dispatch.
    sync_uplinks: bool = True
