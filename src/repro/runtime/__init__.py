"""Distributed-tracking runtime: sites, coordinator, network, simulation.

This package is the substrate on which every protocol in the library runs.
It implements the paper's model of computation: ``k`` sites receiving
streams, a coordinator with a two-way channel to each site, instant
synchronous message delivery, and communication measured in messages and
words (a broadcast costs ``k`` messages).
"""

from .batching import batch_from_stream, decompose_runs
from .coordinator import Coordinator
from .metrics import CommStats, SpaceStats
from .network import Network, OneWayViolation
from .protocol import BROADCAST, DOWNLINK, UPLINK, Message
from .rng import coin, derive_rng, derive_seed, geometric_failures, trailing_level
from .scheme import TrackingScheme
from .simulation import Simulation
from .site import Site
from .trace import TranscriptRecorder

__all__ = [
    "Coordinator",
    "CommStats",
    "SpaceStats",
    "Network",
    "OneWayViolation",
    "Message",
    "UPLINK",
    "DOWNLINK",
    "BROADCAST",
    "batch_from_stream",
    "coin",
    "decompose_runs",
    "derive_rng",
    "derive_seed",
    "geometric_failures",
    "trailing_level",
    "TrackingScheme",
    "TranscriptRecorder",
    "Simulation",
    "Site",
]
