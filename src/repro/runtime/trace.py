"""Canonical protocol transcripts: record every message a network routes.

A :class:`TranscriptRecorder` attaches to a :class:`~repro.runtime.Network`
tracer hook and keeps the ordered list of (direction, site, message)
events.  :meth:`to_bytes` renders it in one canonical form — JSON lines
with payloads passed through the snapshot codec, so tuples, floats and
nested repro objects serialize deterministically — which makes "these two
runs produced the same transcript" a byte comparison.

This is the equivalence oracle for every alternative driving path: the
batched ingestion engine, the durable replay path, and the distributed
runtime in :mod:`repro.net` all assert byte-identical transcripts against
the per-event simulator.
"""

from __future__ import annotations

import json
from typing import List, Optional

from ..persistence.codec import encode_value
from .protocol import Message

__all__ = ["TranscriptRecorder", "transcript_entry"]


def transcript_entry(direction: str, site_id: Optional[int], message: Message):
    """The canonical tuple recorded for one routed message."""
    return (direction, site_id, message.kind, message.payload, message.words)


class TranscriptRecorder:
    """Ordered, canonically-serializable record of protocol messages.

    Use as a network tracer::

        recorder = TranscriptRecorder()
        recorder.attach(sim.network)
        sim.run(stream)
        blob = recorder.to_bytes()

    Entries are ``(direction, site_id, kind, payload, words)`` tuples;
    broadcasts carry ``site_id=None`` (delivery order to individual
    sites is fixed — ascending site id — in every runtime).
    """

    def __init__(self):
        self.entries: List[tuple] = []

    def __call__(self, direction, site_id, message: Message) -> None:
        self.entries.append(transcript_entry(direction, site_id, message))

    def attach(self, network) -> "TranscriptRecorder":
        """Install this recorder as ``network``'s tracer; returns self."""
        network.set_tracer(self)
        return self

    def record(self, direction, site_id, message: Message) -> None:
        """Explicitly append one entry (for non-Network runtimes)."""
        self.entries.append(transcript_entry(direction, site_id, message))

    def __len__(self) -> int:
        return len(self.entries)

    def lines(self) -> List[str]:
        """One canonical JSON line per message, in routing order."""
        return [
            json.dumps(
                [direction, site_id, kind, encode_value(payload), words],
                separators=(",", ":"),
                sort_keys=True,
            )
            for direction, site_id, kind, payload, words in self.entries
        ]

    def to_bytes(self) -> bytes:
        """The whole transcript as one canonical byte string."""
        return ("\n".join(self.lines()) + "\n").encode() if self.entries else b""
