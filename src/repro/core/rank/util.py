"""Shared helpers for rank/quantile coordinators."""

from __future__ import annotations

__all__ = ["quantile_from_rank_fn"]


def quantile_from_rank_fn(candidates, rank_fn, target: float):
    """Smallest candidate whose cumulative mass reaches ``target``.

    ``candidates`` must be sorted ascending.  ``rank_fn(x)`` estimates
    the mass strictly below ``x`` and must be monotone non-decreasing
    (every rank estimator here is: all are sums of indicator counts).
    The mass *up to and including* candidate ``i`` is evaluated as the
    rank of the next candidate (infinite for the last), which keeps the
    search correct for weighted summaries where one candidate may carry
    arbitrary mass.  Binary search, O(log |C|) rank calls.
    """
    if not candidates:
        raise ValueError("no candidate values to search")
    lo, hi = 0, len(candidates) - 1
    while lo < hi:
        mid = (lo + hi) // 2
        mass_through_mid = rank_fn(candidates[mid + 1])
        if mass_through_mid >= target:
            hi = mid
        else:
            lo = mid + 1
    return candidates[lo]
