"""Deterministic rank tracking baseline (snapshot protocol).

**Substitution note.**  The deterministic optimum of [29] reaches
``O(k/eps * log N * log^2(1/eps))`` communication through a hierarchical
slack-allocation argument that is a full paper of machinery on its own.
What we reproduce as the deterministic comparator is the natural snapshot
protocol of Cormode et al. [6] — the prior art the paper itself cites at
``O(k/eps^2 * log N)``: every ``Delta = Theta(eps * n_bar / k)`` local
arrivals, a site ships an ``eps/4``-spaced quantile snapshot of its local
stream (size ``O(1/eps)``), and the coordinator sums interpolated local
ranks.  This gives a *correct* deterministic tracker whose measured cost
upper-bounds the [29] optimum; benchmark tables print the [29] theory
formula alongside so both separations are visible.

Naive alternatives that try to reach ``k/eps`` by shipping only changed
summary entries degrade to ``Omega(n)`` messages on random-order inputs
(every insertion perturbs all higher positions) — we verified this
experimentally; it is exactly the failure mode [29]'s hierarchy exists to
avoid, and why we keep the snapshot protocol as the honest baseline.
"""

from __future__ import annotations

from ...runtime import TrackingScheme
from .cormode05 import _SnapshotCoordinator, _SnapshotSite

__all__ = ["DeterministicRankScheme"]


class DeterministicRankScheme(TrackingScheme):
    """Factory for the deterministic snapshot baseline.

    Identical protocol to :class:`Cormode05RankScheme`; kept as a named
    scheme so benchmark tables can show the deterministic comparator row
    with the [29] theory bound printed next to the measured [6] cost.
    """

    name = "rank/deterministic"
    one_way_capable = False

    def __init__(self, epsilon: float):
        if not 0.0 < epsilon < 1.0:
            raise ValueError("epsilon must be in (0, 1)")
        self.epsilon = epsilon

    def make_coordinator(self, network, k, seed):
        return _SnapshotCoordinator(network, k, self.epsilon)

    def make_site(self, network, site_id, k, seed):
        return _SnapshotSite(site_id, network, k, self.epsilon)
