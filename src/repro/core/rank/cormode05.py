"""The Cormode et al. [6] style baseline: periodic full-summary shipping.

The first distributed quantile tracker (SIGMOD'05) had communication
``O(k/eps^2 * log N)`` under certain inputs — the paper cites this as the
prior art its deterministic predecessor [29] improved to ``O(k/eps *
log N * polylog)`` and this paper improves to ``O(sqrt(k)/eps * log N *
polylog)``.  We reproduce the [6] cost shape with the natural protocol:
every ``Delta = Theta(eps * n_bar / k)`` arrivals a site ships a full
``O(1/eps)``-size quantile snapshot of its local stream, giving
``(k/eps) * (1/eps)`` words per round.
"""

from __future__ import annotations

import bisect

from ...runtime import Coordinator, Message, Network, Site, TrackingScheme
from ..rounds import GlobalCountTracker, LocalDoubler
from .util import quantile_from_rank_fn

__all__ = ["Cormode05RankScheme"]

MSG_DOUBLE = "double"
MSG_SNAPSHOT = "snapshot"  # site -> coord: (count, tuple of values)
MSG_ROUND = "round"


class _SnapshotSite(Site):
    """Ship a full eps-spaced local snapshot every Delta arrivals."""

    def __init__(self, site_id, network, k, eps):
        super().__init__(site_id, network)
        self.k = k
        self.eps = eps
        self.doubler = LocalDoubler()
        self.n_bar = 0
        self.values: list = []
        self._since_ship = 0

    @property
    def delta(self) -> int:
        return max(1, int(self.eps * self.n_bar / (8 * self.k)))

    def on_element(self, item) -> None:
        report = self.doubler.increment()
        if report is not None:
            self.send(MSG_DOUBLE, report)
        bisect.insort(self.values, item)
        self._since_ship += 1
        if self._since_ship >= self.delta:
            self._since_ship = 0
            self._ship()

    def _ship(self) -> None:
        count = len(self.values)
        spacing = max(1, int(self.eps * count / 4))
        snapshot = tuple(self.values[r] for r in range(0, count, spacing))
        self.send(
            MSG_SNAPSHOT, (count, spacing, snapshot), words=len(snapshot) + 2
        )

    def on_message(self, message: Message) -> None:
        if message.kind == MSG_ROUND:
            self.n_bar = message.payload

    def space_words(self) -> int:
        return len(self.values) + self.doubler.space_words() + 2


class _SnapshotCoordinator(Coordinator):
    """Latest snapshot per site; rank = sum of interpolated local ranks."""

    def __init__(self, network, k, eps):
        super().__init__(network)
        self.k = k
        self.eps = eps
        self.tracker = GlobalCountTracker()
        self.snapshots = {}  # site -> (count, spacing, values)

    def on_message(self, site_id: int, message: Message) -> None:
        if message.kind == MSG_SNAPSHOT:
            self.snapshots[site_id] = message.payload
        elif message.kind == MSG_DOUBLE:
            n_bar = self.tracker.update(site_id, message.payload)
            if n_bar is not None:
                self.broadcast(MSG_ROUND, n_bar)

    def estimate_rank(self, x) -> float:
        rank = 0.0
        for count, spacing, values in self.snapshots.values():
            below = bisect.bisect_left(values, x)
            if below:
                rank += min(max(below * spacing - spacing / 2.0, 0.0), count)
        return rank

    def estimate_total(self) -> float:
        return float(sum(c for c, _, _ in self.snapshots.values()))

    def quantile(self, phi: float):
        candidates = self.rank_candidates()
        target = min(max(phi, 0.0), 1.0) * self.estimate_total()
        return quantile_from_rank_fn(candidates, self.estimate_rank, target)

    # -- merge hooks (cross-shard query plane) -----------------------------

    def rank_candidates(self) -> list:
        """Every snapshot value, sorted — the merge plane's candidates."""
        return sorted(
            {v for _, _, vals in self.snapshots.values() for v in vals}
        )

    @property
    def n_bar(self) -> int:
        return self.tracker.n_bar

    def space_words(self) -> int:
        words = self.tracker.space_words()
        for _, _, values in self.snapshots.values():
            words += len(values) + 2
        return words


class Cormode05RankScheme(TrackingScheme):
    """Factory for the full-snapshot baseline (O(k/eps^2 log N) words)."""

    name = "rank/cormode05"
    one_way_capable = False

    def __init__(self, epsilon: float):
        if not 0.0 < epsilon < 1.0:
            raise ValueError("epsilon must be in (0, 1)")
        self.epsilon = epsilon

    def make_coordinator(self, network, k, seed):
        return _SnapshotCoordinator(network, k, self.epsilon)

    def make_site(self, network, site_id, k, seed):
        return _SnapshotSite(site_id, network, k, self.epsilon)
