"""Randomized rank (quantile) tracking — Section 4.

Within each round (``n_bar`` doublings), every site splits its arrivals
into *chunks* of ``2^h * b`` elements where ``b = eps * n_bar / sqrt(k)``
is the block size and ``h`` the height of a balanced binary tree over the
blocks of one chunk.  For each tree node ``v`` at level ``l`` the site
runs an unbiased rank summary over ``D(v)`` with absolute standard error
``b / sqrt(h+1)`` (the paper's per-level error parameter
``2^-l / sqrt(h)``); when the node is full, its summary is shipped and the
local instance freed, so at most ``h + 1`` instances are alive at a time.

The coordinator keeps, per chunk, only the *canonical decomposition* —
maximal full nodes (a parent's arrival evicts its two children), at most
``h + 1`` summaries whose variances sum to ``b^2``.  The incomplete leaf
block is covered by Bernoulli(p)-sampled raw elements with
``p = sqrt(k) / (eps * n_bar)`` (variance ``<= b/p = b^2``).  Per-chunk
variance is ``O(b^2)``; with ``<= 2k`` chunks per round the total is
``O((eps n)^2)`` and earlier rounds decay geometrically (Theorem 4.1).

Communication: ``O(sqrt(k)/eps * log N * h^1.5)`` words.
"""

from __future__ import annotations

import math

from ...runtime import Coordinator, Message, Network, Site, TrackingScheme
from ...runtime.rng import coin, derive_rng
from ...sketch.mergeable_quantile import QuantileSketchBuilder
from ..rounds import GlobalCountTracker, LocalDoubler
from .util import quantile_from_rank_fn

__all__ = [
    "RandomizedRankScheme",
    "RandomizedRankCoordinator",
    "RandomizedRankSite",
    "RoundGeometry",
]

MSG_DOUBLE = "double"  # site -> coord: local count doubled
MSG_SUMMARY = "summary"  # site -> coord: (chunk, level, index, summary)
MSG_RSAMPLE = "rsample"  # site -> coord: one Bernoulli-sampled element
MSG_ROUND = "round"  # coord -> all: new n_bar


class RoundGeometry:
    """Block size, tree height and sampling probability for one round.

    Derived identically by sites and coordinator from ``(n_bar, k, eps)``.
    ``flat=True`` collapses the tree to leaves only (the ablation showing
    why the binary tree is needed for the variance budget).
    """

    def __init__(self, n_bar: int, k: int, eps: float, flat: bool = False):
        self.n_bar = n_bar
        self.k = k
        self.eps = eps
        # Block size b = eps * n_bar / sqrt(k), rounded up to a power of
        # two so every node size is a power of two and its summary
        # consolidates into a single buffer (see for_error).
        raw_block = max(1.0, eps * n_bar / math.sqrt(k))
        self.block = 1 << int(math.ceil(math.log2(raw_block)))
        # Blocks per chunk, rounded up to a power of two so the tree is
        # full and the top node completes exactly at the chunk boundary.
        raw_blocks = max(1, int(math.ceil(n_bar / (k * self.block))))
        self.height = 0 if flat else max(0, int(math.ceil(math.log2(raw_blocks))))
        self.blocks_per_chunk = 1 << self.height if not flat else raw_blocks
        self.chunk = self.blocks_per_chunk * self.block
        # Residual sampling probability p = sqrt(k) / (eps * n_bar).
        self.p = min(1.0, math.sqrt(k) / (eps * n_bar)) if n_bar > 0 else 1.0
        # Per-node absolute std-error target: b / sqrt(h + 1).
        self.node_error = self.block / math.sqrt(self.height + 1)
        self.flat = flat

    def node_elements(self, level: int) -> int:
        """Elements covered by one full node at ``level``."""
        return (1 << level) * self.block


class _ChunkTree:
    """Site-side state of algorithm C for one chunk: one active builder
    per level, flushed bottom-up as nodes fill."""

    def __init__(self, geometry: RoundGeometry, rng):
        self.geometry = geometry
        self.rng = rng
        self.count = 0
        self.builders = []
        self.indices = []
        levels = 1 if geometry.flat else geometry.height + 1
        for level in range(levels):
            self.builders.append(self._fresh_builder(level))
            self.indices.append(0)

    def _fresh_builder(self, level: int) -> QuantileSketchBuilder:
        g = self.geometry
        return QuantileSketchBuilder.for_error(
            g.node_elements(level), g.node_error, self.rng
        )

    def add(self, value):
        """Feed one element to all active nodes; yield full-node summaries
        as (level, index, summary) tuples."""
        g = self.geometry
        self.count += 1
        out = []
        for level, builder in enumerate(self.builders):
            builder.add(value)
            if builder.n >= g.node_elements(level):
                out.append((level, self.indices[level], builder.finalize()))
                self.indices[level] += 1
                self.builders[level] = self._fresh_builder(level)
        return out

    @property
    def full(self) -> bool:
        return self.count >= self.geometry.chunk

    def space_words(self) -> int:
        return sum(b.space_words() for b in self.builders) + 4


class RandomizedRankSite(Site):
    """Site-side state machine of the Section 4 protocol."""

    def __init__(self, site_id, network, k, eps, seed, flat=False):
        super().__init__(site_id, network)
        self.k = k
        self.eps = eps
        self.flat = flat
        self.rng = derive_rng(seed, "rank-site", site_id)
        self.doubler = LocalDoubler()
        self.geometry = None  # set on first round broadcast
        self.tree = None
        self.chunk_index = 0

    def on_element(self, item) -> None:
        report = self.doubler.increment()
        if report is not None:
            self.send(MSG_DOUBLE, report)
        if self.geometry is None:
            # Can only happen if the first broadcast has not fired yet,
            # i.e. before the very first element anywhere; the doubling
            # report above always triggers it, so geometry exists now.
            raise RuntimeError("round geometry missing; no broadcast seen")

        # Residual Bernoulli sample covers the incomplete leaf block.
        if coin(self.rng, self.geometry.p):
            self.send(MSG_RSAMPLE, item, words=1)

        for level, index, summary in self.tree.add(item):
            self.send(
                MSG_SUMMARY,
                (self.chunk_index, level, index, summary),
                words=summary.size_words() + 3,
            )
        if self.tree.full:
            self.chunk_index += 1
            self.tree = _ChunkTree(self.geometry, self.rng)

    def on_message(self, message: Message) -> None:
        if message.kind != MSG_ROUND:
            return
        n_bar = message.payload
        self.geometry = RoundGeometry(n_bar, self.k, self.eps, self.flat)
        self.tree = _ChunkTree(self.geometry, self.rng)
        self.chunk_index = 0

    def space_words(self) -> int:
        tree = self.tree.space_words() if self.tree is not None else 0
        return tree + self.doubler.space_words() + 3


class _ChunkSummaries:
    """Coordinator-side canonical decomposition of one chunk."""

    __slots__ = ("nodes",)

    def __init__(self):
        self.nodes = {}  # (level, index) -> QuantileSummary

    def insert(self, level: int, index: int, summary) -> None:
        # A full parent subsumes its two children.
        if level > 0:
            self.nodes.pop((level - 1, 2 * index), None)
            self.nodes.pop((level - 1, 2 * index + 1), None)
        self.nodes[(level, index)] = summary

    def rank(self, x) -> float:
        return sum(s.rank(x) for s in self.nodes.values())

    def total_weight(self) -> float:
        return sum(s.total_weight for s in self.nodes.values())


class RandomizedRankCoordinator(Coordinator):
    """Canonical-decomposition store plus residual-sample lists."""

    def __init__(self, network, k, eps, seed):
        super().__init__(network)
        self.k = k
        self.eps = eps
        self.tracker = GlobalCountTracker()
        self.round_id = 0
        self.geometry = None
        # (round, site, chunk) -> _ChunkSummaries; spans all rounds.
        self.chunks = {}
        # site -> list of raw samples from its current incomplete leaf.
        self.pending = {}
        # Frozen residual sample lists from finished leaves-at-round-end:
        # list of (inv_p, [values]).
        self.frozen_samples = []

    # -- message handling --------------------------------------------------

    def on_message(self, site_id: int, message: Message) -> None:
        kind = message.kind
        if kind == MSG_RSAMPLE:
            self.pending.setdefault(site_id, []).append(message.payload)
        elif kind == MSG_SUMMARY:
            chunk, level, index, summary = message.payload
            key = (self.round_id, site_id, chunk)
            self.chunks.setdefault(key, _ChunkSummaries()).insert(
                level, index, summary
            )
            if level == 0:
                # The incomplete leaf just completed; its residual
                # samples are now covered by the summary.
                self.pending.pop(site_id, None)
        elif kind == MSG_DOUBLE:
            n_bar = self.tracker.update(site_id, message.payload)
            if n_bar is not None:
                self._start_round(n_bar)

    def _start_round(self, n_bar) -> None:
        if self.geometry is not None:
            inv_p = 1.0 / self.geometry.p
            for values in self.pending.values():
                if values:
                    self.frozen_samples.append((inv_p, values))
        self.pending = {}
        self.round_id += 1
        self.geometry = RoundGeometry(n_bar, self.k, self.eps)
        self.broadcast(MSG_ROUND, n_bar)

    # -- queries -----------------------------------------------------------

    def estimate_rank(self, x) -> float:
        """Unbiased estimate of |{elements < x}| over the union of all
        streams, within eps*n with constant probability."""
        rank = 0.0
        for chunk in self.chunks.values():
            rank += chunk.rank(x)
        for inv_p, values in self.frozen_samples:
            rank += inv_p * sum(1 for v in values if v < x)
        if self.geometry is not None:
            inv_p = 1.0 / self.geometry.p
            for values in self.pending.values():
                rank += inv_p * sum(1 for v in values if v < x)
        return rank

    def estimate_total(self) -> float:
        """Estimate of the total element count n (same estimator at +inf)."""
        total = sum(c.total_weight() for c in self.chunks.values())
        for inv_p, values in self.frozen_samples:
            total += inv_p * len(values)
        if self.geometry is not None:
            inv_p = 1.0 / self.geometry.p
            for values in self.pending.values():
                total += inv_p * len(values)
        return total

    def _candidates(self):
        out = set()
        for chunk in self.chunks.values():
            for summary in chunk.nodes.values():
                out.update(summary.values)
        for _, values in self.frozen_samples:
            out.update(values)
        for values in self.pending.values():
            out.update(values)
        return sorted(out)

    def quantile(self, phi: float):
        """A value whose rank is within eps*n of phi*n (w.c.p.)."""
        target = min(max(phi, 0.0), 1.0) * self.estimate_total()
        return quantile_from_rank_fn(self._candidates(), self.estimate_rank, target)

    # -- merge hooks (cross-shard query plane) -----------------------------

    def rank_candidates(self) -> list:
        """Every stored value, sorted — the merge plane's candidate set."""
        return self._candidates()

    @property
    def n_bar(self) -> int:
        return self.tracker.n_bar

    def space_words(self) -> int:
        words = self.tracker.space_words() + 2
        for chunk in self.chunks.values():
            for summary in chunk.nodes.values():
                words += summary.size_words()
        for _, values in self.frozen_samples:
            words += len(values) + 1
        for values in self.pending.values():
            words += len(values)
        return words


class RandomizedRankScheme(TrackingScheme):
    """Factory for the Section 4 protocol.

    Parameters
    ----------
    epsilon:
        Rank error target as a fraction of n.
    flat_tree:
        Ablation: replace the binary tree with a flat list of leaf
        blocks.  Keeps correctness of each piece but blows the variance
        budget by a factor ~ blocks/chunk, demonstrating why the tree is
        needed.
    """

    name = "rank/randomized"
    one_way_capable = False

    def __init__(self, epsilon: float, flat_tree: bool = False):
        if not 0.0 < epsilon < 1.0:
            raise ValueError("epsilon must be in (0, 1)")
        self.epsilon = epsilon
        self.flat_tree = flat_tree

    def make_coordinator(self, network, k, seed):
        return RandomizedRankCoordinator(network, k, self.epsilon, seed)

    def make_site(self, network, site_id, k, seed):
        return RandomizedRankSite(
            site_id, network, k, self.epsilon, seed, self.flat_tree
        )
