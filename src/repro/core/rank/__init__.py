"""Rank (quantile) tracking protocols (Section 4)."""

from .cormode05 import Cormode05RankScheme
from .deterministic import DeterministicRankScheme
from .randomized import RandomizedRankScheme

__all__ = [
    "Cormode05RankScheme",
    "DeterministicRankScheme",
    "RandomizedRankScheme",
]
