"""Continuous distributed sampling baseline (Cormode et al. [9])."""

from .distributed_sampler import DistributedSamplingScheme

__all__ = ["DistributedSamplingScheme"]
