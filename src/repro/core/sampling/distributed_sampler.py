"""Continuous random sampling from distributed streams ([9] baseline).

Binary-Bernoulli protocol: every arriving element is assigned a geometric
level (``P(level >= j) = 2^-j``); sites forward elements whose level
clears the coordinator's current threshold ``j``.  When the retained
sample grows past ``2s`` the coordinator raises ``j`` by one, discards
sub-threshold elements and broadcasts the new threshold.  The surviving
set is a Bernoulli(``2^-j``) sample of everything seen, of expected size
in ``[s, 2s)``.

With ``s = Theta(1/eps^2)`` this solves count, frequency *and* rank
tracking within ``eps * n`` with constant probability, at communication
``O((1/eps^2 + k) log N)`` — the row of Table 1 the paper's algorithms
beat whenever ``k = o(1/eps^2)``.
"""

from __future__ import annotations

import bisect
import math

from ...runtime import Coordinator, Message, Network, Site, TrackingScheme
from ...runtime.rng import derive_rng, trailing_level
from ..rank.util import quantile_from_rank_fn

__all__ = ["DistributedSamplingScheme"]

MSG_ITEM = "item"  # site -> coord: (element, level), 2 words
MSG_LEVEL = "level"  # coord -> all: new threshold, 1 word


class _SamplingSite(Site):
    """Forward elements whose geometric level clears the threshold."""

    def __init__(self, site_id, network, seed):
        super().__init__(site_id, network)
        self.rng = derive_rng(seed, "sampling-site", site_id)
        self.level = 0
        self.n_local = 0

    def on_element(self, item) -> None:
        self.n_local += 1
        lvl = trailing_level(self.rng)
        if lvl >= self.level:
            self.send(MSG_ITEM, (item, lvl), words=2)

    def on_message(self, message: Message) -> None:
        if message.kind == MSG_LEVEL:
            self.level = message.payload

    def space_words(self) -> int:
        return 2


class _SamplingCoordinator(Coordinator):
    """Holds the level sample; answers count/frequency/rank queries."""

    def __init__(self, network, sample_size):
        super().__init__(network)
        self.s = sample_size
        self.level = 0
        self.sample: list = []  # (item, level) pairs

    def on_message(self, site_id: int, message: Message) -> None:
        if message.kind != MSG_ITEM:
            return
        item, lvl = message.payload
        if lvl < self.level:
            return  # stale: the site had not yet seen the new threshold
        self.sample.append((item, lvl))
        while len(self.sample) > 2 * self.s:
            self.level += 1
            self.sample = [(x, l) for (x, l) in self.sample if l >= self.level]
            self.broadcast(MSG_LEVEL, self.level)

    # -- queries -----------------------------------------------------------

    @property
    def scale(self) -> float:
        """Inverse inclusion probability, 2^level."""
        return float(1 << self.level)

    def estimate(self) -> float:
        """Estimate of the total count n."""
        return len(self.sample) * self.scale

    def estimate_total(self) -> float:
        """Alias of :meth:`estimate` under the rank coordinators' name,
        so the cross-shard quantile merge can fan out one method."""
        return self.estimate()

    def estimate_frequency(self, item) -> float:
        """Estimate of the frequency of ``item``."""
        hits = sum(1 for (x, _) in self.sample if x == item)
        return hits * self.scale

    def estimate_rank(self, x) -> float:
        """Estimate of the global rank of ``x``."""
        below = sum(1 for (v, _) in self.sample if v < x)
        return below * self.scale

    def heavy_hitters(self, phi: float) -> dict:
        threshold = phi * max(1.0, self.estimate())
        counts = {}
        for item, _ in self.sample:
            counts[item] = counts.get(item, 0) + 1
        return {
            j: c * self.scale
            for j, c in counts.items()
            if c * self.scale >= threshold
        }

    def top_items(self, m: int) -> list:
        """The m items with the largest estimated frequencies."""
        counts = {}
        for item, _ in self.sample:
            counts[item] = counts.get(item, 0) + 1
        scored = sorted(counts.items(), key=lambda t: -t[1])
        return [(j, c * self.scale) for j, c in scored[:m]]

    def quantile(self, phi: float):
        values = sorted(v for (v, _) in self.sample)
        if not values:
            raise ValueError("sample is empty")
        target = min(max(phi, 0.0), 1.0) * self.estimate()

        def rank(x):
            return bisect.bisect_left(values, x) * self.scale

        return quantile_from_rank_fn(values, rank, target)

    # -- merge hooks (cross-shard query plane) -----------------------------

    def rank_candidates(self) -> list:
        """Sorted sample values — the merge plane's candidate set."""
        return sorted(v for (v, _) in self.sample)

    def estimate_frequencies(self, items) -> list:
        """Batched :meth:`estimate_frequency` for cross-shard merges."""
        return [self.estimate_frequency(j) for j in items]

    def frequency_basis(self) -> float:
        """The stream-length basis heavy-hitter thresholds scale by."""
        return self.estimate()

    def space_words(self) -> int:
        return 2 * len(self.sample) + 2


class DistributedSamplingScheme(TrackingScheme):
    """Factory for the [9]-style continuous sampling baseline.

    Parameters
    ----------
    epsilon:
        Target error; the retained sample has size ``Theta(1/eps^2)``.
    sample_constant:
        The constant c in ``s = c / eps^2`` (default 4).
    """

    name = "sampling/level"
    one_way_capable = False

    def __init__(self, epsilon: float, sample_constant: float = 4.0):
        if not 0.0 < epsilon < 1.0:
            raise ValueError("epsilon must be in (0, 1)")
        self.epsilon = epsilon
        self.sample_size = max(8, int(math.ceil(sample_constant / epsilon**2)))

    def make_coordinator(self, network, k, seed):
        return _SamplingCoordinator(network, self.sample_size)

    def make_site(self, network, site_id, k, seed):
        return _SamplingSite(site_id, network, seed)
