"""Deterministic frequency tracking ([29]-style baseline).

The optimal deterministic protocol shape: within each round (rounds are
the shared ``n_bar`` doublings), a site reports an item's local count
whenever it has grown by ``Delta = Theta(eps * n_bar / k)`` since the last
report.  For any fixed item, each site's unreported remainder is below
``Delta``, so the coordinator's sum undercounts by at most
``k * Delta + (MG slack) <= eps * n`` and never overcounts.

Local counts come from a Misra–Gries summary with ``O(1/eps)`` counters,
keeping per-site space at ``O(1/eps)`` words as in [29].  Communication is
``O(k/eps)`` words per round — ``Theta(k/eps * log N)`` total, the
deterministic optimum the paper's randomized algorithm beats by sqrt(k).
"""

from __future__ import annotations

import math

from ...runtime import Coordinator, Message, Network, Site, TrackingScheme
from ...sketch.misra_gries import MisraGries
from ..rounds import GlobalCountTracker, LocalDoubler

__all__ = [
    "DeterministicFrequencyScheme",
    "DeterministicFrequencyCoordinator",
    "DeterministicFrequencySite",
]

MSG_DOUBLE = "double"
MSG_SET = "set"  # site -> coord: (item, reported local count), 2 words
MSG_ROUND = "round"  # coord -> all: new n_bar


class DeterministicFrequencySite(Site):
    """MG-backed local counting with Delta-threshold reporting."""

    def __init__(self, site_id, network, k, eps, exact_counts=False):
        super().__init__(site_id, network)
        self.k = k
        self.eps = eps
        self.exact_counts = exact_counts
        self.doubler = LocalDoubler()
        self.n_bar = 0
        capacity = max(1, int(math.ceil(8.0 / eps)))
        self.mg = None if exact_counts else MisraGries(capacity)
        self.exact = {} if exact_counts else None
        self.reported = {}
        self._since_prune = 0

    @property
    def delta(self) -> int:
        """Current reporting threshold Delta = eps * n_bar / (8k), >= 1."""
        return max(1, int(self.eps * self.n_bar / (8 * self.k)))

    def _local_count(self, item) -> int:
        if self.exact_counts:
            return self.exact.get(item, 0)
        return self.mg.estimate(item)

    def on_element(self, item) -> None:
        report = self.doubler.increment()
        if report is not None:
            self.send(MSG_DOUBLE, report)

        if self.exact_counts:
            self.exact[item] = self.exact.get(item, 0) + 1
        else:
            self.mg.add(item)
        count = self._local_count(item)
        if count - self.reported.get(item, 0) >= self.delta:
            self.reported[item] = count
            self.send(MSG_SET, (item, count), words=2)

        # Keep the reported map from outgrowing the MG summary: entries
        # for evicted items are dropped (the coordinator keeps the stale
        # value, which never overcounts).
        self._since_prune += 1
        if not self.exact_counts and self._since_prune >= 4 * self.mg.capacity:
            self._since_prune = 0
            if len(self.reported) > 2 * self.mg.capacity:
                tracked = self.mg.counters
                self.reported = {
                    j: c for j, c in self.reported.items() if j in tracked
                }

    def on_elements(self, items) -> None:
        # Inlined on_element for the common paths (MG counter hit, free
        # insert), transcript-identical to per-event driving.  Delta is
        # cached between sends: n_bar only moves via a round broadcast,
        # which can only re-enter during one of our own sends.
        if self.exact_counts:
            super().on_elements(items)
            return
        doubler = self.doubler
        dn = doubler.n
        dlast = doubler.last_report
        mg = self.mg
        counters = mg.counters
        capacity = mg.capacity
        mg_n = mg.n
        reported = self.reported
        send = self.send
        eps = self.eps
        k8 = 8 * self.k
        delta = max(1, int(eps * self.n_bar / k8))
        since_prune = self._since_prune
        prune_every = 4 * capacity

        for item in items:
            dn += 1
            if dn >= 2 * dlast or dlast == 0:
                dlast = dn
                doubler.n = dn
                doubler.last_report = dlast
                send(MSG_DOUBLE, dn)
                delta = max(1, int(eps * self.n_bar / k8))

            # Misra-Gries add, inlined except the eviction path.
            cur = counters.get(item)
            if cur is not None:
                count = cur + 1
                counters[item] = count
                mg_n += 1
            elif len(counters) < capacity:
                counters[item] = 1
                count = 1
                mg_n += 1
            else:
                mg.n = mg_n
                mg.add(item)  # decrement-all step rebinds mg.counters
                mg_n = mg.n
                counters = mg.counters
                count = counters.get(item, 0)

            # count < delta can never clear the threshold (reported >= 0),
            # so the common case skips the reported-map lookup entirely.
            if count >= delta and count - reported.get(item, 0) >= delta:
                reported[item] = count
                doubler.n = dn
                doubler.last_report = dlast
                send(MSG_SET, (item, count), words=2)
                delta = max(1, int(eps * self.n_bar / k8))

            since_prune += 1
            if since_prune >= prune_every:
                since_prune = 0
                if len(reported) > 2 * capacity:
                    reported = {
                        j: c for j, c in reported.items() if j in counters
                    }
                    self.reported = reported

        doubler.n = dn
        doubler.last_report = dlast
        mg.n = mg_n
        self._since_prune = since_prune

    def on_message(self, message: Message) -> None:
        if message.kind == MSG_ROUND:
            self.n_bar = message.payload

    def space_words(self) -> int:
        if self.exact_counts:
            local = 2 * len(self.exact)
        else:
            local = self.mg.space_words()
        return local + 2 * len(self.reported) + self.doubler.space_words() + 2


class DeterministicFrequencyCoordinator(Coordinator):
    """Sums the last reported local count per (site, item)."""

    def __init__(self, network, k, eps):
        super().__init__(network)
        self.k = k
        self.eps = eps
        self.tracker = GlobalCountTracker()
        self.last = {}  # (site_id, item) -> reported count
        self.total = {}  # item -> sum over sites

    def on_message(self, site_id: int, message: Message) -> None:
        if message.kind == MSG_SET:
            item, value = message.payload
            key = (site_id, item)
            self.total[item] = (
                self.total.get(item, 0) + value - self.last.get(key, 0)
            )
            self.last[key] = value
        elif message.kind == MSG_DOUBLE:
            n_bar = self.tracker.update(site_id, message.payload)
            if n_bar is not None:
                self.broadcast(MSG_ROUND, n_bar)

    def estimate_frequency(self, item) -> float:
        """Estimated frequency; in [f - eps*n, f] (never overcounts)."""
        return float(self.total.get(item, 0))

    def heavy_hitters(self, phi: float) -> dict:
        threshold = phi * max(1, self.tracker.n_prime)
        return {
            j: float(c) for j, c in self.total.items() if c >= threshold
        }

    def top_items(self, m: int) -> list:
        """The m items with the largest estimated frequencies
        ((item, estimate) pairs, best first; see [3])."""
        scored = sorted(self.total.items(), key=lambda t: -t[1])
        return [(j, float(c)) for j, c in scored[:m]]

    # -- merge hooks (cross-shard query plane) -----------------------------

    def estimate_frequencies(self, items) -> list:
        """Batched :meth:`estimate_frequency` for cross-shard merges."""
        return [self.estimate_frequency(j) for j in items]

    def frequency_basis(self) -> float:
        """The stream-length basis heavy-hitter thresholds scale by
        (the constant-factor tracker's n')."""
        return float(self.tracker.n_prime)

    @property
    def n_bar(self) -> int:
        return self.tracker.n_bar

    def space_words(self) -> int:
        return (
            2 * len(self.last)
            + 2 * len(self.total)
            + self.tracker.space_words()
        )


class DeterministicFrequencyScheme(TrackingScheme):
    """Factory for the deterministic baseline.

    Parameters
    ----------
    epsilon:
        Additive error target as a fraction of n.
    exact_counts:
        Keep exact per-item local counts instead of Misra–Gries
        (unbounded space; useful to isolate the sketching error).
    """

    name = "frequency/deterministic"
    one_way_capable = False

    def __init__(self, epsilon: float, exact_counts: bool = False):
        if not 0.0 < epsilon < 1.0:
            raise ValueError("epsilon must be in (0, 1)")
        self.epsilon = epsilon
        self.exact_counts = exact_counts

    def make_coordinator(self, network, k, seed):
        return DeterministicFrequencyCoordinator(network, k, self.epsilon)

    def make_site(self, network, site_id, k, seed):
        return DeterministicFrequencySite(
            site_id, network, k, self.epsilon, self.exact_counts
        )
