"""Frequency (heavy hitters) tracking protocols (Section 3)."""

from .deterministic import DeterministicFrequencyScheme
from .randomized import RandomizedFrequencyScheme

__all__ = ["DeterministicFrequencyScheme", "RandomizedFrequencyScheme"]
