"""Randomized frequency (heavy hitters) tracking — Section 3.1.

Per round (rounds are delimited by the shared ``n_bar`` doubling
broadcasts), every site runs a Manku–Motwani sticky sampler with creation
probability ``p``: an arriving item increments its counter if one exists;
otherwise a counter is created with probability ``p`` (and immediately
reported).  Existing-counter increments are reported with probability
``p``.  Independently, every arrival is forwarded as a raw sample with
probability ``p`` (the ``d`` stream).

The coordinator estimates the per-round contribution of site ``i`` to the
frequency of ``j`` by equation (4):

    f_hat'_ij = c_bar_ij - 2 + 2/p     if a counter report exists,
              = -d_ij / p              otherwise,

which is *unbiased* with variance ``O(1/p^2)`` (Lemma 3.1) — the negative
branch cancels the conditional bias of the counter branch.  Round
estimates are frozen at round boundaries and summed.

Space is capped by *virtual sites*: a site that has received ``n_bar/k``
elements in the round notifies the coordinator, clears its memory and
continues as a fresh virtual site, bounding its space at
``O(p * n_bar / k) = O(1/(eps * sqrt(k)))`` expected words.

Total communication: ``O(sqrt(k)/eps * log N)`` (Theorem 3.1).
"""

from __future__ import annotations

from ...runtime import Coordinator, Message, Network, Site, TrackingScheme
from ...runtime.rng import coin, derive_rng
from ...sketch.sticky_sampling import StickySampler
from ..rounds import GlobalCountTracker, LocalDoubler, report_probability

__all__ = [
    "RandomizedFrequencyScheme",
    "RandomizedFrequencyCoordinator",
    "RandomizedFrequencySite",
]

MSG_DOUBLE = "double"  # site -> coord: local count doubled
MSG_COUNTER = "counter"  # site -> coord: (item, counter value)
MSG_SAMPLE = "sample"  # site -> coord: raw sampled item (the d stream)
MSG_SPLIT = "split"  # site -> coord: virtual-site restart notification
MSG_ROUND = "round"  # coord -> all: new n_bar, round restart


class RandomizedFrequencySite(Site):
    """Site-side state: a sticky sampler, O(1/(eps sqrt(k))) words."""

    def __init__(self, site_id, network, k, eps, seed, virtual_sites=True,
                 sample_correction=True):
        super().__init__(site_id, network)
        self.k = k
        self.eps = eps
        self.rng = derive_rng(seed, "freq-site", site_id)
        self.doubler = LocalDoubler()
        self.n_bar = 0
        self.p = 1.0
        self.sticky = StickySampler(1.0, derive_rng(seed, "freq-sticky", site_id))
        self.round_elements = 0
        self.virtual_sites = virtual_sites
        self.sample_correction = sample_correction

    def on_element(self, item) -> None:
        # 1. Global count tracking first: a doubling report may trigger a
        # round broadcast, whose handler clears our round state; the
        # current element is then processed in the new round.
        report = self.doubler.increment()
        if report is not None:
            self.send(MSG_DOUBLE, report)

        # 2. Virtual-site split keeps per-round intake below n_bar/k.
        if self.virtual_sites and self.n_bar > 0:
            cap = max(1, self.n_bar // self.k)
            if self.round_elements >= cap:
                self._split()
        self.round_elements += 1

        # 3. Sticky counter list: creation happens with probability p and
        # is always reported; increments are reported with probability p.
        created, count = self.sticky.add(item)
        if created:
            self.send(MSG_COUNTER, (item, 1), words=2)
        elif count > 0 and coin(self.rng, self.p):
            self.send(MSG_COUNTER, (item, count), words=2)

        # 4. Independent raw sample (the d stream of estimator (4)).
        # Disabled under the ablation that reproduces the biased
        # estimator (2) of the paper.
        if self.sample_correction and coin(self.rng, self.p):
            self.send(MSG_SAMPLE, item, words=1)

    def on_elements(self, items) -> None:
        # Inlined on_element with identical state transitions and RNG
        # draw order (both the site rng and the sticky rng).  Any send may
        # re-enter on_message via a round broadcast, clearing the sticky
        # sampler and the round counters — so locals are flushed to self
        # immediately before every send and re-read immediately after.
        doubler = self.doubler
        dn = doubler.n
        dlast = doubler.last_report
        sticky = self.sticky
        counters = sticky.counters  # cleared in place; alias stays valid
        counters_get = counters.get
        sticky_rng = sticky.rng.random
        site_rng = self.rng.random
        send = self.send
        virtual = self.virtual_sites
        correction = self.sample_correction
        k = self.k
        relems = self.round_elements
        n_bar = self.n_bar
        cap = (n_bar // k or 1) if (virtual and n_bar > 0) else 0
        p = self.p
        sp = sticky.p
        pending = 0  # sticky arrivals not yet flushed to sticky.n

        for item in items:
            # 1. Global count tracking (may restart the round re-entrantly).
            dn += 1
            if dn >= 2 * dlast or dlast == 0:
                dlast = dn
                doubler.n = dn
                doubler.last_report = dlast
                sticky.n += pending
                pending = 0
                self.round_elements = relems
                send(MSG_DOUBLE, dn)
                relems = self.round_elements
                n_bar = self.n_bar
                cap = (n_bar // k or 1) if (virtual and n_bar > 0) else 0
                p = self.p
                sp = sticky.p

            # 2. Virtual-site split.
            if cap and relems >= cap:
                doubler.n = dn
                doubler.last_report = dlast
                sticky.n += pending
                pending = 0
                self.round_elements = relems
                self._split()
                relems = self.round_elements
            relems += 1

            # 3. Sticky counter list.
            pending += 1
            cur = counters_get(item)
            if cur is not None:
                count = cur + 1
                counters[item] = count
                created = False
            else:
                if sp >= 1.0 or sticky_rng() < sp:
                    counters[item] = 1
                    count = 1
                    created = True
                else:
                    count = 0
                    created = False
            if created:
                doubler.n = dn
                doubler.last_report = dlast
                sticky.n += pending
                pending = 0
                self.round_elements = relems
                send(MSG_COUNTER, (item, 1), words=2)
                relems = self.round_elements
                n_bar = self.n_bar
                cap = (n_bar // k or 1) if (virtual and n_bar > 0) else 0
                p = self.p
                sp = sticky.p
            elif count > 0:
                if p >= 1.0 or site_rng() < p:
                    doubler.n = dn
                    doubler.last_report = dlast
                    sticky.n += pending
                    pending = 0
                    self.round_elements = relems
                    send(MSG_COUNTER, (item, count), words=2)
                    relems = self.round_elements
                    n_bar = self.n_bar
                    cap = (n_bar // k or 1) if (virtual and n_bar > 0) else 0
                    p = self.p
                    sp = sticky.p

            # 4. Independent raw sample.
            if correction:
                if p >= 1.0 or site_rng() < p:
                    doubler.n = dn
                    doubler.last_report = dlast
                    sticky.n += pending
                    pending = 0
                    self.round_elements = relems
                    send(MSG_SAMPLE, item, words=1)
                    relems = self.round_elements
                    n_bar = self.n_bar
                    cap = (n_bar // k or 1) if (virtual and n_bar > 0) else 0
                    p = self.p
                    sp = sticky.p

        doubler.n = dn
        doubler.last_report = dlast
        sticky.n += pending
        self.round_elements = relems

    def _split(self) -> None:
        """Become a fresh virtual site: notify, clear, restart."""
        self.send(MSG_SPLIT, None, words=1)
        self.sticky.clear()
        self.round_elements = 0

    def on_message(self, message: Message) -> None:
        if message.kind != MSG_ROUND:
            return
        self.n_bar = message.payload
        self.p = report_probability(self.n_bar, self.k, self.eps)
        self.sticky.p = self.p
        self.sticky.clear()
        self.round_elements = 0

    def space_words(self) -> int:
        return self.sticky.space_words() + self.doubler.space_words() + 3


class RandomizedFrequencyCoordinator(Coordinator):
    """Maintains per-round estimator state and frozen past-round sums."""

    def __init__(self, network, k, eps, seed):
        super().__init__(network)
        self.k = k
        self.eps = eps
        self.tracker = GlobalCountTracker()
        self.p = 1.0
        # Current-round state, keyed by virtual site (site_id, incarnation).
        self.incarnation = {}
        self.counters = {}  # vsite -> {item: c_bar}
        self.dcounts = {}  # vsite -> {item: d}
        self.round_estimate = {}  # item -> sum of f_hat'_ij this round
        # Sum of frozen per-round estimates.
        self.frozen = {}

    # -- message handling --------------------------------------------------

    def _vsite(self, site_id):
        return (site_id, self.incarnation.get(site_id, 0))

    def on_message(self, site_id: int, message: Message) -> None:
        kind = message.kind
        if kind == MSG_COUNTER:
            item, value = message.payload
            self._on_counter(self._vsite(site_id), item, value)
        elif kind == MSG_SAMPLE:
            self._on_sample(self._vsite(site_id), message.payload)
        elif kind == MSG_SPLIT:
            self.incarnation[site_id] = self.incarnation.get(site_id, 0) + 1
        elif kind == MSG_DOUBLE:
            n_bar = self.tracker.update(site_id, message.payload)
            if n_bar is not None:
                self._start_round(n_bar)

    def _on_counter(self, vsite, item, value) -> None:
        per_site = self.counters.setdefault(vsite, {})
        previous = per_site.get(item)
        inv_p = 1.0 / self.p
        est = self.round_estimate
        if previous is None:
            # Counter branch replaces the -d/p branch for this (site, item).
            d = self.dcounts.get(vsite, {}).get(item, 0)
            est[item] = est.get(item, 0.0) + (value - 2 + 2 * inv_p) + d * inv_p
        else:
            est[item] = est.get(item, 0.0) + (value - previous)
        per_site[item] = value

    def _on_sample(self, vsite, item) -> None:
        per_site = self.dcounts.setdefault(vsite, {})
        per_site[item] = per_site.get(item, 0) + 1
        if item not in self.counters.get(vsite, {}):
            est = self.round_estimate
            est[item] = est.get(item, 0.0) - 1.0 / self.p

    def _start_round(self, n_bar) -> None:
        """Freeze the finished round's estimates, reset, broadcast."""
        for item, value in self.round_estimate.items():
            self.frozen[item] = self.frozen.get(item, 0.0) + value
        self.counters.clear()
        self.dcounts.clear()
        self.round_estimate.clear()
        self.incarnation.clear()
        self.p = report_probability(n_bar, self.k, self.eps)
        self.broadcast(MSG_ROUND, n_bar)

    # -- queries -----------------------------------------------------------

    def estimate_frequency(self, item) -> float:
        """Unbiased estimate of the global frequency of ``item``.

        May be negative (the unbiased correction term); callers that want
        a usable count can clamp at 0.
        """
        return self.frozen.get(item, 0.0) + self.round_estimate.get(item, 0.0)

    def heavy_hitters(self, phi: float) -> dict:
        """Items whose estimated frequency reaches ``phi * n``.

        ``n`` is taken from the internal constant-factor tracker (n').
        """
        threshold = phi * max(1, self.tracker.n_prime)
        items = set(self.frozen) | set(self.round_estimate)
        out = {}
        for item in items:
            f = self.estimate_frequency(item)
            if f >= threshold:
                out[item] = f
        return out

    def top_items(self, m: int) -> list:
        """The m items with the largest estimated frequencies.

        The top-k monitoring query of Babcock & Olston [3], answered
        from the tracker's state: returns (item, estimate) pairs, best
        first.  Accuracy follows from the eps*n per-item guarantee.
        """
        items = set(self.frozen) | set(self.round_estimate)
        scored = [(j, self.estimate_frequency(j)) for j in items]
        scored.sort(key=lambda t: -t[1])
        return scored[:m]

    # -- merge hooks (cross-shard query plane) -----------------------------

    def estimate_frequencies(self, items) -> list:
        """Batched :meth:`estimate_frequency` for cross-shard merges."""
        return [self.estimate_frequency(j) for j in items]

    def frequency_basis(self) -> float:
        """The stream-length basis heavy-hitter thresholds scale by
        (the constant-factor tracker's n')."""
        return float(self.tracker.n_prime)

    @property
    def n_bar(self) -> int:
        return self.tracker.n_bar

    def space_words(self) -> int:
        words = self.tracker.space_words() + len(self.incarnation) + 2
        for d in self.counters.values():
            words += 2 * len(d)
        for d in self.dcounts.values():
            words += 2 * len(d)
        words += 2 * len(self.round_estimate) + 2 * len(self.frozen)
        return words


class RandomizedFrequencyScheme(TrackingScheme):
    """Factory for the Section 3.1 protocol.

    Parameters
    ----------
    epsilon:
        Additive error target, as a fraction of the current total count n:
        any frequency is estimated within ``eps * n`` with constant
        probability at any fixed time.
    virtual_sites:
        Enable the n_bar/k per-round space cap (ablation knob, default on).
    sample_correction:
        Use the unbiased estimator (4) with the -d/p branch (default).
        When False, reproduces the "tempting but wrong" biased
        estimator (2) — an ablation showing the Theta(eps n / sqrt(k))
        per-site bias the paper warns about.
    """

    name = "frequency/randomized"
    one_way_capable = False

    def __init__(self, epsilon: float, virtual_sites: bool = True,
                 sample_correction: bool = True):
        if not 0.0 < epsilon < 1.0:
            raise ValueError("epsilon must be in (0, 1)")
        self.epsilon = epsilon
        self.virtual_sites = virtual_sites
        self.sample_correction = sample_correction

    def make_coordinator(self, network, k, seed):
        return RandomizedFrequencyCoordinator(network, k, self.epsilon, seed)

    def make_site(self, network, site_id, k, seed):
        return RandomizedFrequencySite(
            site_id, network, k, self.epsilon, seed, self.virtual_sites,
            self.sample_correction,
        )
