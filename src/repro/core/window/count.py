"""Sliding-window count tracking (extension; related-work setting [5]).

Track ``|{elements arriving in the last W time units}|`` over k
distributed streams, continuously.  This is the setting of Chan, Lam,
Lee and Ting [5], cited by the paper as a sibling problem.  Protocol:

* every site maintains an exponential histogram over its own arrivals
  (for its local window count ``c_i``) plus a pending counter;
* when ``pending >= eps * c_i / 2`` it ships a 2-word increment
  ``(timestamp, pending)``;
* the coordinator feeds each increment into its *own* per-site
  exponential histogram and ages all of them locally at query time —
  window decay therefore costs **zero messages** (a silent site's truth
  and the coordinator's view decay identically).

Error: per-site unreported pending is below ``eps*c_i/2`` (sums to
``eps/2`` of the global window count), plus EH quantization ``eps/4``
on each side and the timestamp collapsing of each batch (bounded by the
same slack).  Communication: ``Theta(k/eps)`` words per window turnover
— unlike the paper's infinite-window trackers there is no log N total
bound; a window that turns over m times costs ~m * k/eps words, which
is inherent to forgetting.
"""

from __future__ import annotations

from ...runtime import Coordinator, Message, Network, Site, TrackingScheme
from ...sketch.exponential_histogram import ExponentialHistogram

__all__ = ["WindowedCountScheme"]

MSG_INC = "inc"  # site -> coord: (timestamp, count), 2 words


class _WindowSite(Site):
    """Local EH for the slack schedule; batched increment reporting."""

    def __init__(self, site_id, network, window, eps):
        super().__init__(site_id, network)
        self.window = window
        self.eh = ExponentialHistogram(window, eps / 4.0)
        self.eps = eps
        self.pending = 0

    def on_element(self, timestamp) -> None:
        self.eh.add(timestamp)
        self.pending += 1
        slack = max(1.0, self.eps * self.eh.estimate(timestamp) / 2.0)
        if self.pending >= slack:
            self.send(MSG_INC, (timestamp, self.pending), words=2)
            self.pending = 0

    def space_words(self) -> int:
        return self.eh.space_words() + 2


class _WindowCoordinator(Coordinator):
    """Mirrors each site with an EH fed by increments; ages locally."""

    def __init__(self, network, window, eps):
        super().__init__(network)
        self.window = window
        self.eps = eps
        self.mirrors = {}
        self.now = None

    def on_message(self, site_id: int, message: Message) -> None:
        if message.kind != MSG_INC:
            return
        timestamp, count = message.payload
        mirror = self.mirrors.get(site_id)
        if mirror is None:
            mirror = ExponentialHistogram(self.window, self.eps / 4.0)
            self.mirrors[site_id] = mirror
        for _ in range(count):
            mirror.add(timestamp)
        if self.now is None or timestamp > self.now:
            self.now = timestamp

    def estimate(self, now=None) -> float:
        """Approximate count of elements in ``(now - W, now]``.

        ``now`` defaults to the newest timestamp seen; pass the current
        clock explicitly to observe pure decay (no arrivals needed).
        """
        if now is None:
            now = self.now
        if now is None:
            return 0.0
        return sum(m.estimate(now) for m in self.mirrors.values())

    def latest_timestamp(self):
        """Newest timestamp this coordinator has seen (None if silent).

        The cross-shard merge plane takes the max over shards and
        evaluates every shard's :meth:`estimate` at it, so shard mirrors
        decay against one common clock.
        """
        return self.now

    def space_words(self) -> int:
        return sum(m.space_words() for m in self.mirrors.values()) + 2


class WindowedCountScheme(TrackingScheme):
    """Factory for the sliding-window count tracker.

    Parameters
    ----------
    window:
        Window length, in the same units as element timestamps
        (elements are their own timestamps; feed ``(site, t)`` pairs
        with non-decreasing ``t``).
    epsilon:
        Relative error target on the window count.
    """

    name = "window/count"
    one_way_capable = True

    def __init__(self, window: int, epsilon: float):
        if window < 1:
            raise ValueError("window must be >= 1")
        if not 0.0 < epsilon < 1.0:
            raise ValueError("epsilon must be in (0, 1)")
        self.window = window
        self.epsilon = epsilon

    def make_coordinator(self, network, k, seed):
        return _WindowCoordinator(network, self.window, self.epsilon)

    def make_site(self, network, site_id, k, seed):
        return _WindowSite(site_id, network, self.window, self.epsilon)
