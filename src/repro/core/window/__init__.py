"""Sliding-window tracking extension (related-work setting [5])."""

from .count import WindowedCountScheme

__all__ = ["WindowedCountScheme"]
