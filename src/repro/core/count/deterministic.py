"""The trivial deterministic count tracker (the paper's baseline).

Every time a local counter has grown by a ``(1 + eps)`` factor, the site
reports it.  The coordinator always holds an ``eps``-approximation of every
``n_i`` and hence of ``n``.  One-way communication only; cost
``Theta(k/eps * log N)`` — optimal for deterministic algorithms [29].
"""

from __future__ import annotations

import math

from ...runtime import Coordinator, Message, Network, Site, TrackingScheme

__all__ = [
    "DeterministicCountScheme",
    "DeterministicCountCoordinator",
    "DeterministicCountSite",
]

MSG_VALUE = "value"


class DeterministicCountSite(Site):
    """Report the local counter on every (1+eps)-factor growth."""

    def __init__(self, site_id: int, network: Network, eps: float):
        super().__init__(site_id, network)
        self.eps = eps
        self.n = 0
        self.last_sent = 0

    def on_element(self, item) -> None:
        self.n += 1
        if self.last_sent == 0 or self.n >= (1 + self.eps) * self.last_sent:
            self.last_sent = self.n
            self.send(MSG_VALUE, self.n)

    def on_elements(self, items) -> None:
        # Closed form: sends fire exactly at the counter values where the
        # per-event test flips, so only the O(log_{1+eps} m) send points
        # are visited instead of all m increments.  Transcript-identical
        # to on_element (same float comparison, hence ceil of the same
        # product picks the same send points).
        end = self.n + len(items)
        n = self.n
        last = self.last_sent
        while True:
            nxt = n + 1 if last == 0 else math.ceil((1 + self.eps) * last)
            if nxt <= n:
                # eps so small that (1+eps)*last rounds to last in float:
                # the per-event test then fires on every increment.
                nxt = n + 1
            if nxt > end:
                break
            n = nxt
            last = nxt
            self.n = n
            self.last_sent = last
            self.send(MSG_VALUE, n)
        self.n = end

    def space_words(self) -> int:
        return 2


class DeterministicCountCoordinator(Coordinator):
    """Sum of the last reported values; always within a (1+eps) factor."""

    def __init__(self, network: Network):
        super().__init__(network)
        self.last = {}
        self._total = 0

    def on_message(self, site_id: int, message: Message) -> None:
        if message.kind == MSG_VALUE:
            self._total += message.payload - self.last.get(site_id, 0)
            self.last[site_id] = message.payload

    def estimate(self) -> float:
        """Estimate of n; true n is in [estimate, (1+eps) * estimate)."""
        return float(self._total)

    def space_words(self) -> int:
        return len(self.last) + 1


class DeterministicCountScheme(TrackingScheme):
    """Factory for the trivial deterministic protocol."""

    name = "count/deterministic"
    one_way_capable = True
    # Strictly one-way: sites never receive responses, so relaxed mode
    # may stream their reports without per-message acks.
    sync_uplinks = False

    def __init__(self, epsilon: float):
        if not 0.0 < epsilon < 1.0:
            raise ValueError("epsilon must be in (0, 1)")
        self.epsilon = epsilon

    def make_coordinator(self, network, k, seed):
        return DeterministicCountCoordinator(network)

    def make_site(self, network, site_id, k, seed):
        return DeterministicCountSite(site_id, network, self.epsilon)
