"""Randomized count tracking (Section 2.1 of the paper).

Each site, on every increment of its local counter ``n_i``, sends the
latest value to the coordinator with probability ``p``.  The coordinator
estimates each counter as ``n_hat_i = n_bar_i - 1 + 1/p`` (equation (1)),
where ``n_bar_i`` is the last value received — an unbiased estimator with
variance at most ``1/p^2`` (Lemma 2.1).  With
``p = Theta(sqrt(k) / (eps * n))`` the total variance is ``(eps n)^2`` and
the estimate is within ``eps * n`` with constant probability.

``p`` is kept at ``Theta(sqrt(k)/(eps n))`` through the shared round
machinery (:mod:`repro.core.rounds`): the coordinator broadcasts ``n_bar``
whenever the tracked sum doubles, both parties derive
``p = 1/floor_pow2(eps n_bar / sqrt(k))``, and on each halving of ``p``
every site re-randomizes its ``n_bar_i`` by the backward geometric walk of
Section 2.1, informing the coordinator of the new value.

Total communication: ``O(sqrt(k)/eps * log N)``; ``O(1)`` words of state
per site (Theorem 2.1).
"""

from __future__ import annotations

from ...runtime import Coordinator, Message, Network, Site, TrackingScheme
from ...runtime.rng import coin, derive_rng, geometric_failures
from ..rounds import GlobalCountTracker, LocalDoubler, report_probability

__all__ = [
    "RandomizedCountScheme",
    "RandomizedCountCoordinator",
    "RandomizedCountSite",
]

MSG_DOUBLE = "double"  # site -> coord: local count doubled (n' tracking)
MSG_UPDATE = "update"  # site -> coord: probabilistic counter report
MSG_ADJUST = "adjust"  # site -> coord: re-randomized n_bar_i after p halved
MSG_ROUND = "round"  # coord -> all: new n_bar (starts a new round)


class RandomizedCountSite(Site):
    """Site-side state machine: O(1) words."""

    def __init__(self, site_id: int, network: Network, k: int, eps: float, seed: int,
                 adjust_on_halving: bool = True):
        super().__init__(site_id, network)
        self.k = k
        self.eps = eps
        self.adjust_on_halving = adjust_on_halving
        self.rng = derive_rng(seed, "count-site", site_id)
        self.doubler = LocalDoubler()
        self.p = 1.0  # current report probability (derived from n_bar)
        self.last_sent = 0  # n_bar_i: value of n_i at our last update

    @property
    def n_local(self) -> int:
        return self.doubler.n

    def on_element(self, item) -> None:
        report = self.doubler.increment()
        if report is not None:
            self.send(MSG_DOUBLE, report)
        if coin(self.rng, self.p):
            self.last_sent = self.doubler.n
            self.send(MSG_UPDATE, self.doubler.n)

    def on_elements(self, items) -> None:
        # Inlined on_element: same state transitions and the same RNG
        # draws in the same order (coin(rng, p) short-circuits the draw
        # at p >= 1, mirrored here), so the batched transcript is
        # identical.  self.p is re-read after every send because a send
        # can re-enter on_message via a round broadcast and halve it.
        doubler = self.doubler
        dn = doubler.n
        dlast = doubler.last_report
        rng_random = self.rng.random
        send = self.send
        p = self.p
        for _ in items:
            dn += 1
            if dn >= 2 * dlast or dlast == 0:
                dlast = dn
                doubler.n = dn
                doubler.last_report = dlast
                send(MSG_DOUBLE, dn)
                p = self.p
            if p >= 1.0 or rng_random() < p:
                self.last_sent = dn
                doubler.n = dn
                doubler.last_report = dlast
                send(MSG_UPDATE, dn)
                p = self.p
        doubler.n = dn
        doubler.last_report = dlast

    def on_message(self, message: Message) -> None:
        if message.kind != MSG_ROUND:
            return
        n_bar = message.payload
        new_p = report_probability(n_bar, self.k, self.eps)
        # p is an inverse power of two and only decreases; apply the
        # Section 2.1 re-randomization once per halving.
        while self.p > new_p:
            self.p /= 2.0
            if self.adjust_on_halving:
                self._adjust_after_halving()

    def _adjust_after_halving(self) -> None:
        """Re-randomize n_bar_i so the system looks as if it had always
        run with the halved p (the backward geometric walk)."""
        if self.last_sent == 0:
            return
        if coin(self.rng, 0.5):
            # Our last report survives the thinning; nothing changes.
            return
        failures = geometric_failures(self.rng, self.p)
        new_last = max(self.last_sent - 1 - failures, 0)
        self.last_sent = new_last
        self.send(MSG_ADJUST, new_last)

    def space_words(self) -> int:
        return self.doubler.space_words() + 2  # p and last_sent


class RandomizedCountCoordinator(Coordinator):
    """Coordinator: keeps one word per site plus the round state."""

    def __init__(self, network: Network, k: int, eps: float, seed: int):
        super().__init__(network)
        self.k = k
        self.eps = eps
        self.tracker = GlobalCountTracker()
        self.p = 1.0
        self.last_update = {}  # site_id -> n_bar_i (>= 1)

    def on_message(self, site_id: int, message: Message) -> None:
        if message.kind == MSG_UPDATE:
            self.last_update[site_id] = message.payload
        elif message.kind == MSG_ADJUST:
            if message.payload == 0:
                self.last_update.pop(site_id, None)
            else:
                self.last_update[site_id] = message.payload
        elif message.kind == MSG_DOUBLE:
            n_bar = self.tracker.update(site_id, message.payload)
            if n_bar is not None:
                # Update our own p before the sites react to the broadcast
                # (their adjust messages must land under the new p).
                self.p = report_probability(n_bar, self.k, self.eps)
                self.broadcast(MSG_ROUND, n_bar)

    def estimate(self) -> float:
        """Current unbiased estimate of n = sum_i n_i (equation (1))."""
        inv_p = 1.0 / self.p
        return sum(v - 1 + inv_p for v in self.last_update.values())

    @property
    def n_bar(self) -> int:
        return self.tracker.n_bar

    def space_words(self) -> int:
        return len(self.last_update) + self.tracker.space_words() + 1


class RandomizedCountScheme(TrackingScheme):
    """Factory for the Section 2.1 protocol.

    Parameters
    ----------
    epsilon:
        Target relative error.  The estimate is within ``eps * n`` with
        probability >= 3/4 at any fixed time (boost with
        :class:`repro.core.boosting.MedianBoostedScheme` for 0.9+ or for
        all-times guarantees).
    adjust_on_halving:
        Apply the Section 2.1 re-randomization of n_bar_i when p halves
        (default).  Ablation only; False biases the estimator.
    """

    name = "count/randomized"
    one_way_capable = False
    # Keeps the default sync_uplinks = True: the round machinery is
    # drift-sensitive — with ack-free streaming and whole-batch
    # per-site coalescing a site can report at a stale (higher) p for
    # its entire merged run, and measured drift then brushes the eps*n
    # bound the relaxed contract promises.  Acked uplinks keep the
    # baseline relaxed drift distribution.

    def __init__(self, epsilon: float, adjust_on_halving: bool = True):
        if not 0.0 < epsilon < 1.0:
            raise ValueError("epsilon must be in (0, 1)")
        self.epsilon = epsilon
        # Ablation knob: disabling the backward geometric walk leaves
        # stale n_bar_i values estimated with the new (smaller) p, which
        # biases the estimator — exactly what Section 2.1's adjustment
        # step exists to prevent.
        self.adjust_on_halving = adjust_on_halving

    def make_coordinator(self, network, k, seed):
        return RandomizedCountCoordinator(network, k, self.epsilon, seed)

    def make_site(self, network, site_id, k, seed):
        return RandomizedCountSite(
            site_id, network, k, self.epsilon, seed, self.adjust_on_halving
        )
