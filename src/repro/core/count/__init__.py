"""Count-tracking protocols (Section 2 of the paper)."""

from .deterministic import DeterministicCountScheme
from .randomized import RandomizedCountScheme

__all__ = ["DeterministicCountScheme", "RandomizedCountScheme"]
