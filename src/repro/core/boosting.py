"""Median boosting: run m independent copies, answer with the median.

Section 2.1: a single copy of the randomized tracker is correct at any one
time instance with constant probability.  Running
``m = O(log(log N / (delta * eps)))`` independent copies and taking the
median of their estimates yields correctness at *all* times with
probability ``1 - delta`` (the estimate only needs to be re-validated at
the ``O(1/eps * log N)`` times n grows by a ``1+eps`` factor).

The wrapper multiplexes the copies over one network: every inner message
is tagged with its copy index (the tag rides along free — in a real
deployment it is ``O(log m)`` bits folded into the message header).
"""

from __future__ import annotations

import math
import statistics

from ..runtime import Coordinator, Message, Network, Site, TrackingScheme

__all__ = ["MedianBoostedScheme", "copies_for_confidence"]

MSG_BOOST = "boost"


def copies_for_confidence(delta: float, eps: float, n_max: int) -> int:
    """Number of copies for a 1-delta guarantee over the whole horizon.

    ``O(log(log N / (delta * eps)))`` with a small explicit constant;
    always odd so the median is well-defined.
    """
    instants = max(2.0, math.log(max(2, n_max)) / eps)
    m = int(math.ceil(4 * math.log(instants / delta)))
    return m + 1 if m % 2 == 0 else m


class _TaggedChannel:
    """Network facade handed to inner protocol components.

    Wraps every inner message as ``(copy_index, inner_message)`` so the
    outer wrapper can demultiplex; preserves word counts exactly.
    """

    def __init__(self, network: Network, index: int):
        self._network = network
        self._index = index
        self.num_sites = network.num_sites
        self.one_way = network.one_way
        self.stats = network.stats

    def _wrap(self, message: Message) -> Message:
        return Message(MSG_BOOST, (self._index, message), message.words)

    def send_to_coordinator(self, site_id: int, message: Message) -> None:
        self._network.send_to_coordinator(site_id, self._wrap(message))

    def send_to_site(self, site_id: int, message: Message) -> None:
        self._network.send_to_site(site_id, self._wrap(message))

    def broadcast(self, message: Message) -> None:
        self._network.broadcast(self._wrap(message))


class BoostedSite(Site):
    """Feeds every element to all inner sites; routes replies by tag."""

    def __init__(self, site_id: int, network: Network, inner_sites):
        super().__init__(site_id, network)
        self.inner = inner_sites

    def on_element(self, item) -> None:
        for site in self.inner:
            site.on_element(item)

    def on_message(self, message: Message) -> None:
        index, inner_message = message.payload
        self.inner[index].on_message(inner_message)

    def space_words(self) -> int:
        return sum(site.space_words() for site in self.inner)


class BoostedCoordinator(Coordinator):
    """Demultiplexes to inner coordinators; queries take the median."""

    def __init__(self, network: Network, inner_coordinators):
        super().__init__(network)
        self.inner = inner_coordinators

    def on_message(self, site_id: int, message: Message) -> None:
        index, inner_message = message.payload
        self.inner[index].on_message(site_id, inner_message)

    def _median_over(self, fn):
        return statistics.median(fn(c) for c in self.inner)

    def estimate(self) -> float:
        return self._median_over(lambda c: c.estimate())

    def estimate_frequency(self, item) -> float:
        return self._median_over(lambda c: c.estimate_frequency(item))

    def estimate_rank(self, x) -> float:
        return self._median_over(lambda c: c.estimate_rank(x))

    def space_words(self) -> int:
        return sum(c.space_words() for c in self.inner)


class MedianBoostedScheme(TrackingScheme):
    """Run ``copies`` independent instances of ``base``; answer medians.

    Works for any scheme whose coordinator exposes ``estimate``,
    ``estimate_frequency`` or ``estimate_rank``.  Communication and space
    are exactly ``copies`` times the base scheme's.
    """

    def __init__(self, base: TrackingScheme, copies: int):
        if copies < 1:
            raise ValueError("copies must be >= 1")
        self.base = base
        self.copies = copies
        self.name = f"{base.name}+median{copies}"

    def make_coordinator(self, network, k, seed):
        inner = [
            self.base.make_coordinator(
                _TaggedChannel(network, i), k, seed * 1_000_003 + i
            )
            for i in range(self.copies)
        ]
        return BoostedCoordinator(network, inner)

    def make_site(self, network, site_id, k, seed):
        inner = [
            self.base.make_site(
                _TaggedChannel(network, i), site_id, k, seed * 1_000_003 + i
            )
            for i in range(self.copies)
        ]
        return BoostedSite(site_id, network, inner)
