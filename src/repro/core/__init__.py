"""The paper's tracking protocols: count, frequency, rank, sampling."""

from .boosting import MedianBoostedScheme, copies_for_confidence
from .count import DeterministicCountScheme, RandomizedCountScheme
from .frequency import DeterministicFrequencyScheme, RandomizedFrequencyScheme
from .rank import (
    Cormode05RankScheme,
    DeterministicRankScheme,
    RandomizedRankScheme,
)
from .rounds import (
    GlobalCountTracker,
    LocalDoubler,
    floor_pow2,
    report_probability,
)
from .sampling import DistributedSamplingScheme
from .window import WindowedCountScheme

__all__ = [
    "MedianBoostedScheme",
    "copies_for_confidence",
    "DeterministicCountScheme",
    "RandomizedCountScheme",
    "DeterministicFrequencyScheme",
    "RandomizedFrequencyScheme",
    "Cormode05RankScheme",
    "DeterministicRankScheme",
    "RandomizedRankScheme",
    "GlobalCountTracker",
    "LocalDoubler",
    "floor_pow2",
    "report_probability",
    "DistributedSamplingScheme",
    "WindowedCountScheme",
]
