"""Constant-factor tracking of the global count n (shared machinery).

All three trackers in the paper first maintain ``n_bar``, a constant-factor
approximation of the current total count ``n``:

* every site reports its local count whenever it doubles;
* the coordinator sums the last reports, and when that sum has doubled
  since the last broadcast, it broadcasts the new value.

The broadcasts divide time into ``O(log N)`` *rounds*; within a round,
``n`` stays within a constant factor of ``n_bar``.  Total cost:
``O(k log N)`` messages.  This module provides the site-side and
coordinator-side halves of that protocol, plus the report-probability
schedule ``p = 1 / floor_pow2(eps * n_bar / sqrt(k))`` used by the
randomized algorithms.
"""

from __future__ import annotations

import math

from ..persistence.codec import PersistableState

__all__ = [
    "LocalDoubler",
    "GlobalCountTracker",
    "floor_pow2",
    "report_probability",
]


def floor_pow2(x: float) -> int:
    """Largest power of two that is <= x (requires x >= 1)."""
    if x < 1:
        raise ValueError("floor_pow2 requires x >= 1")
    return 1 << (int(x).bit_length() - 1)


def report_probability(n_bar: float, k: int, eps: float) -> float:
    """The paper's probability schedule for the current round.

    ``p = 1`` while ``n_bar <= sqrt(k)/eps``; afterwards
    ``p = 1 / floor_pow2(eps * n_bar / sqrt(k))``, so ``p`` is always an
    inverse power of two and halves as ``n_bar`` grows.
    """
    if n_bar <= math.sqrt(k) / eps:
        return 1.0
    return 1.0 / floor_pow2(eps * n_bar / math.sqrt(k))


class LocalDoubler(PersistableState):
    """Site-side half: report the local count each time it doubles."""

    def __init__(self):
        self.n = 0
        self.last_report = 0

    def increment(self):
        """Count one arrival; return the value to report, or None."""
        self.n += 1
        if self.n >= 2 * self.last_report or self.last_report == 0:
            self.last_report = self.n
            return self.n
        return None

    def space_words(self) -> int:
        return 2


class GlobalCountTracker(PersistableState):
    """Coordinator-side half: maintain n' and decide when to broadcast.

    ``update`` ingests one site's doubling report and returns the new
    ``n_bar`` if a broadcast is due (the running sum doubled), else None.
    """

    def __init__(self):
        self._last = {}
        self.n_prime = 0
        self.n_bar = 0

    def update(self, site_id: int, value: int):
        """Record a doubling report; return new n_bar if it should be
        broadcast now, else None."""
        prev = self._last.get(site_id, 0)
        self._last[site_id] = value
        self.n_prime += value - prev
        if self.n_prime >= 2 * self.n_bar and self.n_prime > 0:
            self.n_bar = self.n_prime
            return self.n_bar
        return None

    def space_words(self) -> int:
        return len(self._last) + 2
