"""E9 — Theorem 2.2: one-way communication lower bound.

Runs one-way protocols (deterministic and randomized-jittered thresholds)
against draws from the hard distribution mu and against its round-robin
case, next to the paper's two-way randomized tracker.  One-way protocols
pay ~k/eps log N regardless of their randomness; two-way communication is
what unlocks the sqrt(k) saving.
"""

import pytest

from repro import RandomizedCountScheme, Simulation
from repro.lowerbounds import OneWayThresholdScheme, measure_on_mu
from repro.workloads import round_robin

from _common import save_table

N = 60_000
K = 64
EPS = 0.02
DRAWS = 10


def build_rows():
    rows = []
    stats = {}
    for name, scheme, one_way in [
        ("one-way deterministic", OneWayThresholdScheme(EPS), True),
        ("one-way randomized", OneWayThresholdScheme(EPS, jitter=True), True),
        ("two-way randomized (Thm 2.1)", RandomizedCountScheme(EPS), False),
    ]:
        mu = measure_on_mu(scheme, K, N, draws=DRAWS, seed=60, one_way=one_way)
        rr = Simulation(scheme, K, seed=61, one_way=one_way)
        rr.run(round_robin(N, K))
        stats[name] = (mu["mean_messages"], rr.comm.total_messages)
        rows.append(
            [
                name,
                round(mu["mean_messages"]),
                f"{mu['worst_final_error']:.4f}",
                rr.comm.total_messages,
            ]
        )
    return rows, stats


@pytest.mark.benchmark(group="lowerbounds")
def test_oneway_lower_bound(benchmark):
    rows, stats = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    save_table(
        "lowerbound_oneway",
        ["protocol", "mean msgs on mu", "worst err", "msgs on round-robin"],
        rows,
        title=f"E9 Theorem 2.2: one-way protocols on the hard distribution "
        f"(N={N:,}, k={K}, eps={EPS}, {DRAWS} draws)",
    )
    det_mu, det_rr = stats["one-way deterministic"]
    jit_mu, jit_rr = stats["one-way randomized"]
    two_mu, two_rr = stats["two-way randomized (Thm 2.1)"]
    # Randomizing thresholds does not change the one-way cost shape
    # (constant-factor wiggle only — Theorem 2.2's claim).
    assert 0.3 < jit_rr / det_rr < 1.5
    # Two-way randomized undercuts both one-way variants on round-robin
    # (the distribution's expensive case); the gap is sqrt(k)-shaped and
    # partially eaten by constants at this scale.
    assert two_rr < 0.6 * det_rr
    assert two_rr < 0.8 * jit_rr
