"""E5 — correctness guarantees (Theorems 2.1, 3.1, 4.1).

Continuous success rates: fraction of checkpoints where each tracker's
estimate sits within eps*n (for the paper's single-copy constant
probability) across all three problems.
"""

import pytest

from repro import (
    RandomizedCountScheme,
    RandomizedFrequencyScheme,
    RandomizedRankScheme,
)
from repro.analysis import (
    evaluate_count_accuracy,
    evaluate_frequency_accuracy,
    evaluate_rank_accuracy,
)
from repro.workloads import (
    random_permutation_values,
    uniform_sites,
    with_items,
    zipf_items,
)

from _common import save_table

N, K, EPS = 60_000, 25, 0.05


def build_rows():
    rows = []
    count_report, _ = evaluate_count_accuracy(
        RandomizedCountScheme(EPS), K, uniform_sites(N, K, seed=20),
        eps=2 * EPS, checkpoint_every=N // 100,
    )
    rows.append(
        ["count (Thm 2.1)", count_report.checkpoints,
         f"{count_report.success_rate:.3f}",
         f"{count_report.mean_relative_error:.4f}",
         f"{count_report.max_relative_error:.4f}"]
    )
    freq_stream = with_items(
        uniform_sites(N, K, seed=21), zipf_items(500, alpha=1.3, seed=22)
    )
    freq_report, _ = evaluate_frequency_accuracy(
        RandomizedFrequencyScheme(EPS), K, freq_stream, eps=2 * EPS,
        track_items=[0, 1, 2, 5, 20], checkpoint_every=N // 40,
    )
    rows.append(
        ["frequency (Thm 3.1)", freq_report.checkpoints,
         f"{freq_report.success_rate:.3f}",
         f"{freq_report.mean_relative_error:.4f}",
         f"{freq_report.max_relative_error:.4f}"]
    )
    values = random_permutation_values(N, seed=23)
    sites = [s for s, _ in uniform_sites(N, K, seed=24)]
    rank_report, _ = evaluate_rank_accuracy(
        RandomizedRankScheme(EPS), K, zip(sites, values), eps=2 * EPS,
        query_points=[N // 4, N // 2, 3 * N // 4], checkpoint_every=N // 40,
    )
    rows.append(
        ["rank (Thm 4.1)", rank_report.checkpoints,
         f"{rank_report.success_rate:.3f}",
         f"{rank_report.mean_relative_error:.4f}",
         f"{rank_report.max_relative_error:.4f}"]
    )
    return rows


@pytest.mark.benchmark(group="accuracy")
def test_accuracy_guarantees(benchmark):
    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    save_table(
        "accuracy",
        ["problem", "checkpoints", "success@2eps", "mean err/n", "max err/n"],
        rows,
        title=f"Continuous tracking accuracy: N={N:,}, k={K}, eps={EPS} "
        f"(paper: constant probability per time instance, single copy)",
    )
    for row in rows:
        assert float(row[2]) >= 0.85, row
        assert float(row[3]) <= EPS, row
