"""S3 — distributed runtime costs: transport overhead and gateway latency.

What the real wire costs relative to the in-process engine:

1. **Transport tax**: the same seeded stream driven through (a) the
   in-process batched simulator, (b) the actor runtime over the
   in-process loopback transport, and (c) the actor runtime over framed
   TCP on localhost.  Lockstep dispatch pays one hub<->site round trip
   per run (plus one per protocol message), so burst length is the
   lever: the bench reports events/s at a service-realistic burst.
2. **Gateway service**: HTTP ingest throughput (batched POSTs through
   the bounded coalescing queue) and query latency percentiles against
   a live gateway over a keep-alive connection.
3. **Wire byte volume**: the same rank-scheme run (chunky payloads:
   event runs + shipped quantile summaries) over framed TCP with the
   binary payload envelope vs legacy all-JSON frames — the before/after
   of moving run chunks and summaries off JSON.

Results go to ``benchmarks/results/net.txt`` (table) and the
machine-readable ``BENCH_service.json`` at the repo root.

Run directly::

    python benchmarks/bench_net.py [--quick]
"""

import argparse
import http.client
import json
import os
import statistics
import time

from repro import (
    DeterministicCountScheme,
    RandomizedCountScheme,
    RandomizedRankScheme,
    TrackingService,
)
from repro.net import Cluster
from repro.net.gateway import GatewayThread
from repro.runtime import Simulation, batch_from_stream
from repro.workloads import bursty_sites

from _common import save_bench_json, save_table

K = 8
N = 200_000
N_QUICK = 20_000
BURST = 512
SEED = 13
QUERY_SAMPLES = 300
QUERY_SAMPLES_QUICK = 60
SCHEME_EPS = 0.02


def make_stream(n):
    return batch_from_stream(bursty_sites(n, K, burst=BURST, seed=SEED))


def bench_simulation(site_ids, items):
    sim = Simulation(DeterministicCountScheme(SCHEME_EPS), K, seed=SEED)
    start = time.perf_counter()
    sim.run_batched(site_ids, items)
    elapsed = time.perf_counter() - start
    return len(site_ids) / elapsed, sim.comm.total_messages


def bench_cluster(site_ids, items, transport, relaxed=False, window=None):
    with Cluster(
        DeterministicCountScheme(SCHEME_EPS),
        K,
        seed=SEED,
        transport=transport,
        record_transcript=False,
        relaxed=relaxed,
        window=window,
    ) as cluster:
        start = time.perf_counter()
        cluster.ingest(site_ids, items)
        elapsed = time.perf_counter() - start
        return len(site_ids) / elapsed, cluster.comm.total_messages


def bench_window_sweep(site_ids, items, sim_msgs):
    """Relaxed TCP throughput across in-flight window depths.

    ``window=1`` serializes super-runs (the latency floor), ``None`` is
    the unbounded pipeline; the interesting question is how small a
    window — i.e. how flat a memory profile — still captures the full
    relaxed speedup.  Message counts must stay exact at every depth.
    """
    sweep = {}
    for window in (1, 8, 64, None):
        rate, msgs = bench_cluster(
            site_ids, items, "tcp", relaxed=True, window=window
        )
        assert msgs == sim_msgs, (
            f"windowed dispatch (window={window}) changed the "
            "deterministic message count"
        )
        sweep["unbounded" if window is None else str(window)] = round(rate)
    return sweep


def bench_relaxed_accuracy(site_ids, items):
    """Relaxed-mode accuracy drift vs the scheme's error bound.

    The deterministic count scheme's guarantee is per-site (each site
    reports its own threshold crossings), so reordering uplinks cannot
    move the final estimate — relaxed must equal lockstep exactly.  The
    randomized scheme's coordinator runs order-sensitive rounds, so
    relaxed mode *can* drift; the contract is only that the drift stays
    within the eps*n error bound (docs/relaxed-mode.md).
    """
    n = len(site_ids)
    out = {"n": n, "eps": SCHEME_EPS, "error_bound": SCHEME_EPS * n}
    answers = {}
    for label, relaxed in (("lockstep", False), ("relaxed", True)):
        with Cluster(
            DeterministicCountScheme(SCHEME_EPS), K, seed=SEED,
            relaxed=relaxed, record_transcript=False,
        ) as cluster:
            cluster.ingest(site_ids, items)
            answers[label] = cluster.query()
    assert answers["relaxed"] == answers["lockstep"], (
        "deterministic count must be order-insensitive", answers
    )
    out["deterministic_exact"] = True
    for label, relaxed in (("lockstep", False), ("relaxed", True)):
        with Cluster(
            RandomizedCountScheme(SCHEME_EPS), K, seed=SEED,
            relaxed=relaxed, record_transcript=False,
        ) as cluster:
            cluster.ingest(site_ids, items)
            out[f"randomized_{label}"] = cluster.query()
    drift = abs(out["randomized_relaxed"] - n)
    out["randomized_relaxed_drift"] = drift
    out["within_bound"] = drift <= out["error_bound"]
    assert out["within_bound"], (
        "relaxed randomized count drifted past the error bound", out
    )
    return out


def bench_gateway(n, samples):
    service = TrackingService(num_sites=K, seed=SEED)
    service.register("events", RandomizedCountScheme(SCHEME_EPS))
    service.register("events-lb", DeterministicCountScheme(SCHEME_EPS))
    results = {}
    with GatewayThread(service) as gw:
        host, port = gw.url.split("//")[1].rsplit(":", 1)
        conn = http.client.HTTPConnection(host, int(port), timeout=60)

        def call(method, path, obj=None):
            body = None if obj is None else json.dumps(obj)
            conn.request(
                method, path, body=body,
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            payload = json.loads(response.read())
            assert response.status == 200, payload
            return payload

        site_ids, _ = make_stream(n)
        batch = 4096
        start = time.perf_counter()
        for i in range(0, len(site_ids), batch):
            call("POST", "/v1/ingest", {"site_ids": site_ids[i : i + batch]})
        elapsed = time.perf_counter() - start
        results["http_ingest_events_per_s"] = round(len(site_ids) / elapsed)

        latencies = []
        for i in range(samples):
            job = "events" if i % 2 else "events-lb"
            t0 = time.perf_counter()
            call("POST", "/v1/query", {"job": job})
            latencies.append((time.perf_counter() - t0) * 1000.0)
        latencies.sort()
        results["query_latency_ms"] = {
            "mean": round(statistics.mean(latencies), 3),
            "p50": round(latencies[len(latencies) // 2], 3),
            "p99": round(latencies[int(len(latencies) * 0.99) - 1], 3),
            "samples": samples,
        }
        conn.close()
    service.close()
    return results


def bench_wire_bytes(n):
    """Total framed TCP bytes: binary payload envelope vs all-JSON.

    Rank tracking is the byte-heavy protocol (runs of large int values
    up, quantile summaries with float weights back), so it shows what
    the binary layout buys; answers must agree exactly — the encoding
    must not change a single transcript bit.
    """
    from repro.workloads import random_permutation_values

    values = random_permutation_values(n, seed=SEED + 2)
    sites = [s for s, _ in bursty_sites(n, K, burst=BURST, seed=SEED)]
    out = {}
    answers = {}
    for label, kind in (("binary", "tcp"), ("json", "tcp-json")):
        with Cluster(
            RandomizedRankScheme(0.05),
            K,
            seed=SEED,
            transport=kind,
            record_transcript=False,
        ) as cluster:
            cluster.ingest(sites, values)
            stats = cluster.wire_stats
            out[label] = stats["bytes_sent"] + stats["bytes_received"]
            answers[label] = cluster.query("estimate_rank", n // 2)
    assert answers["binary"] == answers["json"], (
        "binary framing changed a query answer; encoding must be exact"
    )
    out["reduction"] = round(1.0 - out["binary"] / out["json"], 3)
    # The reduction is workload-specific (rank ships big int runs and
    # float-weighted summaries; count ships almost nothing) — record
    # which workload produced the figure so nobody quotes it for
    # another scheme.
    out["workload"] = "rank/randomized, random-permutation values"
    return out


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--quick", action="store_true", help="CI-sized run")
    args = parser.parse_args()
    n = N_QUICK if args.quick else N
    samples = QUERY_SAMPLES_QUICK if args.quick else QUERY_SAMPLES

    site_ids, items = make_stream(n)
    sim_rate, sim_msgs = bench_simulation(site_ids, items)
    loop_rate, loop_msgs = bench_cluster(site_ids, items, "loopback")
    tcp_rate, tcp_msgs = bench_cluster(site_ids, items, "tcp")
    assert sim_msgs == loop_msgs == tcp_msgs, (
        "runtimes disagree on protocol messages; equivalence is broken"
    )
    # Pipelined dispatch: the same stream with runs overlapped across
    # disjoint sites between protocol messages (exec plane's relaxed
    # mode).  The deterministic count scheme's message *count* is
    # order-insensitive, so it must match lockstep exactly.
    relaxed_tcp_rate, relaxed_msgs = bench_cluster(
        site_ids, items, "tcp", relaxed=True
    )
    assert relaxed_msgs == sim_msgs, (
        "relaxed dispatch changed the deterministic message count"
    )
    relaxed_speedup = relaxed_tcp_rate / tcp_rate
    window_sweep = bench_window_sweep(site_ids, items, sim_msgs)
    accuracy = bench_relaxed_accuracy(site_ids, items)
    gateway = bench_gateway(n, samples)
    wire = bench_wire_bytes(max(2000, n // 10))

    rows = [
        ["simulation (in-process)", f"{sim_rate:,.0f}", "1.00x"],
        ["cluster loopback", f"{loop_rate:,.0f}", f"{sim_rate / loop_rate:.1f}x"],
        ["cluster TCP", f"{tcp_rate:,.0f}", f"{sim_rate / tcp_rate:.1f}x"],
        [
            "cluster TCP relaxed",
            f"{relaxed_tcp_rate:,.0f}",
            f"{sim_rate / relaxed_tcp_rate:.1f}x",
        ],
        [
            "gateway HTTP ingest",
            f"{gateway['http_ingest_events_per_s']:,.0f}",
            f"{sim_rate / gateway['http_ingest_events_per_s']:.1f}x",
        ],
    ]
    save_table(
        "net",
        ["path", "events/s", "slowdown vs sim"],
        rows,
        title=(
            f"distributed runtime: n={n:,}, k={K}, burst={BURST}, "
            f"scheme=count/deterministic eps={SCHEME_EPS}"
        ),
    )
    latency = gateway["query_latency_ms"]
    print(
        f"relaxed dispatch (TCP): {relaxed_tcp_rate:,.0f} events/s = "
        f"{relaxed_speedup:.2f}x over lockstep; randomized drift "
        f"{accuracy['randomized_relaxed_drift']:,.0f} of bound "
        f"{accuracy['error_bound']:,.0f}"
    )
    print(
        "window sweep (relaxed TCP events/s): "
        + "  ".join(f"{k}={v:,}" for k, v in window_sweep.items())
    )
    print(
        f"gateway query latency: mean={latency['mean']}ms "
        f"p50={latency['p50']}ms p99={latency['p99']}ms "
        f"({latency['samples']} samples)"
    )
    print(
        f"wire bytes (rank, n={max(2000, n // 10):,}): "
        f"binary={wire['binary']:,} json={wire['json']:,} "
        f"({wire['reduction']:.0%} smaller)"
    )
    save_bench_json(
        "net",
        {
            "config": {
                "n": n,
                "k": K,
                "burst": BURST,
                "scheme": "count/deterministic",
                "eps": SCHEME_EPS,
                "quick": args.quick,
            },
            "ingest_events_per_s": {
                "simulation": round(sim_rate),
                "cluster_loopback": round(loop_rate),
                "cluster_tcp": round(tcp_rate),
                "gateway_http": gateway["http_ingest_events_per_s"],
            },
            "protocol_messages": sim_msgs,
            "query_latency_ms": latency,
            "wire_bytes": wire,
        },
    )
    save_bench_json(
        "exec",
        {
            "config": {
                "n": n,
                "k": K,
                "burst": BURST,
                "eps": SCHEME_EPS,
                "quick": args.quick,
            },
            "dispatch_events_per_s": {
                "lockstep_tcp": round(tcp_rate),
                "relaxed_tcp": round(relaxed_tcp_rate),
            },
            "relaxed_vs_lockstep": round(relaxed_speedup, 3),
            # per-core normalization: single-box runs serialize on the
            # GIL, so cross-machine comparisons need the core count out
            "relaxed_tcp_events_per_s_per_core": round(
                relaxed_tcp_rate / (os.cpu_count() or 1)
            ),
            "window_sweep_events_per_s": window_sweep,
            "relaxed_accuracy": accuracy,
        },
    )


if __name__ == "__main__":
    main()
