"""E13 — median boosting (Section 2.1's all-times guarantee).

A single tracker copy is correct at a fixed time with constant
probability; m independent copies with a median vote push the continuous
success rate toward 1 at m-times the communication.  Sweeps m and reports
the measured continuous success rate and cost.
"""

import pytest

from repro import MedianBoostedScheme, RandomizedCountScheme, Simulation
from repro.analysis import evaluate_count_accuracy
from repro.workloads import uniform_sites

from _common import save_table

N, K, EPS = 50_000, 16, 0.05
COPIES = (1, 3, 7)


def build_rows():
    rows = []
    success = {}
    words = {}
    for m in COPIES:
        if m == 1:
            scheme = RandomizedCountScheme(EPS)
        else:
            scheme = MedianBoostedScheme(RandomizedCountScheme(EPS), m)
        report, sim = evaluate_count_accuracy(
            scheme, K, uniform_sites(N, K, seed=90), eps=1.5 * EPS,
            checkpoint_every=N // 200,
        )
        success[m] = report.success_rate
        words[m] = sim.comm.total_words
        rows.append(
            [
                m,
                f"{report.success_rate:.4f}",
                f"{report.max_relative_error:.4f}",
                sim.comm.total_words,
            ]
        )
    return rows, success, words


@pytest.mark.benchmark(group="boosting")
def test_median_boosting(benchmark):
    rows, success, words = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    save_table(
        "boosting",
        ["copies m", "success@1.5eps (200 checkpoints)", "max err/n", "words"],
        rows,
        title=f"E13 median boosting: N={N:,}, k={K}, eps={EPS}",
    )
    # More copies => no worse continuous success; 7 copies near-perfect.
    assert success[7] >= success[1]
    assert success[7] >= 0.99
    # Cost scales ~linearly with m.
    assert 4 < words[7] / words[1] < 10
