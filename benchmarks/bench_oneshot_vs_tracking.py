"""E15 — Section 1.3: tracking is only ~log N harder than one-shot.

The paper: "the seemingly much more challenging tracking problem ... is
only harder by a Theta(log N) factor (except for the count-tracking
problem, which is much harder than its one-shot version)."

We measure, for the same final data, the one-shot cost ([13, 14]-style
protocols) against the continuous tracking cost, and report the ratio
next to log2(N).
"""

import math

import pytest

from repro import (
    RandomizedCountScheme,
    RandomizedFrequencyScheme,
    RandomizedRankScheme,
    Simulation,
)
from repro.oneshot import OneShotFrequency, OneShotRank, one_shot_count
from repro.runtime.rng import derive_rng
from repro.workloads import (
    random_permutation_values,
    uniform_sites,
    with_items,
    zipf_items,
)

from _common import save_table

N = 100_000
K = 36
EPS = 0.02


def build_rows():
    log_n = math.log2(N)
    arrivals = list(uniform_sites(N, K, seed=15))
    rows = []
    ratios = {}

    # -- count ------------------------------------------------------------
    local_counts = [0] * K
    for s, _ in arrivals:
        local_counts[s] += 1
    _, oneshot_words = one_shot_count(local_counts)
    sim = Simulation(RandomizedCountScheme(EPS), K, seed=16)
    sim.run(arrivals)
    ratios["count"] = sim.comm.total_words / oneshot_words
    rows.append(
        ["count", oneshot_words, sim.comm.total_words,
         f"{ratios['count']:.1f}", f"{log_n:.1f}"]
    )

    # -- frequency ----------------------------------------------------------
    stream = list(
        with_items(uniform_sites(N, K, seed=17), zipf_items(2000, seed=18))
    )
    site_data = [dict() for _ in range(K)]
    for s, j in stream:
        site_data[s][j] = site_data[s].get(j, 0) + 1
    oneshot = OneShotFrequency(EPS, derive_rng(19, "e15f")).run(site_data)
    sim = Simulation(RandomizedFrequencyScheme(EPS), K, seed=20)
    sim.run(stream)
    ratios["frequency"] = sim.comm.total_words / oneshot.words
    rows.append(
        ["frequency", oneshot.words, sim.comm.total_words,
         f"{ratios['frequency']:.1f}", f"{log_n:.1f}"]
    )

    # -- rank -----------------------------------------------------------------
    values = random_permutation_values(N, seed=21)
    sites = [s for s, _ in uniform_sites(N, K, seed=22)]
    site_values = [[] for _ in range(K)]
    for s, v in zip(sites, values):
        site_values[s].append(v)
    oneshot = OneShotRank(EPS, derive_rng(23, "e15r")).run(site_values)
    sim = Simulation(RandomizedRankScheme(EPS), K, seed=24)
    sim.run(list(zip(sites, values)))
    ratios["rank"] = sim.comm.total_words / oneshot.words
    rows.append(
        ["rank", oneshot.words, sim.comm.total_words,
         f"{ratios['rank']:.1f}", f"{log_n:.1f}"]
    )
    return rows, ratios


@pytest.mark.benchmark(group="oneshot")
def test_oneshot_vs_tracking(benchmark):
    rows, ratios = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    save_table(
        "oneshot_vs_tracking",
        ["problem", "one-shot words", "tracking words", "ratio", "log2 N"],
        rows,
        title=f"E15 Section 1.3: one-shot vs continuous tracking "
        f"(N={N:,}, k={K}, eps={EPS})",
    )
    log_n = math.log2(N)
    # Frequency: tracking within a constant of log N times one-shot (the
    # paper's Theta(log N) claim).
    assert 1.0 < ratios["frequency"] < 4 * log_n
    # Rank: Theorem 4.1 carries an extra log^1.5(1/(eps sqrt(k))) over
    # the one-shot cost, so the allowed factor is log N * h^1.5.
    h_factor = max(1.0, math.log2(1.0 / (EPS * math.sqrt(K)))) ** 1.5
    assert 1.0 < ratios["rank"] < 4 * log_n * h_factor
    # Count: tracking is *much* harder than its trivial k-word one-shot.
    assert ratios["count"] > log_n
