"""E16/E17 — extension studies beyond the paper's evaluation.

E16: sliding-window count tracking (the related-work setting [5]):
accuracy and communication of the EH-snapshot protocol across window
sizes, including the zero-message decay property.

E17: robustness under lossy uplinks (the paper assumes reliable
channels): end-of-stream error of each tracker as the drop rate grows —
absolute-value protocols self-heal; the rank tracker is repaired by its
tree redundancy at the cost of a small positive bias.
"""

import pytest

from repro import (
    DeterministicCountScheme,
    RandomizedCountScheme,
    RandomizedRankScheme,
    Simulation,
)
from repro.core.window import WindowedCountScheme
from repro.workloads import random_permutation_values, uniform_sites

from _common import save_table


def build_window_rows():
    k, eps, n = 8, 0.1, 40_000
    rows = []
    for window in (500, 2_000, 8_000):
        sim = Simulation(WindowedCountScheme(window, eps), k, seed=25)
        for t in range(n):
            sim.process(t % k, t)
        estimate = sim.coordinator.estimate(n - 1)
        before = sim.comm.total_messages
        decayed = sim.coordinator.estimate(n - 1 + 2 * window)
        rows.append(
            [
                window,
                estimate,
                f"{abs(estimate - window) / window:.3f}",
                sim.comm.total_messages,
                sim.comm.total_words,
                decayed,
                sim.comm.total_messages - before,
            ]
        )
    return rows


@pytest.mark.benchmark(group="extensions")
def test_window_tracking(benchmark):
    rows = benchmark.pedantic(build_window_rows, rounds=1, iterations=1)
    save_table(
        "extension_window",
        ["window W", "estimate", "rel err", "messages", "words",
         "estimate after 2W idle", "msgs spent on decay"],
        rows,
        title="E16 sliding-window count (k=8, eps=0.1, n=40,000, 1 event "
        "per tick): truth = W",
    )
    for row in rows:
        assert float(row[2]) <= 0.25  # window estimate accurate
        assert row[5] == 0.0  # fully decayed after 2W idle
        assert row[6] == 0  # decay costs zero messages


def build_fault_rows():
    n, k, eps = 40_000, 16, 0.05
    values = random_permutation_values(n, seed=26)
    sites = [s for s, _ in uniform_sites(n, k, seed=27)]
    rows = []
    errors = {}
    for rate in (0.0, 0.1, 0.25):
        det = Simulation(
            DeterministicCountScheme(eps), k, seed=28, uplink_drop_rate=rate
        )
        det.run(uniform_sites(n, k, seed=27))
        rand = Simulation(
            RandomizedCountScheme(eps), k, seed=28, uplink_drop_rate=rate
        )
        rand.run(uniform_sites(n, k, seed=27))
        rank = Simulation(
            RandomizedRankScheme(eps), k, seed=28, uplink_drop_rate=rate
        )
        rank.run(zip(sites, values))
        det_err = abs(det.coordinator.estimate() - n) / n
        rand_err = abs(rand.coordinator.estimate() - n) / n
        rank_err = abs(rank.coordinator.estimate_rank(n // 2) - n // 2) / n
        errors[rate] = (det_err, rand_err, rank_err)
        rows.append(
            [
                rate,
                f"{det_err:.4f}",
                f"{rand_err:.4f}",
                f"{rank_err:.4f}",
                rank.network.dropped_uplink_messages,
            ]
        )
    return rows, errors


@pytest.mark.benchmark(group="extensions")
def test_fault_tolerance(benchmark):
    rows, errors = benchmark.pedantic(build_fault_rows, rounds=1, iterations=1)
    save_table(
        "extension_faults",
        ["uplink drop rate", "det count err", "rand count err",
         "rank median err", "dropped msgs (rank run)"],
        rows,
        title="E17 robustness under lossy uplinks (n=40,000, k=16, eps=0.05)",
    )
    # Even at 25% loss every tracker stays within a few eps of truth —
    # absolute-value reports self-heal; the rank tree provides redundancy.
    det_err, rand_err, rank_err = errors[0.25]
    assert det_err <= 4 * 0.05
    assert rand_err <= 6 * 0.05
    assert rank_err <= 6 * 0.05
