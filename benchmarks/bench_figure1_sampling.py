"""E11 — Figure 1 / Claim A.1: the sampling problem.

Figure 1 depicts two normal distributions N(z(p - alpha), sigma^2) and
N(z(p + alpha), sigma^2) whose overlap makes the optimal threshold test
fail with probability ~1/2 when z = o(k).  We regenerate the quantities
behind the figure: means, the crossing threshold x0, and the error of the
optimal test — under both the normal approximation and the exact
hypergeometric law — across a sweep of probe counts z.
"""

import pytest

from repro.lowerbounds import figure1_curve, normal_error

from _common import save_table

K = 1024
Z_VALUES = (2, 8, 32, 128, 512, 1024)


def build_rows():
    rows = []
    curve = figure1_curve(K, Z_VALUES)
    for (z, approx, exact) in curve:
        fig = normal_error(K, z)
        rows.append(
            [
                z,
                f"{fig.mu1:.1f}",
                f"{fig.mu2:.1f}",
                f"{fig.x0:.1f}",
                f"{fig.sigma1:.2f}",
                f"{approx:.3f}",
                f"{exact:.3f}",
            ]
        )
    return rows, curve


@pytest.mark.benchmark(group="lowerbounds")
def test_figure1_sampling_problem(benchmark):
    rows, curve = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    save_table(
        "figure1_sampling",
        ["z", "mu1", "mu2", "x0", "sigma", "normal err", "exact err"],
        rows,
        title=f"E11 Figure 1 quantities (k={K}): error of the optimal test "
        "vs probes z",
    )
    errors = [exact for _, _, exact in curve]
    # Error near 1/2 for z = o(k) (Claim A.1's failure bound is
    # asymptotic; at z=2 the exact error is already > 0.45).
    assert errors[0] > 0.45
    assert errors[1] > 0.4
    # ...monotonically improving with z...
    assert all(b <= a + 1e-9 for a, b in zip(errors, errors[1:]))
    # ...and only dropping below 0.2 once z = Omega(k).
    below = [z for (z, _, e) in curve if e < 0.2]
    assert all(z >= K // 8 for z in below)
    # Normal approximation tracks the hypergeometric truth.
    for (_, approx, exact) in curve:
        assert abs(approx - exact) < 0.08
