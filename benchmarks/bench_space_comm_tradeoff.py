"""E12 — Theorem 3.2: the space-communication trade-off.

Theorem 3.2: any frequency tracker with C bits of communication and M
bits of site space has C * M = Omega(log N / eps^2).  Our three schemes
sit at different points of that curve:

* randomized (Thm 3.1):  C ~ sqrt(k)/eps log N,  M ~ 1/(eps sqrt(k))
* deterministic [29]:    C ~ k/eps log N,        M ~ 1/eps
* sampling [9]:          C ~ 1/eps^2 log N,      M ~ O(1)

The normalized product C*M * eps^2 / log N should be within a constant
band for the two space-frugal schemes and *larger* for the deterministic
one — no scheme may dip meaningfully below the bound.
"""

import math

import pytest

from repro import (
    DeterministicFrequencyScheme,
    DistributedSamplingScheme,
    RandomizedFrequencyScheme,
)
from repro.workloads import uniform_sites, with_items, zipf_items

from _common import run_sim, save_table

N = 120_000
K = 64
EPS = 0.02


def build_rows():
    stream = list(
        with_items(uniform_sites(N, K, seed=80), zipf_items(1500, seed=81))
    )
    rows = []
    products = {}
    for name, scheme in [
        ("randomized (Thm 3.1)", RandomizedFrequencyScheme(EPS)),
        ("deterministic [29]", DeterministicFrequencyScheme(EPS)),
        ("sampling [9]", DistributedSamplingScheme(EPS)),
    ]:
        sim = run_sim(scheme, stream, K, seed=82, space_interval=512)
        c = sim.comm.total_words
        m = max(1, sim.space.max_site_words)
        normalized = c * m * EPS**2 / math.log2(N)
        products[name] = normalized
        rows.append([name, c, m, round(c * m), f"{normalized:.1f}"])
    return rows, products


@pytest.mark.benchmark(group="lowerbounds")
def test_space_comm_tradeoff(benchmark):
    rows, products = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    save_table(
        "space_comm_tradeoff",
        ["scheme", "C (words)", "M (site words)", "C*M",
         "C*M * eps^2/logN"],
        rows,
        title=f"E12 Theorem 3.2 trade-off: N={N:,}, k={K}, eps={EPS} "
        "(lower bound: C*M = Omega(logN/eps^2), i.e. normalized = Omega(1))",
    )
    # No scheme dips below the trade-off curve (normalized >= 1)...
    assert all(p > 1.0 for p in products.values())
    # ...the two space-frugal schemes sit within a modest constant of it
    # (the paper notes sampling attains the other end of the trade-off),
    # while the deterministic tracker is orders of magnitude above...
    assert products["randomized (Thm 3.1)"] < 50
    assert products["sampling [9]"] < 50
    assert products["deterministic [29]"] > 20 * products["randomized (Thm 3.1)"]
