"""E6 — the sqrt(k) separation (communication vs number of sites).

Sweeps k at fixed eps and N for count tracking; fits the growth exponent
of each algorithm's cost in k and reports the det/rand ratio, which the
paper predicts grows like sqrt(k) (up to log-factor drift at fixed N).
"""

import math

import pytest

from repro import DeterministicCountScheme, RandomizedCountScheme
from repro.workloads import uniform_sites

from _common import run_sim, save_table

N = 150_000
EPS = 0.01
KS = (9, 25, 64, 100, 196)


def fit_exponent(ks, ys):
    """Least-squares slope of log y on log k."""
    xs = [math.log(k) for k in ks]
    ls = [math.log(y) for y in ys]
    mean_x = sum(xs) / len(xs)
    mean_l = sum(ls) / len(ls)
    num = sum((x - mean_x) * (l - mean_l) for x, l in zip(xs, ls))
    den = sum((x - mean_x) ** 2 for x in xs)
    return num / den


def build_rows():
    rows = []
    det_words = []
    rand_words = []
    for k in KS:
        stream = list(uniform_sites(N, k, seed=30))
        det = run_sim(DeterministicCountScheme(EPS), stream, k, seed=31)
        rand = run_sim(RandomizedCountScheme(EPS), stream, k, seed=31)
        det_words.append(det.comm.total_words)
        rand_words.append(rand.comm.total_words)
        rows.append(
            [
                k,
                det.comm.total_words,
                rand.comm.total_words,
                f"{det.comm.total_words / rand.comm.total_words:.2f}",
                f"{math.sqrt(k):.1f}",
            ]
        )
    return rows, det_words, rand_words


@pytest.mark.benchmark(group="scaling")
def test_scaling_in_k(benchmark):
    rows, det_words, rand_words = benchmark.pedantic(
        build_rows, rounds=1, iterations=1
    )
    det_exp = fit_exponent(KS, det_words)
    rand_exp = fit_exponent(KS, rand_words)
    rows.append(["fit k^a", f"a={det_exp:.2f}", f"a={rand_exp:.2f}", "-", "-"])
    save_table(
        "scaling_k",
        ["k", "det words", "rand words", "det/rand", "sqrt(k)"],
        rows,
        title=f"E6 sqrt(k) separation: N={N:,}, eps={EPS}",
    )
    # Deterministic grows distinctly faster in k than randomized
    # (theory: exponent 1 vs 1/2, minus shared log-factor drift).
    assert det_exp - rand_exp > 0.2
    # The separation widens across the sweep (ratios wobble by up to
    # sqrt(2) because p is quantized to inverse powers of two).
    ratios = [float(r[3]) for r in rows[:-1]]
    assert ratios[-1] > 1.8 * ratios[0]
