"""E1 — Table 1, count-tracking rows.

Regenerates the count block of Table 1: communication and per-site space
of the trivial deterministic tracker vs the paper's randomized tracker,
with the theory formulas printed alongside.  Shape assertions: the
randomized tracker ships fewer words, uses O(1) site space, and the
det/rand ratio grows with k (the sqrt(k) separation).
"""

import pytest

from repro import DeterministicCountScheme, RandomizedCountScheme
from repro.analysis import det_count_comm, rand_count_comm
from repro.workloads import uniform_sites

from _common import run_sim, save_table

N = 200_000
EPS = 0.01
KS = (25, 100)


def build_rows():
    rows = []
    ratios = {}
    for k in KS:
        stream = list(uniform_sites(N, k, seed=1))
        det = run_sim(DeterministicCountScheme(EPS), stream, k, seed=2)
        rand = run_sim(RandomizedCountScheme(EPS), stream, k, seed=2)
        rows.append(
            [
                k,
                "trivial (det)",
                det.comm.total_words,
                round(det_count_comm(k, EPS, N)),
                det.space.max_site_words,
                "O(1)",
                f"{abs(det.coordinator.estimate() - N) / N:.4f}",
            ]
        )
        rows.append(
            [
                k,
                "new (randomized)",
                rand.comm.total_words,
                round(rand_count_comm(k, EPS, N)),
                rand.space.max_site_words,
                "O(1)",
                f"{abs(rand.coordinator.estimate() - N) / N:.4f}",
            ]
        )
        ratios[k] = det.comm.total_words / rand.comm.total_words
    return rows, ratios


@pytest.mark.benchmark(group="table1")
def test_table1_count(benchmark):
    rows, ratios = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    save_table(
        "table1_count",
        ["k", "algorithm", "words", "theory words", "site space", "space bound", "final err"],
        rows,
        title=f"Table 1 (count rows): N={N:,}, eps={EPS}",
    )
    # Shape: randomized cheaper at every k; separation grows with k.
    for k in KS:
        assert ratios[k] > 1.0
    assert ratios[100] > ratios[25]
    # O(1) site space for both.
    assert all(r[4] <= 8 for r in rows)
    # Tracking accuracy at the end of the stream.
    assert all(float(r[6]) <= 3 * EPS for r in rows)
