"""E2 — Table 1, frequency-tracking rows.

Deterministic [29]-style tracker vs the paper's randomized tracker on a
Zipf workload: communication words, per-site space (the randomized
tracker must undercut the deterministic O(1/eps) space), and head-item
accuracy.
"""

from collections import Counter

import pytest

from repro import DeterministicFrequencyScheme, RandomizedFrequencyScheme
from repro.analysis import (
    det_frequency_comm,
    rand_frequency_comm,
    rand_frequency_space,
)
from repro.workloads import uniform_sites, with_items, zipf_items

from _common import run_sim, save_table

N = 150_000
EPS = 0.01
K = 64


def build_rows():
    stream = list(
        with_items(uniform_sites(N, K, seed=3), zipf_items(2_000, alpha=1.2, seed=4))
    )
    truth = Counter(j for _, j in stream)

    def head_error(sim):
        return max(
            abs(sim.coordinator.estimate_frequency(j) - truth[j]) / N
            for j in range(10)
        )

    det = run_sim(DeterministicFrequencyScheme(EPS), stream, K, seed=5)
    rand = run_sim(RandomizedFrequencyScheme(EPS), stream, K, seed=5)
    rows = [
        [
            "[29] (det)",
            det.comm.total_words,
            round(det_frequency_comm(K, EPS, N)),
            det.space.max_site_words,
            round(8 / EPS),
            f"{head_error(det):.4f}",
        ],
        [
            "new (randomized)",
            rand.comm.total_words,
            round(rand_frequency_comm(K, EPS, N)),
            rand.space.max_site_words,
            round(rand_frequency_space(K, EPS)),
            f"{head_error(rand):.4f}",
        ],
    ]
    return rows, det, rand


@pytest.mark.benchmark(group="table1")
def test_table1_frequency(benchmark):
    rows, det, rand = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    save_table(
        "table1_frequency",
        ["algorithm", "words", "theory words", "site space", "space bound", "head err"],
        rows,
        title=f"Table 1 (frequency rows): N={N:,}, k={K}, eps={EPS}, Zipf(1.2)",
    )
    assert rand.comm.total_words < det.comm.total_words / 2
    assert rand.space.max_site_words < det.space.max_site_words
    assert all(float(r[5]) <= 3 * EPS for r in rows)
