"""E3 — Table 1, rank-tracking rows.

The paper's randomized rank tracker vs the deterministic snapshot
baseline (the [6] cost shape; see DESIGN.md for why genuine [29] is not
reproduced).  Theory columns show both the [29] bound and the measured
baseline's own bound so all separations are visible.
"""

import bisect

import pytest

from repro import DeterministicRankScheme, RandomizedRankScheme
from repro.analysis import (
    cormode05_rank_comm,
    det_rank_comm,
    rand_rank_comm,
    rand_rank_space,
)
from repro.workloads import random_permutation_values, uniform_sites

from _common import run_sim, save_table

N = 100_000
EPS = 0.02
K = 36


def build_rows():
    values = random_permutation_values(N, seed=6)
    sites = [s for s, _ in uniform_sites(N, K, seed=7)]
    stream = list(zip(sites, values))
    svals = sorted(values)

    def max_rank_error(sim):
        return max(
            abs(sim.coordinator.estimate_rank(q) - bisect.bisect_left(svals, q)) / N
            for q in range(0, N, N // 20)
        )

    det = run_sim(DeterministicRankScheme(EPS), stream, K, seed=8)
    rand = run_sim(RandomizedRankScheme(EPS), stream, K, seed=8)
    rows = [
        [
            "snapshots [6] (det)",
            det.comm.total_words,
            round(cormode05_rank_comm(K, EPS, N)),
            det.space.max_site_words,
            f"{max_rank_error(det):.4f}",
        ],
        [
            "[29] (det, theory only)",
            "-",
            round(det_rank_comm(K, EPS, N)),
            "-",
            "-",
        ],
        [
            "new (randomized)",
            rand.comm.total_words,
            round(rand_rank_comm(K, EPS, N)),
            rand.space.max_site_words,
            f"{max_rank_error(rand):.4f}",
        ],
    ]
    return rows, det, rand


@pytest.mark.benchmark(group="table1")
def test_table1_rank(benchmark):
    rows, det, rand = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    save_table(
        "table1_rank",
        ["algorithm", "words", "theory words", "site space", "max rank err"],
        rows,
        title=f"Table 1 (rank rows): N={N:,}, k={K}, eps={EPS}, random order",
    )
    # Randomized beats the measured deterministic baseline decisively and
    # even undercuts the [29] *theory* bound at these parameters.
    assert rand.comm.total_words < det.comm.total_words / 10
    assert float(rows[0][4]) <= 2 * EPS
    assert float(rows[2][4]) <= 3 * EPS


@pytest.mark.benchmark(group="table1")
def test_rank_space_bound(benchmark):
    def run():
        values = random_permutation_values(N // 2, seed=9)
        sites = [s for s, _ in uniform_sites(N // 2, K, seed=10)]
        sim = run_sim(
            RandomizedRankScheme(EPS), list(zip(sites, values)), K, seed=11,
            space_interval=64,
        )
        return sim.space.max_site_words

    site_space = benchmark.pedantic(run, rounds=1, iterations=1)
    bound = rand_rank_space(K, EPS)
    save_table(
        "table1_rank_space",
        ["measured site words", "theory bound (const 1)"],
        [[site_space, round(bound)]],
        title="Rank tracker per-site space vs Theorem 4.1 bound",
    )
    # Within a modest constant of the theory formula.
    assert site_space < 40 * bound
