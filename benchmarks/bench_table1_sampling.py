"""E4 — Table 1, sampling row.

The continuous sampling baseline [9]: O((1/eps^2 + k) log N) words and
O(1) site space, answering count, frequency AND rank from one sample.
Shape assertions: it loses to the paper's algorithms when k << 1/eps^2
and wins over the deterministic tracker when k >> 1/eps^2.
"""

import pytest

from repro import (
    DeterministicCountScheme,
    DistributedSamplingScheme,
    RandomizedCountScheme,
)
from repro.analysis import sampling_comm
from repro.workloads import uniform_sites

from _common import run_sim, save_table

N = 120_000


def build_rows():
    rows = []
    outcomes = {}
    for label, k, eps in [
        ("k << 1/eps^2", 16, 0.01),  # 16 << 10,000
        ("k >> 1/eps^2", 400, 0.2),  # 400 >> 25
    ]:
        stream = list(uniform_sites(N, k, seed=12))
        samp = run_sim(DistributedSamplingScheme(eps), stream, k, seed=13)
        rand = run_sim(RandomizedCountScheme(eps), stream, k, seed=13)
        det = run_sim(DeterministicCountScheme(eps), stream, k, seed=13)
        rows.append(
            [
                label,
                k,
                eps,
                samp.comm.total_words,
                round(sampling_comm(k, eps, N)),
                rand.comm.total_words,
                det.comm.total_words,
                samp.space.max_site_words,
            ]
        )
        outcomes[label] = (
            samp.comm.total_words,
            rand.comm.total_words,
            det.comm.total_words,
        )
    return rows, outcomes


@pytest.mark.benchmark(group="table1")
def test_table1_sampling(benchmark):
    rows, outcomes = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    save_table(
        "table1_sampling",
        ["regime", "k", "eps", "sampling words", "theory", "rand words",
         "det words", "site space"],
        rows,
        title=f"Table 1 (sampling row [9]): N={N:,}",
    )
    samp, rand, det = outcomes["k << 1/eps^2"]
    assert rand < samp  # the paper's regime: randomized tracking wins
    samp, rand, det = outcomes["k >> 1/eps^2"]
    assert samp < det  # sampling regime: sampling beats deterministic
    assert all(r[7] <= 3 for r in rows)  # O(1) site space
