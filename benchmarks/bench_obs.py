"""S6 — observability overhead: instrumented vs bare ingest, scrape cost.

The observability plane's contract is "free when nobody is looking":
layer instruments are plain counters and the registry only reaches
into the service at scrape time.  This bench puts numbers on that:

1. **Ingest overhead**: the same seeded multi-job stream driven through
   a bare ``TrackingService`` (metrics-off — no registry, no hooks)
   and through one wired to a gateway's :class:`MetricsRegistry` with
   everything the production path does per coalescing round: the trace
   scope + ``round`` span, the ``on_applied`` observations, and an
   alert-rule evaluation pass (metrics-on).  The acceptance bar is
   <= 5% throughput overhead.
2. **Scrape cost**: p50/p99 latency of rendering the full Prometheus
   exposition (collectors included — a scrape fans ``metrics_sample``
   into the service) plus the payload size.
3. **Subscription eval**: cost per coalescing round of re-evaluating
   three representative standing queries under the service lock.
4. **Alert eval**: cost per round of computing every alert rule's raw
   value and stepping the rule state machines (the evaluator's alert
   leg), plus the synchronous dispatch latency of one transition event
   into a logfile sink.
5. **Fleet monitor**: per-hub cost of one ``hub_stats`` poll round
   against a two-shard fleet, and the steady-state ingest overhead of
   running the monitor thread alongside ingest (both contend on the
   ingest lock) — gated by the same <= 5% budget.

Results go to ``benchmarks/results/obs.txt`` and the ``obs`` section
of ``BENCH_service.json``.

Run directly::

    python benchmarks/bench_obs.py [--quick]
"""

import argparse
import os
import statistics
import tempfile
import time

from repro import (
    DeterministicCountScheme,
    DeterministicFrequencyScheme,
    RandomizedRankScheme,
    TrackingService,
)
from repro.net.gateway import Gateway
from repro.shard import ShardedTrackingService
from repro.obs import AlertManager, new_trace_id, render_prometheus, trace_scope
from repro.workloads import uniform_sites, with_items, zipf_items

from _common import save_bench_json, save_table

K = 32
N = 60_000
N_QUICK = 15_000
SEED = 41
BATCH = 4096
SCRAPES = 200
SCRAPES_QUICK = 50
EVAL_ROUNDS = 30
EVAL_ROUNDS_QUICK = 10
OVERHEAD_BUDGET_PCT = 5.0

JOBS = (
    ("total", lambda: DeterministicCountScheme(0.02)),
    ("hot", lambda: DeterministicFrequencyScheme(0.05)),
    ("med", lambda: RandomizedRankScheme(0.05)),
)

#: the standing queries the eval stage re-runs each round
SUBSCRIPTION_SPECS = (
    {"kind": "query", "job": "hot", "method": "heavy_hitters",
     "args": [0.1]},
    {"kind": "threshold", "job": "total", "method": "estimate",
     "op": ">", "value": 10_000_000, "args": []},
    {"kind": "metrics", "metric": "repro_service_elements_total"},
)

#: the alert rules the metrics-on drive and the alert-eval stage step
#: each round; thresholds sit far from the stream's totals so rounds
#: measure the steady state (no transitions, no sink traffic)
ALERT_MANIFEST = {
    "rules": [
        {"name": "volume-floor", "kind": "metrics",
         "metric": "repro_service_elements_total", "op": "<", "value": 0.0},
        {"name": "volume-ceiling", "kind": "metrics",
         "metric": "repro_service_elements_total",
         "op": ">", "value": 1e15, "for": 60.0},
        {"name": "total-runaway", "kind": "threshold", "job": "total",
         "op": ">", "value": 1e15},
    ],
}


def make_stream(n):
    stream = list(
        with_items(
            uniform_sites(n, K, seed=SEED),
            zipf_items(max(64, n // 50), alpha=1.2, seed=SEED + 1),
        )
    )
    return [s for s, _ in stream], [v for _, v in stream]


def build_service():
    service = TrackingService(num_sites=K, seed=SEED)
    for name, factory in JOBS:
        service.register(name, factory())
    return service


def drive(service, site_ids, items, per_batch=None):
    """Ingest in gateway-sized batches; returns events/s."""
    started = time.perf_counter()
    for base in range(0, len(site_ids), BATCH):
        batch_started = time.perf_counter()
        n = service.ingest(
            site_ids[base:base + BATCH], items[base:base + BATCH]
        )
        if per_batch is not None:
            per_batch(n, time.perf_counter() - batch_started)
    return len(site_ids) / (time.perf_counter() - started)


def bench_ingest(site_ids, items):
    """Bare vs instrumented throughput over the identical stream.

    The instrumented side runs exactly what a coalescing round costs on
    the live gateway — mint a trace id, enter its scope, record the
    ``round`` span (the service's ``ingest`` span rides the same
    scope), make the ``on_applied`` observations, then compute every
    alert rule's value and step the rule state machines.

    Whole-pass timings are noise-dominated (a scheduler hiccup swings a
    pass by 10%+), so the two modes alternate *per batch* — the same
    slice lands on the bare service and then immediately on the
    instrumented one — and the gated figure is the median of the paired
    per-batch overheads, which cancels drift.
    """
    bare = build_service()
    service = build_service()
    # registry + collectors + alert rules, no socket
    gateway = Gateway(service, alert_rules=ALERT_MANIFEST)
    rules = list(gateway.alerts.rules.values())
    off_total = on_total = 0.0
    paired_pct = []
    try:
        for base in range(0, len(site_ids), BATCH):
            sids = site_ids[base:base + BATCH]
            vals = items[base:base + BATCH]

            started = time.perf_counter()
            bare.ingest(sids, vals)
            t_off = time.perf_counter() - started

            started = time.perf_counter()
            trace_id = new_trace_id()
            with trace_scope({"trace_id": trace_id}):
                with gateway.spans.span(
                    "round", events=len(sids), coalesced=1
                ):
                    n = service.ingest(sids, vals)
            gateway._on_applied(n, time.perf_counter() - started)
            values = {
                rule.name: gateway._rule_value(rule.spec) for rule in rules
            }
            gateway.alerts.step(values, trace_id=trace_id)
            t_on = time.perf_counter() - started

            off_total += t_off
            on_total += t_on
            paired_pct.append((t_on - t_off) / t_off * 100.0)
    finally:
        gateway.alerts.close()
        service.close()
        bare.close()
    off_rate = len(site_ids) / off_total
    on_rate = len(site_ids) / on_total
    return off_rate, on_rate, statistics.median(paired_pct)


def bench_scrape(site_ids, items, scrapes):
    """Full-exposition render latency against a loaded service."""
    service = build_service()
    gateway = Gateway(service)
    try:
        drive(service, site_ids, items, per_batch=gateway._on_applied)
        text = render_prometheus(gateway.registry)
        payload_bytes = len(text.encode())
        samples = []
        for _ in range(scrapes):
            gateway._sample_cache = None  # force the service fan-out
            started = time.perf_counter()
            render_prometheus(gateway.registry)
            samples.append((time.perf_counter() - started) * 1e6)
        samples.sort()
        p50 = statistics.median(samples)
        p99 = samples[min(len(samples) - 1, int(len(samples) * 0.99))]
    finally:
        service.close()
    return p50, p99, payload_bytes


def bench_subscription_eval(site_ids, items, rounds):
    """Cost of re-evaluating the standing-query set once per round."""
    service = build_service()
    gateway = Gateway(service)
    try:
        drive(service, site_ids, items, per_batch=gateway._on_applied)
        samples = []
        for _ in range(rounds):
            started = time.perf_counter()
            for spec in SUBSCRIPTION_SPECS:
                gateway._evaluate_spec(spec)
            samples.append((time.perf_counter() - started) * 1e6)
    finally:
        service.close()
    return statistics.median(samples)


def bench_alert_eval(site_ids, items, rounds):
    """Per-round alert leg: rule values + state-machine step."""
    service = build_service()
    gateway = Gateway(service, alert_rules=ALERT_MANIFEST)
    try:
        drive(service, site_ids, items, per_batch=gateway._on_applied)
        rules = list(gateway.alerts.rules.values())
        samples = []
        for _ in range(rounds):
            started = time.perf_counter()
            values = {
                rule.name: gateway._rule_value(rule.spec) for rule in rules
            }
            gateway.alerts.step(values, trace_id="bench")
            samples.append((time.perf_counter() - started) * 1e6)
    finally:
        gateway.alerts.close()
        service.close()
    return statistics.median(samples)


def bench_sink_dispatch(rounds):
    """Synchronous logfile-sink latency for one transition event."""
    with tempfile.TemporaryDirectory() as tmp:
        manifest = {
            "sinks": {
                "log": {
                    "type": "logfile",
                    "path": os.path.join(tmp, "alerts.log"),
                },
            },
            "rules": [dict(ALERT_MANIFEST["rules"][0], sinks=["log"])],
        }
        manager = AlertManager.from_manifest(manifest)
        try:
            event = {
                "rule": "volume-floor", "state": "firing", "value": 0.0,
                "at": time.time(), "labels": {}, "trace_id": "bench",
            }
            samples = []
            for _ in range(rounds):
                started = time.perf_counter()
                assert manager.dispatch_now("log", event)
                samples.append((time.perf_counter() - started) * 1e6)
        finally:
            manager.close()
    return statistics.median(samples)


def bench_fleet_poll(site_ids, items, rounds):
    """Per-hub cost of one fleet poll round on a two-shard fleet.

    The gateway's own monitor is used unstarted — rounds are driven by
    hand so the timing is the poll itself (``hub_stats`` dispatch +
    state-machine step + event bookkeeping), not thread scheduling.
    """
    service = ShardedTrackingService(
        num_sites=K, num_shards=2, seed=SEED, executor="inline"
    )
    for name, factory in JOBS:
        service.register(name, factory())
    gateway = Gateway(service)
    try:
        # load real sketch state so sample_space walks populated jobs
        drive(service, site_ids[:BATCH * 4], items[:BATCH * 4])
        n_hubs = len(gateway.fleet.snapshot()["hubs"])
        samples = []
        for _ in range(rounds):
            started = time.perf_counter()
            gateway.fleet.poll_round()
            samples.append((time.perf_counter() - started) * 1e6)
    finally:
        service.close()
    return statistics.median(samples) / n_hubs, n_hubs


def bench_fleet_overhead(site_ids, items, interval=0.1):
    """Ingest overhead of a *running* monitor thread, paired per batch.

    Both sides ingest under their gateway's ingest lock (the production
    path holds it); the monitored side additionally has the fleet
    thread polling ``hub_stats`` at a short interval, so the figure is
    the steady-state lock contention an operator actually pays.
    """
    quiet_service = build_service()
    quiet = Gateway(quiet_service)
    polled_service = build_service()
    polled = Gateway(polled_service, fleet_interval=interval)
    polled.fleet.start()
    paired_pct = []
    try:
        for base in range(0, len(site_ids), BATCH):
            sids = site_ids[base:base + BATCH]
            vals = items[base:base + BATCH]

            started = time.perf_counter()
            with quiet.ingestor.lock:
                quiet_service.ingest(sids, vals)
            t_off = time.perf_counter() - started

            started = time.perf_counter()
            with polled.ingestor.lock:
                polled_service.ingest(sids, vals)
            t_on = time.perf_counter() - started
            paired_pct.append((t_on - t_off) / t_off * 100.0)
    finally:
        polled.fleet.stop()
        polled_service.close()
        quiet_service.close()
    return statistics.median(paired_pct)


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--quick", action="store_true", help="CI-sized run")
    args = parser.parse_args()
    n = N_QUICK if args.quick else N
    scrapes = SCRAPES_QUICK if args.quick else SCRAPES
    rounds = EVAL_ROUNDS_QUICK if args.quick else EVAL_ROUNDS

    site_ids, items = make_stream(n)
    off_rate, on_rate, overhead_pct = bench_ingest(site_ids, items)
    scrape_p50, scrape_p99, payload_bytes = bench_scrape(
        site_ids, items, scrapes
    )
    eval_us = bench_subscription_eval(site_ids, items, rounds)
    alert_us = bench_alert_eval(site_ids, items, rounds)
    sink_rounds = max(rounds * 10, 100)
    sink_us = bench_sink_dispatch(sink_rounds)
    poll_us_per_hub, n_hubs = bench_fleet_poll(site_ids, items, rounds)
    fleet_overhead_pct = bench_fleet_overhead(site_ids, items)

    save_table(
        "obs",
        ["stage", "result", "notes"],
        [
            ["ingest metrics-off", f"{off_rate:,.0f} ev/s", ""],
            ["ingest metrics-on", f"{on_rate:,.0f} ev/s",
             f"{overhead_pct:+.2f}% overhead"],
            ["scrape /metrics", f"{scrape_p50:.1f} us p50",
             f"{scrape_p99:.1f} us p99, {payload_bytes} B"],
            ["subscription eval", f"{eval_us:.1f} us/batch",
             f"{len(SUBSCRIPTION_SPECS)} standing queries"],
            ["alert eval", f"{alert_us:.1f} us/round",
             f"{len(ALERT_MANIFEST['rules'])} rules, values + step"],
            ["sink dispatch", f"{sink_us:.1f} us/event",
             "logfile sink, synchronous"],
            ["fleet poll", f"{poll_us_per_hub:.1f} us/hub",
             f"{n_hubs} hubs, hub_stats + state step"],
            ["fleet ingest overhead", f"{fleet_overhead_pct:+.2f}%",
             "monitor thread polling alongside ingest"],
        ],
        title=f"Observability overhead (n={n:,}, k={K})",
    )
    within_budget = (
        overhead_pct <= OVERHEAD_BUDGET_PCT
        and fleet_overhead_pct <= OVERHEAD_BUDGET_PCT
    )
    print(
        f"[bench] ingest overhead {overhead_pct:+.2f}%, fleet monitor "
        f"{fleet_overhead_pct:+.2f}% (budget {OVERHEAD_BUDGET_PCT:g}%): "
        f"{'PASSED' if within_budget else 'FAILED'}"
    )
    save_bench_json(
        "obs",
        {
            "config": {
                "n": n,
                "k": K,
                "jobs": [name for name, _ in JOBS],
                "batch": BATCH,
                "quick": args.quick,
            },
            "ingest_events_per_s": {
                "metrics_off": round(off_rate),
                "metrics_on": round(on_rate),
            },
            "overhead_pct": round(overhead_pct, 3),
            "overhead_budget_pct": OVERHEAD_BUDGET_PCT,
            "overhead_within_budget": within_budget,
            "scrape": {
                "p50_us": round(scrape_p50, 1),
                "p99_us": round(scrape_p99, 1),
                "payload_bytes": payload_bytes,
            },
            "subscription_eval_us_per_round": round(eval_us, 1),
            "standing_queries": len(SUBSCRIPTION_SPECS),
            "alerts": {
                "rules": len(ALERT_MANIFEST["rules"]),
                "eval_us_per_round": round(alert_us, 1),
                "sink_dispatch_us_per_event": round(sink_us, 1),
            },
            "fleet": {
                "hubs": n_hubs,
                "poll_us_per_hub": round(poll_us_per_hub, 1),
                "ingest_overhead_pct": round(fleet_overhead_pct, 3),
                "overhead_within_budget":
                    fleet_overhead_pct <= OVERHEAD_BUDGET_PCT,
            },
        },
    )
    if not within_budget:
        raise SystemExit(
            f"observability overhead {overhead_pct:.2f}% ingest / "
            f"{fleet_overhead_pct:.2f}% fleet exceeds "
            f"{OVERHEAD_BUDGET_PCT:g}% budget"
        )


if __name__ == "__main__":
    main()
