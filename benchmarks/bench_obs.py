"""S6 — observability overhead: instrumented vs bare ingest, scrape cost.

The observability plane's contract is "free when nobody is looking":
layer instruments are plain counters and the registry only reaches
into the service at scrape time.  This bench puts numbers on that:

1. **Ingest overhead**: the same seeded multi-job stream driven through
   a bare ``TrackingService`` (metrics-off — no registry, no hooks)
   and through one wired to a gateway's :class:`MetricsRegistry` with
   the per-round ``on_applied`` observations the production path makes
   (metrics-on).  The acceptance bar is <= 5% throughput overhead.
2. **Scrape cost**: p50/p99 latency of rendering the full Prometheus
   exposition (collectors included — a scrape fans ``metrics_sample``
   into the service) plus the payload size.
3. **Subscription eval**: cost per coalescing round of re-evaluating
   three representative standing queries under the service lock.

Results go to ``benchmarks/results/obs.txt`` and the ``obs`` section
of ``BENCH_service.json``.

Run directly::

    python benchmarks/bench_obs.py [--quick]
"""

import argparse
import statistics
import time

from repro import (
    DeterministicCountScheme,
    DeterministicFrequencyScheme,
    RandomizedRankScheme,
    TrackingService,
)
from repro.net.gateway import Gateway
from repro.obs import render_prometheus
from repro.workloads import uniform_sites, with_items, zipf_items

from _common import save_bench_json, save_table

K = 32
N = 60_000
N_QUICK = 15_000
SEED = 41
BATCH = 4096
SCRAPES = 200
SCRAPES_QUICK = 50
EVAL_ROUNDS = 30
EVAL_ROUNDS_QUICK = 10
OVERHEAD_BUDGET_PCT = 5.0

JOBS = (
    ("total", lambda: DeterministicCountScheme(0.02)),
    ("hot", lambda: DeterministicFrequencyScheme(0.05)),
    ("med", lambda: RandomizedRankScheme(0.05)),
)

#: the standing queries the eval stage re-runs each round
SUBSCRIPTION_SPECS = (
    {"kind": "query", "job": "hot", "method": "heavy_hitters",
     "args": [0.1]},
    {"kind": "threshold", "job": "total", "method": "estimate",
     "op": ">", "value": 10_000_000, "args": []},
    {"kind": "metrics", "metric": "repro_service_elements_total"},
)


def make_stream(n):
    stream = list(
        with_items(
            uniform_sites(n, K, seed=SEED),
            zipf_items(max(64, n // 50), alpha=1.2, seed=SEED + 1),
        )
    )
    return [s for s, _ in stream], [v for _, v in stream]


def build_service():
    service = TrackingService(num_sites=K, seed=SEED)
    for name, factory in JOBS:
        service.register(name, factory())
    return service


def drive(service, site_ids, items, per_batch=None):
    """Ingest in gateway-sized batches; returns events/s."""
    started = time.perf_counter()
    for base in range(0, len(site_ids), BATCH):
        batch_started = time.perf_counter()
        n = service.ingest(
            site_ids[base:base + BATCH], items[base:base + BATCH]
        )
        if per_batch is not None:
            per_batch(n, time.perf_counter() - batch_started)
    return len(site_ids) / (time.perf_counter() - started)


def bench_ingest(site_ids, items):
    """Bare vs instrumented throughput over the identical stream."""
    bare = build_service()
    try:
        off_rate = drive(bare, site_ids, items)
    finally:
        bare.close()

    service = build_service()
    gateway = Gateway(service)  # registry + collectors, no socket
    try:
        # the production per-round observations (observe two histograms,
        # invalidate the sample cache, set the dirty flag)
        on_rate = drive(service, site_ids, items,
                        per_batch=gateway._on_applied)
    finally:
        service.close()
    overhead_pct = (off_rate - on_rate) / off_rate * 100.0
    return off_rate, on_rate, overhead_pct


def bench_scrape(site_ids, items, scrapes):
    """Full-exposition render latency against a loaded service."""
    service = build_service()
    gateway = Gateway(service)
    try:
        drive(service, site_ids, items, per_batch=gateway._on_applied)
        text = render_prometheus(gateway.registry)
        payload_bytes = len(text.encode())
        samples = []
        for _ in range(scrapes):
            gateway._sample_cache = None  # force the service fan-out
            started = time.perf_counter()
            render_prometheus(gateway.registry)
            samples.append((time.perf_counter() - started) * 1e6)
        samples.sort()
        p50 = statistics.median(samples)
        p99 = samples[min(len(samples) - 1, int(len(samples) * 0.99))]
    finally:
        service.close()
    return p50, p99, payload_bytes


def bench_subscription_eval(site_ids, items, rounds):
    """Cost of re-evaluating the standing-query set once per round."""
    service = build_service()
    gateway = Gateway(service)
    try:
        drive(service, site_ids, items, per_batch=gateway._on_applied)
        samples = []
        for _ in range(rounds):
            started = time.perf_counter()
            for spec in SUBSCRIPTION_SPECS:
                gateway._evaluate_spec(spec)
            samples.append((time.perf_counter() - started) * 1e6)
    finally:
        service.close()
    return statistics.median(samples)


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--quick", action="store_true", help="CI-sized run")
    args = parser.parse_args()
    n = N_QUICK if args.quick else N
    scrapes = SCRAPES_QUICK if args.quick else SCRAPES
    rounds = EVAL_ROUNDS_QUICK if args.quick else EVAL_ROUNDS

    site_ids, items = make_stream(n)
    off_rate, on_rate, overhead_pct = bench_ingest(site_ids, items)
    scrape_p50, scrape_p99, payload_bytes = bench_scrape(
        site_ids, items, scrapes
    )
    eval_us = bench_subscription_eval(site_ids, items, rounds)

    save_table(
        "obs",
        ["stage", "result", "notes"],
        [
            ["ingest metrics-off", f"{off_rate:,.0f} ev/s", ""],
            ["ingest metrics-on", f"{on_rate:,.0f} ev/s",
             f"{overhead_pct:+.2f}% overhead"],
            ["scrape /metrics", f"{scrape_p50:.1f} us p50",
             f"{scrape_p99:.1f} us p99, {payload_bytes} B"],
            ["subscription eval", f"{eval_us:.1f} us/batch",
             f"{len(SUBSCRIPTION_SPECS)} standing queries"],
        ],
        title=f"Observability overhead (n={n:,}, k={K})",
    )
    within_budget = overhead_pct <= OVERHEAD_BUDGET_PCT
    print(
        f"[bench] ingest overhead {overhead_pct:+.2f}% "
        f"(budget {OVERHEAD_BUDGET_PCT:g}%): "
        f"{'PASSED' if within_budget else 'FAILED'}"
    )
    save_bench_json(
        "obs",
        {
            "config": {
                "n": n,
                "k": K,
                "jobs": [name for name, _ in JOBS],
                "batch": BATCH,
                "quick": args.quick,
            },
            "ingest_events_per_s": {
                "metrics_off": round(off_rate),
                "metrics_on": round(on_rate),
            },
            "overhead_pct": round(overhead_pct, 3),
            "overhead_budget_pct": OVERHEAD_BUDGET_PCT,
            "overhead_within_budget": within_budget,
            "scrape": {
                "p50_us": round(scrape_p50, 1),
                "p99_us": round(scrape_p99, 1),
                "payload_bytes": payload_bytes,
            },
            "subscription_eval_us_per_round": round(eval_us, 1),
            "standing_queries": len(SUBSCRIPTION_SPECS),
        },
    )
    if not within_budget:
        raise SystemExit(
            f"observability overhead {overhead_pct:.2f}% exceeds "
            f"{OVERHEAD_BUDGET_PCT:g}% budget"
        )


if __name__ == "__main__":
    main()
