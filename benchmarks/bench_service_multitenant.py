"""S1 — multi-tenant service throughput: batched vs looped driving.

Measures ingest throughput of the :class:`~repro.service.TrackingService`
batched engine against looped per-event driving (one
``Simulation.process`` call per event per job — the seed's hot path) on
the same multi-tenant stream, sweeping the number of concurrent jobs.
The headline row is the acceptance configuration: k=32 sites, 8
concurrent jobs, 1M events, where batched ingestion must be >= 5x.

Both sides run identical protocol transcripts (same seeds, same
messages — asserted), so the ratio isolates driving overhead: per-event
Python calls and per-event space bookkeeping vs decompose-once run
batching with interval space sweeps.

Run directly::

    python benchmarks/bench_service_multitenant.py [--quick]

or through pytest-benchmark: ``pytest benchmarks/bench_service_multitenant.py``.
"""

import argparse
import sys
import time

from repro import (
    DeterministicCountScheme,
    DeterministicFrequencyScheme,
    RandomizedCountScheme,
    RandomizedFrequencyScheme,
    Simulation,
    TrackingService,
)
from repro.runtime import batch_from_stream
from repro.workloads import multi_tenant

try:
    import numpy as np
except ImportError:  # pragma: no cover
    np = None

from _common import save_bench_json, save_table

K = 32
N = 1_000_000
N_QUICK = 60_000
TENANTS = 8
BURST = 64
BATCH = 65_536
SEED = 9

#: the 8-job acceptance mix: counts and heavy hitters at service-realistic
#: error targets; job sweeps use prefixes of this list.
JOB_MIX = (
    ("events", lambda: RandomizedCountScheme(0.01)),
    ("hot-items", lambda: RandomizedFrequencyScheme(0.05)),
    ("events-lb", lambda: DeterministicCountScheme(0.01)),
    ("hot-items-lb", lambda: DeterministicFrequencyScheme(0.05)),
    ("events-coarse", lambda: RandomizedCountScheme(0.02)),
    ("hot-items-coarse", lambda: RandomizedFrequencyScheme(0.1)),
    ("events-lb-coarse", lambda: DeterministicCountScheme(0.02)),
    ("hot-items-lb-coarse", lambda: DeterministicFrequencyScheme(0.1)),
)


def make_batch(n: int):
    """One multi-tenant stream, as parallel site/item arrays."""
    stream = multi_tenant(
        n, K, tenants=TENANTS, burst=BURST, seed=1, labeled=False
    )
    site_ids, items = batch_from_stream(stream)
    if np is not None:
        site_ids = np.asarray(site_ids, dtype=np.int64)
    return site_ids, items


def run_looped(jobs, site_ids, items):
    """Baseline: one Simulation per job, driven event by event."""
    sims = [Simulation(factory(), K, seed=SEED) for _, factory in jobs]
    sid_list = site_ids.tolist() if np is not None else list(site_ids)
    start = time.perf_counter()
    for sim in sims:
        process = sim.process
        for site_id, item in zip(sid_list, items):
            process(site_id, item)
    return time.perf_counter() - start, sims


def run_batched(jobs, site_ids, items, batch_size=BATCH):
    """Service under test: batched multi-tenant ingestion."""
    service = TrackingService(num_sites=K, seed=SEED)
    for name, factory in jobs:
        service.register(name, factory(), seed=SEED)
    n = len(items)
    start = time.perf_counter()
    for lo in range(0, n, batch_size):
        service.ingest(site_ids[lo : lo + batch_size], items[lo : lo + batch_size])
    return time.perf_counter() - start, service


def build_rows(n: int, job_counts=(1, 2, 4, 8)):
    site_ids, items = make_batch(n)
    rows = []
    sweep = []
    headline_ratio = None
    for num_jobs in job_counts:
        jobs = JOB_MIX[:num_jobs]
        t_loop, sims = run_looped(jobs, site_ids, items)
        t_batch, service = run_batched(jobs, site_ids, items)
        # Same transcripts, or the comparison is meaningless.
        for (name, _), sim in zip(jobs, sims):
            assert (
                service.job(name).comm.snapshot() == sim.comm.snapshot()
            ), f"transcript divergence in job {name!r}"
        ratio = t_loop / t_batch
        if num_jobs == len(JOB_MIX):
            headline_ratio = ratio
        sweep.append(
            {
                "jobs": num_jobs,
                "loop_s": round(t_loop, 4),
                "batch_s": round(t_batch, 4),
                "loop_mev_s": round(n * num_jobs / t_loop / 1e6, 3),
                "batch_mev_s": round(n * num_jobs / t_batch / 1e6, 3),
                "speedup": round(ratio, 3),
            }
        )
        rows.append(
            [
                num_jobs,
                f"{n * num_jobs / t_loop / 1e6:.2f}",
                f"{n * num_jobs / t_batch / 1e6:.2f}",
                f"{t_loop:.2f}",
                f"{t_batch:.2f}",
                f"{ratio:.2f}x",
            ]
        )
    return rows, headline_ratio, sweep


def run(n: int = N, quick: bool = False) -> float:
    rows, headline, sweep = build_rows(n)
    save_table(
        "service_multitenant" + ("_quick" if quick else ""),
        ["jobs", "loop Mev/s", "batch Mev/s", "loop s", "batch s", "speedup"],
        rows,
        title=(
            f"multi-tenant service ingest: k={K}, n={n:,}, "
            f"tenants={TENANTS}, burst={BURST}"
        ),
    )
    save_bench_json(
        "multitenant",
        {
            "n": n,
            "k": K,
            "tenants": TENANTS,
            "burst": BURST,
            "batch": BATCH,
            "quick": quick,
            "sweep": sweep,
            "headline_speedup": round(headline, 3),
            "headline_target": 5.0,
        },
    )
    print(f"\n8-job speedup: {headline:.2f}x (target >= 5x at n=1M)")
    return headline


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help=f"smoke mode: {N_QUICK:,} events instead of {N:,}",
    )
    parser.add_argument("-n", type=int, default=None, help="override stream length")
    args = parser.parse_args(argv)
    n = args.n if args.n is not None else (N_QUICK if args.quick else N)
    run(n, quick=args.quick)
    return 0


try:
    import pytest
except ImportError:  # pragma: no cover
    pytest = None

if pytest is not None:

    @pytest.mark.benchmark(group="service")
    def test_service_multitenant_throughput(benchmark):
        headline = benchmark.pedantic(
            lambda: run(N), rounds=1, iterations=1
        )
        assert headline >= 5.0


if __name__ == "__main__":
    sys.path.insert(0, "")
    sys.exit(main())
