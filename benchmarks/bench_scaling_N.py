"""E8 — communication scaling in log N.

Geometric sweep of the stream length: every tracker's cost must grow
*logarithmically* in N (rounds), i.e. the increments per doubling of N
are roughly constant.
"""

import pytest

from repro import DeterministicCountScheme, RandomizedCountScheme
from repro.workloads import uniform_sites

from _common import run_sim, save_table

K = 36
EPS = 0.02
NS = (25_000, 50_000, 100_000, 200_000)


def build_rows():
    rows = []
    rand_series = []
    for n in NS:
        stream = list(uniform_sites(n, K, seed=50))
        det = run_sim(DeterministicCountScheme(EPS), stream, K, seed=51)
        rand = run_sim(RandomizedCountScheme(EPS), stream, K, seed=51)
        rand_series.append(rand.comm.total_words)
        rows.append([n, det.comm.total_words, rand.comm.total_words])
    return rows, rand_series


@pytest.mark.benchmark(group="scaling")
def test_scaling_in_N(benchmark):
    rows, rand_series = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    increments = [
        b - a for a, b in zip(rand_series, rand_series[1:])
    ]
    rows.append(["per-doubling increments", "-", str(increments)])
    save_table(
        "scaling_N",
        ["N", "det words", "rand words"],
        rows,
        title=f"E8 log N scaling: k={K}, eps={EPS} "
        "(cost per doubling of N should be ~flat)",
    )
    # Logarithmic growth: 8x more data costs < 3.5x more words...
    assert rand_series[-1] / rand_series[0] < 3.5
    # ...and per-doubling increments are within a small factor of each
    # other (they approach the per-round steady-state cost).
    assert max(increments) / max(1, min(increments)) < 4.0
