"""S4 — sharded ingest: throughput scaling and cross-shard query costs.

Measures what the shard subsystem (:mod:`repro.shard`) buys and costs:

1. **Ingest scaling**: the same seeded multi-job stream driven through
   ``ShardedTrackingService`` at 1/2/4/8 shards with one worker process
   per shard (the production executor).  The 1-shard configuration is
   transcript-identical to the unsharded ``TrackingService`` (identity
   partition, pass-through seeds), so it is the honest baseline.
   Speedup is wall-clock and therefore bounded by the machine's cores —
   the bench records ``cpus`` next to the numbers.
2. **Cross-shard query latency**: per-method p50/p99 of merged queries
   (sum merges, candidate-union merges) against the 4-shard service.
3. **Merge accuracy**: merged answers vs an unsharded inline reference
   and vs ground truth, against the composed ``eps * n`` bound.

Results go to ``benchmarks/results/shard.txt`` and the ``shard``
section of ``BENCH_service.json``.

Run directly::

    python benchmarks/bench_shard.py [--quick]
"""

import argparse
import bisect
import os
import statistics
import time

from repro import (
    DeterministicCountScheme,
    DeterministicFrequencyScheme,
    RandomizedCountScheme,
    RandomizedRankScheme,
    ShardedTrackingService,
    TrackingService,
)
from repro.workloads import uniform_sites, with_items, zipf_items

from _common import save_bench_json, save_table

K = 32
N = 200_000
N_QUICK = 40_000
SEED = 23
BATCH = 16_384
SHARD_COUNTS = (1, 2, 4, 8)
QUERY_SAMPLES = 50
QUERY_SAMPLES_QUICK = 15

JOBS = (
    ("total", lambda: RandomizedCountScheme(0.02)),
    ("total-lb", lambda: DeterministicCountScheme(0.02)),
    ("hot", lambda: DeterministicFrequencyScheme(0.05)),
    ("med", lambda: RandomizedRankScheme(0.05)),
)


def make_stream(n):
    stream = list(
        with_items(
            uniform_sites(n, K, seed=SEED),
            zipf_items(max(64, n // 50), alpha=1.2, seed=SEED + 1),
        )
    )
    return [s for s, _ in stream], [v for _, v in stream]


def build_service(shards, executor):
    service = ShardedTrackingService(
        num_sites=K, num_shards=shards, seed=SEED, executor=executor
    )
    for name, factory in JOBS:
        service.register(name, factory())
    return service


def drive(service, site_ids, items):
    """Ingest the stream in service-sized batches; returns events/s."""
    n = len(site_ids)
    start = time.perf_counter()
    for i in range(0, n, BATCH):
        service.ingest(site_ids[i : i + BATCH], items[i : i + BATCH])
    elapsed = time.perf_counter() - start
    return n / elapsed


def bench_scaling(site_ids, items):
    rates = {}
    for shards in SHARD_COUNTS:
        service = build_service(shards, "process")
        try:
            rates[shards] = drive(service, site_ids, items)
        finally:
            service.close()
        print(
            f"[bench] shards={shards}: "
            f"{rates[shards]:,.0f} events/s "
            f"({rates[shards] / rates[SHARD_COUNTS[0]]:.2f}x vs 1 shard)"
        )
    return rates


def bench_queries(service, n, samples):
    """p50/p99 latency of merged cross-shard queries, per method."""
    cases = [
        ("estimate", ("total", None)),
        ("estimate_rank", ("med", "estimate_rank", n // 2)),
        ("quantile", ("med", "quantile", 0.5)),
        ("top_items", ("hot", "top_items", 10)),
        ("heavy_hitters", ("hot", "heavy_hitters", 0.02)),
    ]
    out = {}
    for label, call in cases:
        job, method, *args = call
        latencies = []
        for _ in range(samples):
            t0 = time.perf_counter()
            service.query(job, method, *args)
            latencies.append((time.perf_counter() - t0) * 1000.0)
        latencies.sort()
        out[label] = {
            "mean": round(statistics.mean(latencies), 3),
            "p50": round(latencies[len(latencies) // 2], 3),
            "p99": round(latencies[int(len(latencies) * 0.99) - 1], 3),
        }
    return out


def bench_accuracy(site_ids, items):
    """Merged 4-shard answers vs unsharded reference vs ground truth."""
    n = len(site_ids)
    reference = TrackingService(num_sites=K, seed=SEED)
    for name, factory in JOBS:
        reference.register(name, factory())
    reference.ingest(site_ids, items)
    sharded = build_service(4, "inline")
    sharded.ingest(site_ids, items)

    sorted_items = sorted(items)
    true_median_rank = 0.5 * n
    merged_median = sharded.query("med", "quantile", 0.5)
    out = {
        "count": {
            "true": n,
            "unsharded": reference.query("total"),
            "sharded": sharded.query("total"),
            "bound": 0.02 * n,
        },
        "count_deterministic_exact": (
            sharded.query("total-lb") == reference.query("total-lb")
        ),
        "median_rank_error": {
            "sharded": abs(
                bisect.bisect_left(sorted_items, merged_median)
                - true_median_rank
            ),
            "bound": 0.05 * n,
        },
        "composed_bound": sharded.error_bound("total"),
    }
    reference.close()
    sharded.close()
    return out


#: wall-clock speedup multi-shard process ingest must reach at the best
#: shard count for --check-scaling to pass (needs >= 2 real cores)
SCALING_TARGET = 2.0


def scaling_check(rates: dict, cpus: int, enforce: bool) -> dict:
    """Evaluate (or skip) the >=SCALING_TARGET x scaling assertion.

    Wall-clock scaling is physically impossible on a single-CPU
    container — every extra shard only adds IPC overhead, so a ~0.9x
    "regression" there is expected, not a finding.  The check therefore
    *skips* (and records why) when ``os.cpu_count() < 2``; with enough
    cores it compares the best multi-shard speedup against the target,
    asserting only when ``--check-scaling`` was passed.
    """
    base = rates[SHARD_COUNTS[0]]
    best_shards = max(SHARD_COUNTS[1:], key=lambda s: rates[s])
    best = rates[best_shards] / base
    result = {
        "cpus": cpus,
        "target": SCALING_TARGET,
        "best_speedup": round(best, 3),
        "best_shards": best_shards,
    }
    if cpus < 2:
        result["checked"] = False
        result["skipped"] = (
            f"requires >= 2 cpus, have {cpus}: wall-clock scaling on one "
            "core measures pure IPC overhead"
        )
        print(
            f"[bench] scaling check SKIPPED ({result['skipped']}); "
            f"best observed {best:.2f}x at {best_shards} shards"
        )
        return result
    result["checked"] = enforce
    result["passed"] = best >= SCALING_TARGET
    status = "PASSED" if result["passed"] else "FAILED"
    print(
        f"[bench] scaling check {status if enforce else 'observed'}: "
        f"{best:.2f}x at {best_shards} shards "
        f"(target {SCALING_TARGET:.1f}x, cpus={cpus})"
    )
    if enforce and not result["passed"]:
        raise SystemExit(
            f"scaling regression: best multi-shard speedup {best:.2f}x "
            f"< {SCALING_TARGET:.1f}x on {cpus} cpus"
        )
    return result


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--quick", action="store_true", help="CI-sized run")
    parser.add_argument(
        "--check-scaling", action="store_true",
        help=f"fail unless multi-shard ingest reaches {SCALING_TARGET:g}x "
        "over 1 shard (auto-skipped, and recorded as skipped, on "
        "single-CPU machines)",
    )
    args = parser.parse_args()
    n = N_QUICK if args.quick else N
    samples = QUERY_SAMPLES_QUICK if args.quick else QUERY_SAMPLES

    site_ids, items = make_stream(n)
    rates = bench_scaling(site_ids, items)

    query_service = build_service(4, "process")
    try:
        drive(query_service, site_ids, items)
        latency = bench_queries(query_service, n, samples)
    finally:
        query_service.close()

    accuracy = bench_accuracy(site_ids, items)
    cpus = os.cpu_count() or 1
    scaling = scaling_check(rates, cpus, enforce=args.check_scaling)

    base = rates[SHARD_COUNTS[0]]
    rows = [
        [
            f"{shards} shard{'s' if shards > 1 else ''}",
            f"{rates[shards]:,.0f}",
            f"{rates[shards] / base:.2f}x",
        ]
        for shards in SHARD_COUNTS
    ]
    cpu_note = " (1 cpu: speedups reflect IPC overhead only)" if cpus < 2 else ""
    save_table(
        "shard",
        ["configuration", "ingest events/s", "speedup vs 1 shard"],
        rows,
        title=(
            f"sharded ingest (process workers): n={n:,}, k={K}, "
            f"jobs={len(JOBS)}, batch={BATCH}, cpus={cpus}{cpu_note}"
        ),
    )
    for label, stats in latency.items():
        print(
            f"merged query {label}: p50={stats['p50']}ms "
            f"p99={stats['p99']}ms"
        )
    print(
        f"accuracy: count sharded={accuracy['count']['sharded']:,.0f} "
        f"(true {n:,}, bound +-{accuracy['count']['bound']:,.0f}); "
        f"deterministic count merge exact="
        f"{accuracy['count_deterministic_exact']}; median rank error "
        f"{accuracy['median_rank_error']['sharded']:,.0f} "
        f"(bound {accuracy['median_rank_error']['bound']:,.0f})"
    )
    save_bench_json(
        "shard",
        {
            "config": {
                "n": n,
                "k": K,
                "jobs": [name for name, _ in JOBS],
                "batch": BATCH,
                "executor": "process",
                "quick": args.quick,
            },
            "cpus": cpus,
            "scaling_check": scaling,
            "ingest_events_per_s": {
                str(shards): round(rate) for shards, rate in rates.items()
            },
            "speedup_vs_1_shard": {
                str(shards): round(rate / base, 3)
                for shards, rate in rates.items()
            },
            "query_latency_ms": latency,
            "accuracy": accuracy,
        },
    )


if __name__ == "__main__":
    main()
