"""E7 — communication scaling in 1/eps.

Sweeps eps for count and frequency tracking.  Both the deterministic and
randomized costs are Theta(1/eps); the *gap* between them stays ~sqrt(k)
across the sweep.  Also shows the sampling baseline's 1/eps^2 blow-up.
"""

import math

import pytest

from repro import (
    DeterministicCountScheme,
    DistributedSamplingScheme,
    RandomizedCountScheme,
)
from repro.workloads import uniform_sites

from _common import run_sim, save_table

N = 120_000
K = 64
EPSILONS = (0.04, 0.02, 0.01, 0.005)


def build_rows():
    rows = []
    series = {"det": [], "rand": [], "samp": []}
    for eps in EPSILONS:
        stream = list(uniform_sites(N, K, seed=40))
        det = run_sim(DeterministicCountScheme(eps), stream, K, seed=41)
        rand = run_sim(RandomizedCountScheme(eps), stream, K, seed=41)
        samp = run_sim(DistributedSamplingScheme(eps), stream, K, seed=41)
        series["det"].append(det.comm.total_words)
        series["rand"].append(rand.comm.total_words)
        series["samp"].append(samp.comm.total_words)
        rows.append(
            [
                eps,
                det.comm.total_words,
                rand.comm.total_words,
                samp.comm.total_words,
                f"{det.comm.total_words / rand.comm.total_words:.2f}",
            ]
        )
    return rows, series


@pytest.mark.benchmark(group="scaling")
def test_scaling_in_eps(benchmark):
    rows, series = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    save_table(
        "scaling_eps",
        ["eps", "det words", "rand words", "sampling words", "det/rand"],
        rows,
        title=f"E7 scaling in 1/eps: N={N:,}, k={K}",
    )
    # Halving eps from 0.02 to 0.01 should roughly double det and rand
    # (1/eps scaling), but roughly quadruple sampling (1/eps^2).
    det_growth = series["det"][2] / series["det"][1]
    rand_growth = series["rand"][2] / series["rand"][1]
    samp_growth = series["samp"][2] / series["samp"][1]
    assert 1.4 < det_growth < 2.8
    assert 1.2 < rand_growth < 2.8
    assert samp_growth > det_growth
    # 4x tighter eps (0.04 -> 0.01): sampling grows ~16x/4x-saturated,
    # clearly super-linear versus det's ~3x.  (At eps=0.005 the sample
    # size 4/eps^2 exceeds N and the cost saturates at shipping all
    # elements, which is itself worth seeing in the table.)
    assert series["samp"][2] / series["samp"][0] > 1.5 * (
        series["det"][2] / series["det"][0]
    )
    # The det/rand gap is stable across eps (both are Theta(1/eps)).
    ratios = [float(r[4]) for r in rows]
    assert max(ratios) / min(ratios) < 1.6
