"""E14 — ablations of the paper's design choices (DESIGN.md section 5).

(a) Count estimator (1): n_bar_i - 1 + 1/p vs the naive sum of n_bar_i.
(b) p-halving re-randomization vs naively keeping n_bar_i.
(c) Frequency estimator (4) vs the biased estimator (2).
(d) Virtual sites: per-site space with and without the n_bar/k cap.
(e) Rank tree vs flat blocks: coordinator summaries per chunk.
"""

import statistics

import pytest

from repro import (
    RandomizedCountScheme,
    RandomizedFrequencyScheme,
    RandomizedRankScheme,
    Simulation,
)
from repro.workloads import (
    random_permutation_values,
    single_site,
    uniform_sites,
    with_items,
    zipf_items,
)

from _common import save_table

N, K = 40_000, 16
EPS = 0.05
RUNS = 12


def mean_abs_error(values, truth):
    return sum(abs(v - truth) for v in values) / len(values)


def ablation_count_estimator():
    """(a): the -1 + 1/p correction removes a systematic undercount."""
    corrected, naive = [], []
    for seed in range(RUNS):
        sim = Simulation(RandomizedCountScheme(EPS), K, seed=seed)
        sim.run(uniform_sites(N, K, seed=100))
        corrected.append(sim.coordinator.estimate())
        naive.append(float(sum(sim.coordinator.last_update.values())))
    return (
        ["count estimator (eq 1)", "corrected vs naive sum of n_bar_i",
         f"{statistics.mean(corrected) - N:+.0f}",
         f"{statistics.mean(naive) - N:+.0f}"],
        statistics.mean(corrected) - N,
        statistics.mean(naive) - N,
    )


def ablation_halving_adjustment():
    """(b): skipping the geometric walk biases the estimate upward —
    stale n_bar_i values get credited with the larger new 1/p."""
    adjusted, frozen = [], []
    for seed in range(RUNS):
        for flag, out in ((True, adjusted), (False, frozen)):
            sim = Simulation(
                RandomizedCountScheme(EPS, adjust_on_halving=flag), K, seed=seed
            )
            sim.run(single_site(N, K, site_id=2))
            out.append(sim.coordinator.estimate())
    return (
        ["p-halving re-randomization", "on vs off (single-site stream)",
         f"{statistics.mean(adjusted) - N:+.0f}",
         f"{statistics.mean(frozen) - N:+.0f}"],
        statistics.mean(adjusted) - N,
        statistics.mean(frozen) - N,
    )


def ablation_frequency_estimator():
    """(c): estimator (2) drops the -d/p branch and is biased upward on
    items whose counters exist (no negative mass compensates)."""
    universe = 60
    stream = [(t % K, t % universe) for t in range(N)]
    corrected, biased = [], []
    for seed in range(RUNS):
        for flag, out in ((True, corrected), (False, biased)):
            sim = Simulation(
                RandomizedFrequencyScheme(EPS, sample_correction=flag),
                K,
                seed=seed,
            )
            sim.run(stream)
            total = sum(
                sim.coordinator.estimate_frequency(j) for j in range(universe)
            )
            out.append(total)
    return (
        ["frequency estimator (eq 4 vs eq 2)", "total mass error, 60 items",
         f"{statistics.mean(corrected) - N:+.0f}",
         f"{statistics.mean(biased) - N:+.0f}"],
        statistics.mean(corrected) - N,
        statistics.mean(biased) - N,
    )


def ablation_virtual_sites():
    """(d): the n_bar/k cap bounds site space under skewed arrivals."""
    items = zipf_items(200, seed=7)
    stream = list(with_items(single_site(N, K, site_id=0), items))
    spaces = {}
    for flag in (True, False):
        sim = Simulation(
            RandomizedFrequencyScheme(EPS, virtual_sites=flag), K, seed=3,
            space_sample_interval=64,
        )
        sim.run(stream)
        spaces[flag] = sim.space.max_words_per_site[0]
    return (
        ["virtual sites", "hot-site space words, on vs off",
         spaces[True], spaces[False]],
        spaces[True],
        spaces[False],
    )


def ablation_rank_tree():
    """(e): the binary tree caps retained summaries per chunk at h+1."""
    values = random_permutation_values(N, seed=8)
    sites = [s for s, _ in uniform_sites(N, K, seed=9)]
    stream = list(zip(sites, values))
    nodes = {}
    for flat in (False, True):
        sim = Simulation(RandomizedRankScheme(EPS, flat_tree=flat), K, seed=4)
        sim.run(stream)
        nodes[flat] = max(
            len(c.nodes) for c in sim.coordinator.chunks.values()
        )
    return (
        ["rank binary tree", "max summaries/chunk, tree vs flat",
         nodes[False], nodes[True]],
        nodes[False],
        nodes[True],
    )


@pytest.mark.benchmark(group="ablations")
def test_ablations(benchmark):
    def build():
        return [
            ablation_count_estimator(),
            ablation_halving_adjustment(),
            ablation_frequency_estimator(),
            ablation_virtual_sites(),
            ablation_rank_tree(),
        ]

    results = benchmark.pedantic(build, rounds=1, iterations=1)
    rows = [r[0] for r in results]
    save_table(
        "ablations",
        ["design choice", "metric", "paper design", "ablated"],
        rows,
        title=f"E14 ablations: N={N:,}, k={K}, eps={EPS} "
        f"(means over {RUNS} seeds where applicable)",
    )
    (count_row, count_good, count_naive) = results[0]
    assert abs(count_good) < abs(count_naive)  # (a) correction helps
    (_, adj_good, adj_off) = results[1]
    assert abs(adj_good) < abs(adj_off)  # (b) geometric walk debiases
    (_, freq_good, freq_biased) = results[2]
    assert abs(freq_good) < abs(freq_biased)  # (c) eq (4) beats eq (2)
    (_, vs_on, vs_off) = results[3]
    assert vs_on < vs_off  # (d) space cap works
    (_, tree_nodes, flat_nodes) = results[4]
    assert tree_nodes < flat_nodes  # (e) canonical decomposition compact
