"""S2 — durability costs: WAL overhead and snapshot-vs-replay recovery.

Two acceptance claims for the persistence subsystem:

1. **WAL overhead**: ingesting with the write-ahead log enabled stays
   within 1.3x of WAL-off throughput (the log is one JSON line + flush
   per batch, ahead of protocol work that dominates).
2. **Snapshot leverage**: restoring from a snapshot taken at the end of
   the stream is >= 5x faster than cold-replaying the full event log
   through the batched engine (the point of checkpointing: recovery
   cost is one state load, not re-running the stream).

Results go to ``benchmarks/results/persistence.txt`` (table) and the
machine-readable ``BENCH_service.json`` at the repo root.

Run directly::

    python benchmarks/bench_persistence.py [--quick]
"""

import argparse
import os
import shutil
import sys
import tempfile
import time

from repro import (
    DeterministicCountScheme,
    DeterministicFrequencyScheme,
    RandomizedCountScheme,
    RandomizedFrequencyScheme,
    TrackingService,
)
from repro.runtime import batch_from_stream
from repro.workloads import multi_tenant

try:
    import numpy as np
except ImportError:  # pragma: no cover
    np = None

from _common import save_bench_json, save_table

K = 32
N = 1_000_000
N_QUICK = 60_000
TENANTS = 8
BURST = 64
BATCH = 65_536
SEED = 9

#: the service-realistic mix from the multitenant acceptance bench:
#: randomized + deterministic count and heavy-hitter jobs
JOBS = (
    ("events", lambda: RandomizedCountScheme(0.01)),
    ("hot-items", lambda: RandomizedFrequencyScheme(0.05)),
    ("events-lb", lambda: DeterministicCountScheme(0.01)),
    ("hot-items-lb", lambda: DeterministicFrequencyScheme(0.05)),
)


def make_batch(n: int):
    stream = multi_tenant(
        n, K, tenants=TENANTS, burst=BURST, seed=1, labeled=False
    )
    site_ids, items = batch_from_stream(stream)
    if np is not None:
        site_ids = np.asarray(site_ids, dtype=np.int64)
    return site_ids, items


def build_service(checkpoint_dir=None):
    service = TrackingService(
        num_sites=K, seed=SEED, checkpoint_dir=checkpoint_dir
    )
    for name, factory in JOBS:
        service.register(name, factory(), seed=SEED)
    return service


def batch_size(n: int) -> int:
    # Keep >= 8 batches even in smoke mode so the WAL sees rotation and
    # cold replay actually replays a multi-record log.
    return min(BATCH, max(4096, n // 8))


def ingest_all(service, site_ids, items):
    n = len(items)
    step = batch_size(n)
    start = time.perf_counter()
    for lo in range(0, n, step):
        service.ingest(site_ids[lo : lo + step], items[lo : lo + step])
    return time.perf_counter() - start


REPEATS = 5  # wall-time minimum over this many runs (noise floor)


def bench_wal_overhead(site_ids, items, workdir):
    """(t_off, t_on, ratio): best-of-REPEATS ingest time without/with WAL."""
    t_off = t_on = None
    plain = durable = None
    for attempt in range(REPEATS):
        plain = build_service()
        elapsed = ingest_all(plain, site_ids, items)
        t_off = elapsed if t_off is None else min(t_off, elapsed)
        durable = build_service(
            os.path.join(workdir, f"wal-overhead-{attempt}")
        )
        elapsed = ingest_all(durable, site_ids, items)
        t_on = elapsed if t_on is None else min(t_on, elapsed)
        durable.close()
    # Same transcripts or the timing comparison is meaningless.
    assert durable.comm.snapshot() == plain.comm.snapshot()
    return t_off, t_on, t_on / t_off


def bench_restore_vs_replay(site_ids, items, workdir):
    """(t_replay, t_restore, ratio, queries_equal).

    Two checkpoint dirs hold the same ingested stream: one snapshotted
    at the end (restore = load snapshot), one left at its initial empty
    snapshot (restore = cold WAL replay of every batch).
    """
    snap_dir = os.path.join(workdir, "snapshotted")
    cold_dir = os.path.join(workdir, "cold-replay")

    snapshotted = build_service(snap_dir)
    ingest_all(snapshotted, site_ids, items)
    snapshotted.checkpoint()
    snapshotted.close()

    cold = build_service(cold_dir)
    ingest_all(cold, site_ids, items)
    cold.close()  # crash: WAL only, never checkpointed past the start

    def timed_restore(directory):
        best_time, service = None, None
        for _ in range(REPEATS):
            if service is not None:
                service.close()
            start = time.perf_counter()
            service = TrackingService.restore(directory)
            elapsed = time.perf_counter() - start
            best_time = elapsed if best_time is None else min(best_time, elapsed)
        return best_time, service

    t_restore, from_snapshot = timed_restore(snap_dir)
    t_replay, from_replay = timed_restore(cold_dir)

    equal = (
        from_snapshot.query("events") == from_replay.query("events")
        and from_snapshot.query("hot-items", "top_items", 5)
        == from_replay.query("hot-items", "top_items", 5)
        and from_snapshot.comm.snapshot() == from_replay.comm.snapshot()
    )
    from_snapshot.close()
    from_replay.close()
    return t_replay, t_restore, t_replay / t_restore, equal


def run(n: int = N, quick: bool = False):
    site_ids, items = make_batch(n)
    workdir = tempfile.mkdtemp(prefix="repro-bench-persist-")
    try:
        t_off, t_on, wal_ratio = bench_wal_overhead(site_ids, items, workdir)
        t_replay, t_restore, restore_ratio, equal = bench_restore_vs_replay(
            site_ids, items, workdir
        )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    rows = [
        ["ingest, WAL off", f"{t_off:.2f}", f"{n / t_off / 1e6:.2f}", "baseline"],
        [
            "ingest, WAL on",
            f"{t_on:.2f}",
            f"{n / t_on / 1e6:.2f}",
            f"{wal_ratio:.2f}x (target <= 1.3x)",
        ],
        ["recover: cold WAL replay", f"{t_replay:.2f}", "", "baseline"],
        [
            "recover: snapshot restore",
            f"{t_restore:.2f}",
            "",
            f"{restore_ratio:.1f}x faster (target >= 5x)",
        ],
    ]
    save_table(
        "persistence" + ("_quick" if quick else ""),
        ["phase", "seconds", "Mev/s", "vs baseline"],
        rows,
        title=(
            f"durability: k={K}, n={n:,}, {len(JOBS)} jobs, batch={batch_size(n)}, "
            f"restored queries identical: {equal}"
        ),
    )
    save_bench_json(
        "persistence",
        {
            "n": n,
            "k": K,
            "jobs": len(JOBS),
            "batch": batch_size(n),
            "quick": quick,
            "wal_off_s": round(t_off, 4),
            "wal_on_s": round(t_on, 4),
            "wal_overhead_ratio": round(wal_ratio, 4),
            "wal_overhead_target": 1.3,
            "cold_replay_s": round(t_replay, 4),
            "snapshot_restore_s": round(t_restore, 4),
            "restore_speedup": round(restore_ratio, 2),
            "restore_speedup_target": 5.0,
            "restored_queries_identical": equal,
        },
    )
    print(
        f"\nWAL overhead: {wal_ratio:.2f}x (<= 1.3x) | "
        f"snapshot restore: {restore_ratio:.1f}x faster than replay (>= 5x) | "
        f"queries identical: {equal}"
    )
    return wal_ratio, restore_ratio, equal


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help=f"smoke mode: {N_QUICK:,} events instead of {N:,}",
    )
    parser.add_argument("-n", type=int, default=None, help="override stream length")
    args = parser.parse_args(argv)
    n = args.n if args.n is not None else (N_QUICK if args.quick else N)
    wal_ratio, restore_ratio, equal = run(n, quick=args.quick)
    if not equal:
        print("error: restored queries diverged", file=sys.stderr)
        return 1
    return 0


try:
    import pytest
except ImportError:  # pragma: no cover
    pytest = None

if pytest is not None:

    @pytest.mark.benchmark(group="service")
    def test_persistence_costs(benchmark):
        wal_ratio, restore_ratio, equal = benchmark.pedantic(
            lambda: run(N), rounds=1, iterations=1
        )
        assert equal
        assert wal_ratio <= 1.3
        assert restore_ratio >= 5.0


if __name__ == "__main__":
    sys.path.insert(0, "")
    sys.exit(main())
