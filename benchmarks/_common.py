"""Shared helpers for the benchmark harness.

Every bench regenerates one artifact of the paper (a Table 1 block, a
theorem's scaling claim, or Figure 1).  Results are rendered as fixed-
width tables, printed, and saved under ``benchmarks/results/`` so
EXPERIMENTS.md can reference the exact numbers produced on this machine.

Run with:  pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import os

from repro.runtime import Simulation
from repro.analysis import render_table

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def save_table(name: str, headers, rows, title: str) -> str:
    """Render, print and persist one result table."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    text = render_table(headers, rows, title=title)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as f:
        f.write(text + "\n")
    print("\n" + text)
    return text


def run_sim(scheme, stream, k, seed=0, space_interval=256):
    """Run one simulation and return it (space sampled coarsely)."""
    sim = Simulation(scheme, k, seed=seed, space_sample_interval=space_interval)
    sim.run(stream)
    return sim
