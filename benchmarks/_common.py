"""Shared helpers for the benchmark harness.

Every bench regenerates one artifact of the paper (a Table 1 block, a
theorem's scaling claim, or Figure 1).  Results are rendered as fixed-
width tables, printed, and saved under ``benchmarks/results/`` so
EXPERIMENTS.md can reference the exact numbers produced on this machine.

Run with:  pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import datetime
import json
import os

from repro.runtime import Simulation
from repro.analysis import render_table

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: machine-readable service-benchmark trajectory, at the repo root so
#: CI and reviewers can diff perf across PRs without parsing tables
BENCH_JSON_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_service.json",
)


def save_bench_json(section: str, payload: dict, path: str = None) -> str:
    """Merge one benchmark's results into ``BENCH_service.json``.

    Each bench owns a top-level ``section`` key; reruns overwrite only
    their own section, so the file accumulates the full service perf
    picture (multitenant throughput, persistence costs, ...).
    """
    path = BENCH_JSON_PATH if path is None else path
    document = {}
    if os.path.exists(path):
        try:
            with open(path) as f:
                document = json.load(f)
        except ValueError:
            document = {}
    payload = dict(payload)
    payload["updated"] = (
        datetime.datetime.now(datetime.timezone.utc)
        .isoformat(timespec="seconds")
    )
    document[section] = payload
    with open(path, "w") as f:
        json.dump(document, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"[bench] {section} -> {path}")
    return path


def save_table(name: str, headers, rows, title: str) -> str:
    """Render, print and persist one result table."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    text = render_table(headers, rows, title=title)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as f:
        f.write(text + "\n")
    print("\n" + text)
    return text


def run_sim(scheme, stream, k, seed=0, space_interval=256):
    """Run one simulation and return it (space sampled coarsely)."""
    sim = Simulation(scheme, k, seed=seed, space_sample_interval=space_interval)
    sim.run(stream)
    return sim
