"""E10 — Lemma 2.2 / Theorem 2.4: the 1-bit problem needs Omega(k).

For each k, finds the minimum number of probed sites that reaches 0.8
success at distinguishing s = k/2 + sqrt(k) from k/2 - sqrt(k), exactly
(hypergeometric) and empirically.  The required probes grow linearly in
k — the engine of the sqrt(k)/eps * log N communication lower bound.
"""

import pytest

from repro.lowerbounds import (
    exact_probe_success,
    min_probes_for_success,
    threshold_probe_success,
)

from _common import save_table

KS = (64, 144, 256, 576, 1024)


def build_rows():
    rows = []
    fractions = []
    for k in KS:
        z = min_probes_for_success(k, target=0.8)
        empirical = threshold_probe_success(k, z, trials=3000, seed=70)
        half = exact_probe_success(k, max(1, z // 4))
        fractions.append(z / k)
        rows.append(
            [k, z, f"{z / k:.3f}", f"{empirical:.3f}", f"{half:.3f}"]
        )
    return rows, fractions


@pytest.mark.benchmark(group="lowerbounds")
def test_onebit_lower_bound(benchmark):
    rows, fractions = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    save_table(
        "lowerbound_onebit",
        ["k", "min probes z*", "z*/k", "empirical success @ z*",
         "success @ z*/4"],
        rows,
        title="E10 Lemma 2.2: probes needed for 0.8 success on the 1-bit "
        "problem (z*/k flat => z* = Omega(k))",
    )
    # The required fraction of sites stays essentially constant in k.
    assert max(fractions) / min(fractions) < 1.3
    # Probing a quarter of z* must be clearly insufficient.
    assert all(float(r[4]) < 0.75 for r in rows)
    # Empirical threshold test matches the exact computation at z*.
    assert all(float(r[3]) > 0.75 for r in rows)
