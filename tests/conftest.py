"""Shared test fixtures and helpers."""

from __future__ import annotations

import bisect
from collections import Counter

import pytest

from repro.runtime import Simulation
from repro.workloads import uniform_sites, with_items, zipf_items


def run_count(scheme, n, k, seed=0, stream_seed=1, **sim_kwargs):
    """Run a count scheme over a uniform stream; return the simulation."""
    sim = Simulation(scheme, k, seed=seed, **sim_kwargs)
    sim.run(uniform_sites(n, k, seed=stream_seed))
    return sim


def run_frequency(scheme, n, k, universe=200, alpha=1.2, seed=0, stream_seed=1):
    """Run a frequency scheme over a Zipf stream.

    Returns (sim, truth Counter).
    """
    items = zipf_items(universe, alpha=alpha, seed=stream_seed + 17)
    stream = list(with_items(uniform_sites(n, k, seed=stream_seed), items))
    sim = Simulation(scheme, k, seed=seed)
    sim.run(stream)
    truth = Counter(item for _, item in stream)
    return sim, truth


def run_rank(scheme, values, k, seed=0, stream_seed=1):
    """Run a rank scheme over given values with uniform site choice.

    Returns (sim, sorted values).
    """
    sites = [s for s, _ in uniform_sites(len(values), k, seed=stream_seed)]
    sim = Simulation(scheme, k, seed=seed)
    sim.run(zip(sites, values))
    return sim, sorted(values)


def true_rank(sorted_values, x) -> int:
    return bisect.bisect_left(sorted_values, x)


@pytest.fixture
def small_k():
    return 9


@pytest.fixture
def epsilon():
    return 0.1
