"""Trackers under the paper's adversarial input constructions.

The Theorem 2.4 stream embeds a fresh 1-bit instance per subround: in
round i, s = k/2 +- sqrt(k) random sites receive 2^i elements each.  An
*upper-bound* algorithm must stay accurate on this input too — the
construction is hard for communication, not for correctness — and its
message count must stay near the sqrt(k)/eps * log N shape.
"""

import math

import pytest

from repro import (
    DeterministicCountScheme,
    RandomizedCountScheme,
    Simulation,
)
from repro.workloads import theorem22_distribution, theorem24_stream


class TestTheorem24Stream:
    def test_randomized_tracker_stays_accurate(self):
        k, eps, rounds = 16, 0.05, 8
        stream, history = theorem24_stream(k, eps, rounds, seed=42)
        sim = Simulation(RandomizedCountScheme(eps), k, seed=1)
        truth = 0
        failures = 0
        checks = 0
        for idx, (site, item) in enumerate(stream):
            sim.process(site, item)
            truth += 1
            if idx % max(1, len(stream) // 100) == 0 and truth > 100:
                checks += 1
                if abs(sim.coordinator.estimate() - truth) > 2 * eps * truth:
                    failures += 1
        assert checks >= 50
        # Single copy: constant success probability per check.
        assert failures / checks <= 0.25

    def test_randomized_cheaper_than_det_on_adversarial_input(self):
        k, eps, rounds = 64, 0.01, 6
        stream, _ = theorem24_stream(k, eps, rounds, seed=7)
        rand = Simulation(RandomizedCountScheme(eps), k, seed=2)
        rand.run(stream)
        det = Simulation(DeterministicCountScheme(eps), k, seed=2)
        det.run(stream)
        assert rand.comm.total_messages < det.comm.total_messages

    def test_subround_structure_visible_to_tracker(self):
        # Each subround delivers s * 2^i elements; the tracker's final
        # estimate covers the full stream.
        k, eps, rounds = 16, 0.1, 5
        stream, history = theorem24_stream(k, eps, rounds, seed=3)
        n = len(stream)
        sim = Simulation(RandomizedCountScheme(eps), k, seed=4)
        sim.run(stream)
        assert abs(sim.coordinator.estimate() - n) <= 3 * eps * n


class TestTheorem22Distribution:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_trackers_accurate_on_mu_draws(self, seed):
        k, eps, n = 16, 0.05, 20_000
        stream = list(theorem22_distribution(n, k, seed=seed))
        for scheme in (RandomizedCountScheme(eps), DeterministicCountScheme(eps)):
            sim = Simulation(scheme, k, seed=seed + 10)
            sim.run(stream)
            assert abs(sim.coordinator.estimate() - n) <= 3 * eps * n
