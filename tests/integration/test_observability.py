"""The observability plane end to end: scrape, stream, trace, CLI.

One live gateway per fixture; assertions cover the acceptance surface:
``/metrics`` exposes families from every layer (gateway, service,
shard, exec) with per-tenant and per-shard labels, a standing query
streams a delta over SSE after an ingest *without the client polling*,
``Last-Event-ID`` replays missed events, and ``/healthz`` agrees with
the registry it is backed by.
"""

import json
import socket
import time
import urllib.error
import urllib.request

import pytest

from repro.cli import main as cli_main
from repro.net.gateway import GatewayThread
from repro.service import TrackingService
from repro.service.jobspec import parse_job_spec
from repro.shard import ShardedTrackingService


def request(url, method="GET", obj=None, headers=None):
    data = None if obj is None else json.dumps(obj).encode()
    req = urllib.request.Request(
        url, data=data, method=method,
        headers={"Content-Type": "application/json", **(headers or {})},
    )
    try:
        with urllib.request.urlopen(req, timeout=30) as response:
            return response.status, json.load(response)
    except urllib.error.HTTPError as exc:
        return exc.code, json.load(exc)


def scrape(gw):
    with urllib.request.urlopen(gw.url + "/metrics", timeout=30) as response:
        assert response.headers["Content-Type"].startswith("text/plain")
        return response.read().decode()


def sample_lines(text):
    return [
        line for line in text.splitlines()
        if line and not line.startswith("#")
    ]


def families(text):
    return {
        line.split()[2]
        for line in text.splitlines()
        if line.startswith("# TYPE")
    }


class SseClient:
    """A raw-socket SSE reader (urllib cannot stream indefinitely)."""

    def __init__(self, gw, sid, last_event_id=None, timeout=30):
        self._sock = socket.create_connection(
            (gw.gateway.host, gw.gateway.port), timeout=timeout
        )
        extra = (
            f"Last-Event-ID: {last_event_id}\r\n"
            if last_event_id is not None else ""
        )
        self._sock.sendall(
            f"GET /v1/stream/{sid} HTTP/1.1\r\nHost: t\r\n"
            f"Accept: text/event-stream\r\n{extra}\r\n".encode()
        )
        self._buf = b""

    def read_event(self, name):
        """Block until a frame with ``event: <name>`` is complete."""
        token = f"event: {name}".encode()
        while True:
            start = self._buf.find(token)
            if start != -1:
                end = self._buf.find(b"\n\n", start)
                if end != -1:
                    frame = self._buf[start:end].decode()
                    self._buf = self._buf[end + 2:]
                    fields = {}
                    for line in frame.splitlines():
                        key, _, value = line.partition(": ")
                        fields.setdefault(key, []).append(value)
                    data = "\n".join(fields.get("data", []))
                    return {
                        "event": fields["event"][0],
                        "id": fields.get("id", [None])[0],
                        "data": json.loads(data) if data else None,
                    }
            chunk = self._sock.recv(4096)
            if not chunk:
                raise AssertionError(f"stream closed awaiting {name!r}")
            self._buf += chunk

    def close(self):
        self._sock.close()


@pytest.fixture()
def sharded_gateway():
    service = ShardedTrackingService(
        num_sites=8, num_shards=2, seed=3, executor="thread", relaxed=True
    )
    _, _, scheme = parse_job_spec("hh=frequency/deterministic:0.05", 0.05)
    service.register("hh", scheme)
    _, _, scheme = parse_job_spec("med=rank/deterministic:0.05", 0.05)
    service.register("med", scheme)
    with GatewayThread(service) as gw:
        yield gw
    service.close()


def ingest(gw, n=200, headers=None):
    status, body = request(
        gw.url + "/v1/ingest",
        "POST",
        {
            "site_ids": [i % 8 for i in range(n)],
            "items": [float(i % 7) for i in range(n)],
        },
        headers=headers,
    )
    assert status == 200
    return body


class TestMetricsEndpoint:
    def test_families_span_every_layer(self, sharded_gateway):
        gw = sharded_gateway
        ingest(gw)
        request(gw.url + "/v1/query/med?method=quantile&arg=0.5")
        text = scrape(gw)
        fams = families(text)
        assert len(fams) >= 8
        for prefix in (
            "repro_gateway_", "repro_service_", "repro_shard_", "repro_exec_"
        ):
            assert any(f.startswith(prefix) for f in fams), (
                f"no {prefix} family in {sorted(fams)}"
            )

    def test_per_shard_labels(self, sharded_gateway):
        gw = sharded_gateway
        ingest(gw)
        text = scrape(gw)
        for shard in ("0", "1"):
            assert f'repro_shard_elements_total{{shard="{shard}"}}' in text
            assert (
                f'repro_exec_dispatch_seconds_count{{shard="{shard}"}}'
                in text
            )

    def test_service_totals_track_ingest(self, sharded_gateway):
        gw = sharded_gateway
        ingest(gw, n=300)
        text = scrape(gw)
        values = dict(
            line.rsplit(" ", 1)
            for line in sample_lines(text)
        )
        assert float(values["repro_service_elements_total"]) == 300.0
        per_shard = sum(
            float(v)
            for k, v in values.items()
            if k.startswith("repro_shard_elements_total{")
        )
        assert per_shard == 300.0

    def test_merge_instrumented(self, sharded_gateway):
        gw = sharded_gateway
        ingest(gw)
        request(gw.url + "/v1/query/med?method=quantile&arg=0.5")
        text = scrape(gw)
        values = dict(
            line.rsplit(" ", 1) for line in sample_lines(text)
        )
        assert float(values["repro_shard_merge_seconds_count"]) >= 1.0
        assert float(values["repro_shard_merge_candidates_count"]) >= 1.0

    def test_json_metrics_agree_with_text(self, sharded_gateway):
        gw = sharded_gateway
        ingest(gw, n=100)
        status, data = request(gw.url + "/v1/metrics")
        assert status == 200
        sample = data["repro_service_elements_total"]["samples"][0]
        assert sample["value"] == 100.0

    def test_healthz_reads_the_registry(self, sharded_gateway):
        gw = sharded_gateway
        status, health = request(gw.url + "/healthz")
        assert status == 200
        assert health["quota"]["rejected_429"] == 0
        assert health["auth"]["rejected_401"] == 0
        text = scrape(gw)
        assert 'repro_gateway_rejections_total{code="429"} 0' in text
        assert 'repro_gateway_rejections_total{code="401"} 0' in text

    def test_request_counters_by_route_template(self, sharded_gateway):
        gw = sharded_gateway
        ingest(gw)
        request(gw.url + "/v1/query/med?method=quantile&arg=0.5")
        request(gw.url + "/v1/query/hh?method=heavy_hitters&arg=0.2")
        text = scrape(gw)
        # both literal paths collapse into one template child
        assert (
            'repro_gateway_requests_total{route="/v1/query/{job}",'
            'method="GET",status="200"} 2' in text
        )


class TestTrace:
    def test_dispatch_and_merge_spans(self, sharded_gateway):
        gw = sharded_gateway
        ingest(gw)
        request(gw.url + "/v1/query/med?method=quantile&arg=0.5")
        status, body = request(gw.url + "/v1/trace")
        assert status == 200
        names = {span["name"] for span in body["spans"]}
        assert "dispatch" in names
        assert "merge" in names
        merge = next(s for s in body["spans"] if s["name"] == "merge")
        assert merge["attrs"]["job"] == "med"
        assert merge["attrs"]["candidates"] >= 1


class TestStandingQueries:
    def test_delta_streams_without_polling(self, sharded_gateway):
        gw = sharded_gateway
        status, sub = request(
            gw.url + "/v1/subscribe",
            "POST",
            {"kind": "query", "job": "hh", "method": "heavy_hitters",
             "args": [0.2]},
        )
        assert status == 200
        assert sub["value"] == {}  # baseline before any ingest
        client = SseClient(gw, sub["subscription"])
        try:
            hello = client.read_event("hello")
            assert hello["data"]["subscription"] == sub["subscription"]
            ingest(gw)
            # the delta is pushed by the evaluator; the client never
            # re-requests anything after this point
            delta = client.read_event("delta")
            assert delta["data"]["value"]  # heavy hitters appeared
            assert delta["data"]["previous"] == {}
            assert delta["data"]["elements"] == 200
        finally:
            client.close()

    def test_threshold_fires_on_flip_only(self, sharded_gateway):
        gw = sharded_gateway
        status, sub = request(
            gw.url + "/v1/subscribe",
            "POST",
            {"kind": "threshold", "job": "med",
             "method": "estimate_total", "op": ">", "value": 250},
        )
        assert status == 200
        assert sub["value"]["crossed"] is False
        client = SseClient(gw, sub["subscription"])
        try:
            client.read_event("hello")
            ingest(gw, n=100)  # total ~100: still below, no event
            ingest(gw, n=300)  # total ~400: crosses
            event = client.read_event("threshold")
            assert event["data"]["value"]["crossed"] is True
            assert event["data"]["previous"]["crossed"] is False
        finally:
            client.close()

    def test_last_event_id_replays_missed_deltas(self, sharded_gateway):
        gw = sharded_gateway
        status, sub = request(
            gw.url + "/v1/subscribe",
            "POST",
            {"kind": "query", "job": "med", "method": "estimate_total"},
        )
        sid = sub["subscription"]
        client = SseClient(gw, sid)
        try:
            client.read_event("hello")
            ingest(gw, n=100)
            first = client.read_event("delta")
        finally:
            client.close()
        # miss an event while disconnected (the evaluator publishes
        # shortly after the ingest is applied; wait for the ring to
        # hold it before reconnecting)
        ingest(gw, n=100)
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            status, info = request(gw.url + "/v1/subscriptions")
            delivered = next(
                s for s in info["subscriptions"] if s["id"] == sid
            )["events_delivered"]
            if delivered >= 2:
                break
            time.sleep(0.02)
        assert delivered >= 2
        replayer = SseClient(gw, sid, last_event_id=first["id"])
        try:
            replayer.read_event("hello")
            missed = replayer.read_event("delta")
            assert int(missed["id"]) > int(first["id"])
            assert missed["data"]["value"] == 200.0
        finally:
            replayer.close()

    def test_subscription_lifecycle(self, sharded_gateway):
        gw = sharded_gateway
        status, sub = request(
            gw.url + "/v1/subscribe", "POST",
            {"kind": "query", "job": "med"},
        )
        sid = sub["subscription"]
        status, listing = request(gw.url + "/v1/subscriptions")
        assert any(s["id"] == sid for s in listing["subscriptions"])
        status, body = request(gw.url + f"/v1/subscribe/{sid}", "DELETE")
        assert (status, body["unsubscribed"]) == (200, sid)
        status, _ = request(gw.url + f"/v1/stream/{sid}")
        assert status == 404

    def test_subscribe_validation(self, sharded_gateway):
        gw = sharded_gateway
        cases = [
            ({"kind": "nope"}, 400),
            ({"kind": "query"}, 400),                      # no job
            ({"kind": "query", "job": "ghost"}, 404),
            ({"kind": "threshold", "job": "med", "op": "~",
              "value": 1}, 400),
            ({"kind": "threshold", "job": "med", "op": ">",
              "value": "x"}, 400),
            ({"kind": "metrics"}, 400),                    # no metric
        ]
        for payload, expected in cases:
            status, _ = request(gw.url + "/v1/subscribe", "POST", payload)
            assert status == expected, payload

    def test_metrics_subscription(self, sharded_gateway):
        gw = sharded_gateway
        status, sub = request(
            gw.url + "/v1/subscribe", "POST",
            {"kind": "metrics", "metric": "repro_service_elements_total"},
        )
        assert status == 200
        client = SseClient(gw, sub["subscription"])
        try:
            client.read_event("hello")
            ingest(gw, n=150)
            delta = client.read_event("delta")
            assert delta["data"]["value"] == 150.0
        finally:
            client.close()


class TestAuthAndOpenScrape:
    def test_metrics_open_but_v1_guarded(self):
        service = TrackingService(num_sites=4, seed=1)
        with GatewayThread(service, api_keys={"k1": "acme"}) as gw:
            text = scrape(gw)  # no credentials needed
            assert "repro_gateway_requests_total" in text
            status, _ = request(gw.url + "/v1/metrics")
            assert status == 401
            status, _ = request(
                gw.url + "/v1/metrics",
                headers={"Authorization": "Bearer k1"},
            )
            assert status == 200
        service.close()

    def test_ingest_counted_per_tenant(self):
        service = TrackingService(num_sites=4, seed=1)
        _, _, scheme = parse_job_spec("c=count/deterministic:0.05", 0.05)
        service.register("c", scheme)
        with GatewayThread(
            service, api_keys={"k1": "acme", "k2": "zenith"}
        ) as gw:
            for key, n in (("k1", 40), ("k2", 24)):
                status, _ = request(
                    gw.url + "/v1/ingest", "POST",
                    {"site_ids": [i % 4 for i in range(n)]},
                    headers={"Authorization": f"Bearer {key}"},
                )
                assert status == 200
            text = scrape(gw)
            assert (
                'repro_gateway_events_ingested_total{tenant="acme"} 40'
                in text
            )
            assert (
                'repro_gateway_events_ingested_total{tenant="zenith"} 24'
                in text
            )
        service.close()


class TestMetricsCli:
    def test_table_and_json(self, sharded_gateway, capsys):
        gw = sharded_gateway
        ingest(gw, n=100)
        assert cli_main(
            ["metrics", gw.url, "--grep", "repro_service_elements"]
        ) == 0
        out = capsys.readouterr().out
        assert "repro_service_elements_total" in out
        assert "100" in out
        assert cli_main(["metrics", gw.url, "--json", "--grep",
                         "repro_service_elements"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert (
            payload["repro_service_elements_total"]["samples"][0]["value"]
            == 100.0
        )

    def test_unreachable_gateway(self, capsys):
        assert cli_main(
            ["metrics", "http://127.0.0.1:9", "--timeout", "2"]
        ) == 1
        assert "error" in capsys.readouterr().err
