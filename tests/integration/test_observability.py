"""The observability plane end to end: scrape, stream, trace, alerts.

One live gateway per fixture; assertions cover the acceptance surface:
``/metrics`` exposes families from every layer (gateway, service,
shard, exec) with per-tenant and per-shard labels, a standing query
streams a delta over SSE after an ingest *without the client polling*,
``Last-Event-ID`` replays missed events, ``/healthz`` agrees with the
registry it is backed by, an ingest's ``trace_id`` resolves to a
stitched cross-process span view at ``/v1/trace?trace_id=``, and alert
rules fire/resolve through real sinks with that trace as exemplar.
"""

import http.server
import json
import socket
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.cli import main as cli_main
from repro.net.gateway import GatewayThread
from repro.service import TrackingService
from repro.service.jobspec import parse_job_spec
from repro.shard import ShardedTrackingService


def request(url, method="GET", obj=None, headers=None):
    data = None if obj is None else json.dumps(obj).encode()
    req = urllib.request.Request(
        url, data=data, method=method,
        headers={"Content-Type": "application/json", **(headers or {})},
    )
    try:
        with urllib.request.urlopen(req, timeout=30) as response:
            return response.status, json.load(response)
    except urllib.error.HTTPError as exc:
        return exc.code, json.load(exc)


def scrape(gw):
    with urllib.request.urlopen(gw.url + "/metrics", timeout=30) as response:
        assert response.headers["Content-Type"].startswith("text/plain")
        return response.read().decode()


def sample_lines(text):
    return [
        line for line in text.splitlines()
        if line and not line.startswith("#")
    ]


def families(text):
    return {
        line.split()[2]
        for line in text.splitlines()
        if line.startswith("# TYPE")
    }


class SseClient:
    """A raw-socket SSE reader (urllib cannot stream indefinitely)."""

    def __init__(self, gw, sid, last_event_id=None, timeout=30):
        self._sock = socket.create_connection(
            (gw.gateway.host, gw.gateway.port), timeout=timeout
        )
        extra = (
            f"Last-Event-ID: {last_event_id}\r\n"
            if last_event_id is not None else ""
        )
        self._sock.sendall(
            f"GET /v1/stream/{sid} HTTP/1.1\r\nHost: t\r\n"
            f"Accept: text/event-stream\r\n{extra}\r\n".encode()
        )
        self._buf = b""

    def read_event(self, name):
        """Block until a frame with ``event: <name>`` is complete."""
        token = f"event: {name}".encode()
        while True:
            start = self._buf.find(token)
            if start != -1:
                end = self._buf.find(b"\n\n", start)
                if end != -1:
                    frame = self._buf[start:end].decode()
                    self._buf = self._buf[end + 2:]
                    fields = {}
                    for line in frame.splitlines():
                        key, _, value = line.partition(": ")
                        fields.setdefault(key, []).append(value)
                    data = "\n".join(fields.get("data", []))
                    return {
                        "event": fields["event"][0],
                        "id": fields.get("id", [None])[0],
                        "data": json.loads(data) if data else None,
                    }
            chunk = self._sock.recv(4096)
            if not chunk:
                raise AssertionError(f"stream closed awaiting {name!r}")
            self._buf += chunk

    def close(self):
        self._sock.close()


@pytest.fixture()
def sharded_gateway():
    service = ShardedTrackingService(
        num_sites=8, num_shards=2, seed=3, executor="thread", relaxed=True
    )
    _, _, scheme = parse_job_spec("hh=frequency/deterministic:0.05", 0.05)
    service.register("hh", scheme)
    _, _, scheme = parse_job_spec("med=rank/deterministic:0.05", 0.05)
    service.register("med", scheme)
    with GatewayThread(service) as gw:
        yield gw
    service.close()


def ingest(gw, n=200, headers=None):
    status, body = request(
        gw.url + "/v1/ingest",
        "POST",
        {
            "site_ids": [i % 8 for i in range(n)],
            "items": [float(i % 7) for i in range(n)],
        },
        headers=headers,
    )
    assert status == 200
    return body


class TestMetricsEndpoint:
    def test_families_span_every_layer(self, sharded_gateway):
        gw = sharded_gateway
        ingest(gw)
        request(gw.url + "/v1/query/med?method=quantile&arg=0.5")
        text = scrape(gw)
        fams = families(text)
        assert len(fams) >= 8
        for prefix in (
            "repro_gateway_", "repro_service_", "repro_shard_", "repro_exec_"
        ):
            assert any(f.startswith(prefix) for f in fams), (
                f"no {prefix} family in {sorted(fams)}"
            )

    def test_per_shard_labels(self, sharded_gateway):
        gw = sharded_gateway
        ingest(gw)
        text = scrape(gw)
        for shard in ("0", "1"):
            assert f'repro_shard_elements_total{{shard="{shard}"}}' in text
            assert (
                f'repro_exec_dispatch_seconds_count{{shard="{shard}"}}'
                in text
            )

    def test_service_totals_track_ingest(self, sharded_gateway):
        gw = sharded_gateway
        ingest(gw, n=300)
        text = scrape(gw)
        values = dict(
            line.rsplit(" ", 1)
            for line in sample_lines(text)
        )
        assert float(values["repro_service_elements_total"]) == 300.0
        per_shard = sum(
            float(v)
            for k, v in values.items()
            if k.startswith("repro_shard_elements_total{")
        )
        assert per_shard == 300.0

    def test_merge_instrumented(self, sharded_gateway):
        gw = sharded_gateway
        ingest(gw)
        request(gw.url + "/v1/query/med?method=quantile&arg=0.5")
        text = scrape(gw)
        values = dict(
            line.rsplit(" ", 1) for line in sample_lines(text)
        )
        assert float(values["repro_shard_merge_seconds_count"]) >= 1.0
        assert float(values["repro_shard_merge_candidates_count"]) >= 1.0

    def test_json_metrics_agree_with_text(self, sharded_gateway):
        gw = sharded_gateway
        ingest(gw, n=100)
        status, data = request(gw.url + "/v1/metrics")
        assert status == 200
        sample = data["repro_service_elements_total"]["samples"][0]
        assert sample["value"] == 100.0

    def test_healthz_reads_the_registry(self, sharded_gateway):
        gw = sharded_gateway
        status, health = request(gw.url + "/healthz")
        assert status == 200
        assert health["quota"]["rejected_429"] == 0
        assert health["auth"]["rejected_401"] == 0
        text = scrape(gw)
        assert 'repro_gateway_rejections_total{code="429"} 0' in text
        assert 'repro_gateway_rejections_total{code="401"} 0' in text

    def test_request_counters_by_route_template(self, sharded_gateway):
        gw = sharded_gateway
        ingest(gw)
        request(gw.url + "/v1/query/med?method=quantile&arg=0.5")
        request(gw.url + "/v1/query/hh?method=heavy_hitters&arg=0.2")
        text = scrape(gw)
        # both literal paths collapse into one template child
        assert (
            'repro_gateway_requests_total{route="/v1/query/{job}",'
            'method="GET",status="200"} 2' in text
        )


class TestTrace:
    def test_dispatch_and_merge_spans(self, sharded_gateway):
        gw = sharded_gateway
        ingest(gw)
        request(gw.url + "/v1/query/med?method=quantile&arg=0.5")
        status, body = request(gw.url + "/v1/trace")
        assert status == 200
        names = {span["name"] for span in body["spans"]}
        assert "dispatch" in names
        assert "merge" in names
        merge = next(s for s in body["spans"] if s["name"] == "merge")
        assert merge["attrs"]["job"] == "med"
        assert merge["attrs"]["candidates"] >= 1


class TestStandingQueries:
    def test_delta_streams_without_polling(self, sharded_gateway):
        gw = sharded_gateway
        status, sub = request(
            gw.url + "/v1/subscribe",
            "POST",
            {"kind": "query", "job": "hh", "method": "heavy_hitters",
             "args": [0.2]},
        )
        assert status == 200
        assert sub["value"] == {}  # baseline before any ingest
        client = SseClient(gw, sub["subscription"])
        try:
            hello = client.read_event("hello")
            assert hello["data"]["subscription"] == sub["subscription"]
            ingest(gw)
            # the delta is pushed by the evaluator; the client never
            # re-requests anything after this point
            delta = client.read_event("delta")
            assert delta["data"]["value"]  # heavy hitters appeared
            assert delta["data"]["previous"] == {}
            assert delta["data"]["elements"] == 200
        finally:
            client.close()

    def test_threshold_fires_on_flip_only(self, sharded_gateway):
        gw = sharded_gateway
        status, sub = request(
            gw.url + "/v1/subscribe",
            "POST",
            {"kind": "threshold", "job": "med",
             "method": "estimate_total", "op": ">", "value": 250},
        )
        assert status == 200
        assert sub["value"]["crossed"] is False
        client = SseClient(gw, sub["subscription"])
        try:
            client.read_event("hello")
            ingest(gw, n=100)  # total ~100: still below, no event
            ingest(gw, n=300)  # total ~400: crosses
            event = client.read_event("threshold")
            assert event["data"]["value"]["crossed"] is True
            assert event["data"]["previous"]["crossed"] is False
        finally:
            client.close()

    def test_last_event_id_replays_missed_deltas(self, sharded_gateway):
        gw = sharded_gateway
        status, sub = request(
            gw.url + "/v1/subscribe",
            "POST",
            {"kind": "query", "job": "med", "method": "estimate_total"},
        )
        sid = sub["subscription"]
        client = SseClient(gw, sid)
        try:
            client.read_event("hello")
            ingest(gw, n=100)
            first = client.read_event("delta")
        finally:
            client.close()
        # miss an event while disconnected (the evaluator publishes
        # shortly after the ingest is applied; wait for the ring to
        # hold it before reconnecting)
        ingest(gw, n=100)
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            status, info = request(gw.url + "/v1/subscriptions")
            delivered = next(
                s for s in info["subscriptions"] if s["id"] == sid
            )["events_delivered"]
            if delivered >= 2:
                break
            time.sleep(0.02)
        assert delivered >= 2
        replayer = SseClient(gw, sid, last_event_id=first["id"])
        try:
            replayer.read_event("hello")
            missed = replayer.read_event("delta")
            assert int(missed["id"]) > int(first["id"])
            assert missed["data"]["value"] == 200.0
        finally:
            replayer.close()

    def test_subscription_lifecycle(self, sharded_gateway):
        gw = sharded_gateway
        status, sub = request(
            gw.url + "/v1/subscribe", "POST",
            {"kind": "query", "job": "med"},
        )
        sid = sub["subscription"]
        status, listing = request(gw.url + "/v1/subscriptions")
        assert any(s["id"] == sid for s in listing["subscriptions"])
        status, body = request(gw.url + f"/v1/subscribe/{sid}", "DELETE")
        assert (status, body["unsubscribed"]) == (200, sid)
        status, _ = request(gw.url + f"/v1/stream/{sid}")
        assert status == 404

    def test_subscribe_validation(self, sharded_gateway):
        gw = sharded_gateway
        cases = [
            ({"kind": "nope"}, 400),
            ({"kind": "query"}, 400),                      # no job
            ({"kind": "query", "job": "ghost"}, 404),
            ({"kind": "threshold", "job": "med", "op": "~",
              "value": 1}, 400),
            ({"kind": "threshold", "job": "med", "op": ">",
              "value": "x"}, 400),
            ({"kind": "metrics"}, 400),                    # no metric
        ]
        for payload, expected in cases:
            status, _ = request(gw.url + "/v1/subscribe", "POST", payload)
            assert status == expected, payload

    def test_metrics_subscription(self, sharded_gateway):
        gw = sharded_gateway
        status, sub = request(
            gw.url + "/v1/subscribe", "POST",
            {"kind": "metrics", "metric": "repro_service_elements_total"},
        )
        assert status == 200
        client = SseClient(gw, sub["subscription"])
        try:
            client.read_event("hello")
            ingest(gw, n=150)
            delta = client.read_event("delta")
            assert delta["data"]["value"] == 150.0
        finally:
            client.close()


class TestAuthAndOpenScrape:
    def test_metrics_open_but_v1_guarded(self):
        service = TrackingService(num_sites=4, seed=1)
        with GatewayThread(service, api_keys={"k1": "acme"}) as gw:
            text = scrape(gw)  # no credentials needed
            assert "repro_gateway_requests_total" in text
            status, _ = request(gw.url + "/v1/metrics")
            assert status == 401
            status, _ = request(
                gw.url + "/v1/metrics",
                headers={"Authorization": "Bearer k1"},
            )
            assert status == 200
        service.close()

    def test_ingest_counted_per_tenant(self):
        service = TrackingService(num_sites=4, seed=1)
        _, _, scheme = parse_job_spec("c=count/deterministic:0.05", 0.05)
        service.register("c", scheme)
        with GatewayThread(
            service, api_keys={"k1": "acme", "k2": "zenith"}
        ) as gw:
            for key, n in (("k1", 40), ("k2", 24)):
                status, _ = request(
                    gw.url + "/v1/ingest", "POST",
                    {"site_ids": [i % 4 for i in range(n)]},
                    headers={"Authorization": f"Bearer {key}"},
                )
                assert status == 200
            text = scrape(gw)
            assert (
                'repro_gateway_events_ingested_total{tenant="acme"} 40'
                in text
            )
            assert (
                'repro_gateway_events_ingested_total{tenant="zenith"} 24'
                in text
            )
        service.close()


class TestMetricsCli:
    def test_table_and_json(self, sharded_gateway, capsys):
        gw = sharded_gateway
        ingest(gw, n=100)
        assert cli_main(
            ["metrics", gw.url, "--grep", "repro_service_elements"]
        ) == 0
        out = capsys.readouterr().out
        assert "repro_service_elements_total" in out
        assert "100" in out
        assert cli_main(["metrics", gw.url, "--json", "--grep",
                         "repro_service_elements"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert (
            payload["repro_service_elements_total"]["samples"][0]["value"]
            == 100.0
        )

    def test_unreachable_gateway(self, capsys):
        assert cli_main(
            ["metrics", "http://127.0.0.1:9", "--timeout", "2"]
        ) == 1
        assert "error" in capsys.readouterr().err


class TestTracePropagation:
    """One trace_id from the HTTP POST to shard-local hub spans."""

    @pytest.fixture()
    def process_gateway(self):
        service = ShardedTrackingService(
            num_sites=8, num_shards=2, seed=3, executor="process",
            relaxed=True,
        )
        _, _, scheme = parse_job_spec("med=rank/deterministic:0.05", 0.05)
        service.register("med", scheme)
        with GatewayThread(service) as gw:
            yield gw
        service.close()

    def test_cross_process_stitched_view(self, process_gateway):
        gw = process_gateway
        body = ingest(gw)
        tid = body["trace_id"]
        assert tid
        status, tr = request(gw.url + f"/v1/trace?trace_id={tid}")
        assert status == 200
        spans = tr["spans"]
        by_name = {}
        for span in spans:
            assert span["trace_id"] == tid
            by_name.setdefault(span["name"], []).append(span)
        # gateway-process spans: the coalesced round and its dispatch
        assert len(by_name["round"]) == 1
        assert len(by_name["dispatch"]) == 1
        # hub-process spans carried over the process pipe, one per shard
        shards = {s["shard"] for s in by_name["ingest"]}
        assert shards == {0, 1}
        # the parent chain stitches across the process boundary
        round_span = by_name["round"][0]
        dispatch = by_name["dispatch"][0]
        assert round_span["parent_id"] is None
        assert dispatch["parent_id"] == round_span["span_id"]
        for hub_span in by_name["ingest"]:
            assert hub_span["parent_id"] == dispatch["span_id"]

    def test_hub_spans_retained_across_reads(self, process_gateway):
        gw = process_gateway
        tid = ingest(gw)["trace_id"]
        for _ in range(2):  # collect_spans drains hubs; gateway retains
            status, tr = request(gw.url + f"/v1/trace?trace_id={tid}")
            assert status == 200
            assert any(s["name"] == "ingest" for s in tr["spans"])

    def test_trace_filters_over_http(self, sharded_gateway):
        gw = sharded_gateway
        first = ingest(gw, n=50)["trace_id"]
        second = ingest(gw, n=50)["trace_id"]
        status, tr = request(gw.url + "/v1/trace?name=round")
        assert status == 200
        assert {s["name"] for s in tr["spans"]} == {"round"}
        if first != second:  # rounds coalesced into one trace otherwise
            status, tr = request(gw.url + f"/v1/trace?trace_id={second}")
            assert {s["trace_id"] for s in tr["spans"]} == {second}
        status, tr = request(gw.url + "/v1/trace?limit=1")
        assert len(tr["spans"]) == 1
        status, body = request(gw.url + "/v1/trace?limit=many")
        assert status == 400
        assert "limit" in body["error"]


class _HookReceiver(http.server.BaseHTTPRequestHandler):
    received: list = []

    def do_POST(self):
        length = int(self.headers.get("Content-Length", 0))
        _HookReceiver.received.append(json.loads(self.rfile.read(length)))
        self.send_response(200)
        self.end_headers()

    def log_message(self, *args):
        pass


@pytest.fixture()
def webhook():
    _HookReceiver.received = []
    server = http.server.HTTPServer(("127.0.0.1", 0), _HookReceiver)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield f"http://127.0.0.1:{server.server_port}/hook", _HookReceiver
    server.shutdown()
    server.server_close()


def _wait_for(predicate, timeout=15.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.03)
    return False


class TestAlertsEndToEnd:
    def test_fire_and_resolve_with_trace_exemplar(self, webhook):
        url, receiver = webhook
        rules = {
            "sinks": {"hook": {"type": "webhook", "url": url}},
            "rules": [{
                "name": "underfed",
                "kind": "metrics",
                "metric": "repro_service_elements_total",
                "op": "<", "value": 100.0,
                "sinks": ["hook"],
                "labels": {"severity": "page"},
            }],
        }
        service = ShardedTrackingService(
            num_sites=8, num_shards=2, seed=3, executor="thread",
            relaxed=True,
        )
        _, _, scheme = parse_job_spec("med=rank/deterministic:0.05", 0.05)
        service.register("med", scheme)
        with GatewayThread(service, alert_rules=rules) as gw:
            ingest(gw, n=10)  # 10 < 100: the rule flips to firing
            assert _wait_for(lambda: any(
                e["state"] == "firing" for e in receiver.received
            ))
            firing = next(
                e for e in receiver.received if e["state"] == "firing"
            )
            assert firing["rule"] == "underfed"
            assert firing["labels"] == {"severity": "page"}
            assert firing["value"] == 10.0
            # the exemplar trace resolves to the round that flipped it
            tid = firing["trace_id"]
            assert tid
            status, tr = request(gw.url + f"/v1/trace?trace_id={tid}")
            assert status == 200
            assert "round" in {s["name"] for s in tr["spans"]}
            ingest(gw, n=200)  # 210 >= 100: resolved
            assert _wait_for(lambda: any(
                e["state"] == "resolved" for e in receiver.received
            ))
            status, listing = request(gw.url + "/v1/alerts")
            assert status == 200
            rule = next(
                r for r in listing["rules"] if r["name"] == "underfed"
            )
            assert rule["state"] == "ok"
            states = [e["state"] for e in listing["events"]]
            assert states == ["firing", "resolved"]
            assert listing["sinks"] == {"hook": "webhook"}
            assert listing["dead_letters"] == []
            text = scrape(gw)
            assert 'repro_alerts_transitions_total{rule="underfed"' in text
            assert "repro_alerts_firing 0" in text
        service.close()

    def test_pending_fires_on_quiet_gateway(self):
        # a `for:` rule must complete pending -> firing even when no
        # further ingest wakes the evaluator: the gateway arms a timer
        # for the pending deadline.
        rules = {
            "rules": [{
                "name": "sustained",
                "kind": "metrics",
                "metric": "repro_service_elements_total",
                "op": ">", "value": 5.0,
                "for": 0.3,
            }],
        }
        service = TrackingService(num_sites=8, seed=1)
        with GatewayThread(service, alert_rules=rules) as gw:
            ingest(gw, n=10)  # predicate holds -> pending

            def state():
                _, listing = request(gw.url + "/v1/alerts")
                return listing["rules"][0]["state"]

            # the evaluator runs asynchronously: ok -> pending, then the
            # armed deadline timer completes pending -> firing with no
            # further traffic.
            assert _wait_for(lambda: state() == "firing", timeout=10.0)
        service.close()

    def test_alerts_endpoint_empty_without_manifest(self, sharded_gateway):
        status, listing = request(sharded_gateway.url + "/v1/alerts")
        assert status == 200
        assert listing == {"rules": [], "sinks": {}, "events": [],
                           "dead_letters": []}


class TestRouteHealthMetrics:
    def test_inflight_gauge_settles_to_zero(self, sharded_gateway):
        gw = sharded_gateway
        ingest(gw)
        text = scrape(gw)
        assert (
            'repro_gateway_inflight_requests{route="/v1/ingest"} 0'
            in text
        )

    def test_5xx_counted_by_route(self, sharded_gateway):
        gw = sharded_gateway

        def explode():
            raise RuntimeError("boom")

        gw.gateway.service.status = explode
        try:
            status, body = request(gw.url + "/v1/status")
            assert status == 500
        finally:
            del gw.gateway.service.status
        text = scrape(gw)
        assert (
            'repro_gateway_errors_total{route="/v1/status"} 1' in text
        )
        # 2xx traffic does not touch the 5xx counter
        ingest(gw)
        text = scrape(gw)
        assert 'repro_gateway_errors_total{route="/v1/ingest"}' not in text


class TestSseLifecycle:
    def _listeners(self, gw, sid):
        _, info = request(gw.url + "/v1/subscriptions")
        return next(
            s for s in info["subscriptions"] if s["id"] == sid
        )["listeners"]

    def test_client_disconnect_aborts_mid_stream(self, sharded_gateway):
        gw = sharded_gateway
        _, sub = request(
            gw.url + "/v1/subscribe", "POST",
            {"kind": "query", "job": "med", "method": "estimate_total"},
        )
        sid = sub["subscription"]
        client = SseClient(gw, sid)
        client.read_event("hello")
        ingest(gw, n=100)
        client.read_event("delta")
        assert self._listeners(gw, sid) == 1
        client.close()  # abort mid-stream, no unsubscribe
        assert _wait_for(lambda: self._listeners(gw, sid) == 0)
        assert _wait_for(
            lambda: "repro_gateway_streams 0" in scrape(gw)
        )
        # the subscription itself survives; events keep accumulating
        ingest(gw, n=100)
        assert _wait_for(lambda: next(
            s for s in request(gw.url + "/v1/subscriptions")[1]
            ["subscriptions"] if s["id"] == sid
        )["events_delivered"] >= 2)

    def test_idle_listener_detached_on_keepalive(
        self, sharded_gateway, monkeypatch
    ):
        # with a short keep-alive interval, a silently-gone client is
        # discovered by the idle tick and detached without any event
        # traffic on the subscription.
        from repro.net import gateway as gateway_mod

        monkeypatch.setattr(gateway_mod, "_SSE_KEEPALIVE", 0.1)
        gw = sharded_gateway
        _, sub = request(
            gw.url + "/v1/subscribe", "POST",
            {"kind": "query", "job": "med", "method": "estimate_total"},
        )
        sid = sub["subscription"]
        client = SseClient(gw, sid)
        client.read_event("hello")
        # an idle stream emits keep-alive comments, not events
        assert _wait_for(
            lambda: b": keep-alive" in self._recv_some(client)
        )
        client.close()
        assert _wait_for(lambda: self._listeners(gw, sid) == 0)

    @staticmethod
    def _recv_some(client):
        client._sock.settimeout(0.5)
        try:
            client._buf += client._sock.recv(4096)
        except socket.timeout:
            pass
        return client._buf
