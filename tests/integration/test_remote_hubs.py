"""Remote shard hubs: the sharded facade over ``repro hub`` TCP actors.

The cluster executor places each shard hub — a full TrackingService —
on an exec host reached over framed TCP.  Because a hub's transcript
depends only on its seed and its (order-preserved) slice of the
stream, a cluster-placed facade must answer *identically* to the
inline reference, checkpoint bundles included.
"""

import pytest

from repro import (
    DeterministicCountScheme,
    DeterministicFrequencyScheme,
    RandomizedCountScheme,
    RandomizedRankScheme,
    ShardedTrackingService,
)
from repro.exec.remote import ExecHost, LoopThread
from repro.net.transport import TcpTransport
from repro.workloads import uniform_sites, with_items, zipf_items

K = 16
N = 8_000
SEED = 29


@pytest.fixture(scope="module")
def stream():
    pairs = list(
        with_items(
            uniform_sites(N, K, seed=SEED),
            zipf_items(200, alpha=1.2, seed=SEED + 1),
        )
    )
    return [s for s, _ in pairs], [v for _, v in pairs]


@pytest.fixture(scope="module")
def hub_hosts():
    """Two live TCP exec hosts, like two `repro hub` processes."""
    loop = LoopThread()
    hosts = [
        loop.call(ExecHost(TcpTransport(), "127.0.0.1:0").start())
        for _ in range(2)
    ]
    yield [host.address for host in hosts]
    for host in hosts:
        loop.call(host.close())
    loop.close()


def build(service):
    service.register("total", RandomizedCountScheme(0.02))
    service.register("total-lb", DeterministicCountScheme(0.02))
    service.register("hot", DeterministicFrequencyScheme(0.05))
    service.register("med", RandomizedRankScheme(0.05))
    return service


QUERIES = (
    ("total", None, ()),
    ("total-lb", None, ()),
    ("hot", "top_items", (5,)),
    ("hot", "heavy_hitters", (0.05,)),
    ("med", "estimate_rank", (100,)),
    ("med", "quantile", (0.5,)),
)


class TestRemoteHubsEquivalence:
    def test_two_tcp_hubs_match_inline_exactly(self, stream, hub_hosts):
        site_ids, items = stream
        reference = build(
            ShardedTrackingService(num_sites=K, num_shards=4, seed=SEED)
        )
        reference.ingest(site_ids, items)
        remote = build(
            ShardedTrackingService(
                num_sites=K, num_shards=4, seed=SEED,
                executor="cluster", hub_addresses=hub_hosts,
            )
        )
        remote.ingest(site_ids, items)
        for job, method, args in QUERIES:
            assert remote.query(job, method, *args) == reference.query(
                job, method, *args
            ), (job, method)
        status = remote.status()
        assert status["executor"] == "cluster"
        assert status["elements"] == N
        assert sum(d["elements"] for d in status["shard_detail"]) == N
        remote.close()
        reference.close()

    def test_self_hosted_cluster_needs_no_addresses(self, stream):
        site_ids, items = stream
        service = build(
            ShardedTrackingService(
                num_sites=K, num_shards=2, seed=SEED, executor="cluster"
            )
        )
        service.ingest(site_ids, items)
        assert service.query("total-lb") > 0
        service.close()

    def test_relaxed_remote_hubs_match_lockstep(self, stream, hub_hosts):
        site_ids, items = stream
        lockstep = build(
            ShardedTrackingService(
                num_sites=K, num_shards=2, seed=SEED,
                executor="cluster", hub_addresses=hub_hosts,
            )
        )
        relaxed = build(
            ShardedTrackingService(
                num_sites=K, num_shards=2, seed=SEED,
                executor="cluster", hub_addresses=hub_hosts, relaxed=True,
            )
        )
        for start in range(0, N, 1000):
            lockstep.ingest(site_ids[start:start + 1000],
                            items[start:start + 1000])
            relaxed.ingest(site_ids[start:start + 1000],
                           items[start:start + 1000])
        for job, method, args in QUERIES:
            assert relaxed.query(job, method, *args) == lockstep.query(
                job, method, *args
            ), (job, method)
        relaxed.close()
        lockstep.close()

    def test_checkpoint_restore_through_remote_hubs(
        self, stream, hub_hosts, tmp_path
    ):
        site_ids, items = stream
        directory = str(tmp_path / "remote-shards")
        service = build(
            ShardedTrackingService(
                num_sites=K, num_shards=2, seed=SEED,
                executor="cluster", hub_addresses=hub_hosts,
                checkpoint_dir=directory,
            )
        )
        service.ingest(site_ids[: N // 2], items[: N // 2])
        paths = service.checkpoint()
        assert len(paths) == 2
        service.ingest(site_ids[N // 2:], items[N // 2:])  # WAL tail
        answers = {
            (job, method, args): service.query(job, method, *args)
            for job, method, args in QUERIES
        }
        service.close()

        restored = ShardedTrackingService.restore(
            directory, executor="cluster", hub_addresses=hub_hosts
        )
        assert restored.elements_processed == N
        for (job, method, args), expected in answers.items():
            assert restored.query(job, method, *args) == expected, (
                job, method,
            )
        restored.close()

    def test_hub_addresses_require_cluster_executor(self):
        with pytest.raises(ValueError):
            ShardedTrackingService(
                num_sites=4, num_shards=2, seed=0,
                executor="process", hub_addresses=["127.0.0.1:1"],
            )
