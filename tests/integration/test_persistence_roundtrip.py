"""Round-trip determinism: checkpoint mid-stream == never stopped.

The durability acceptance bar: for EVERY tracking scheme, snapshotting a
service mid-stream, restoring it (through JSON, like the on-disk path)
and replaying the remainder must yield a service indistinguishable from
one that ingested the whole stream uninterrupted — same communication
ledger (message-for-message costs), same RNG positions, same query
answers, and byte-identical re-encoded state.

A second family covers the crash path proper: snapshot + WAL tail via
``TrackingService.restore`` after abandoning a durable service without a
final checkpoint.
"""

import json

import pytest

from repro import (
    Cormode05RankScheme,
    DeterministicCountScheme,
    DeterministicFrequencyScheme,
    DeterministicRankScheme,
    DistributedSamplingScheme,
    MedianBoostedScheme,
    RandomizedCountScheme,
    RandomizedFrequencyScheme,
    RandomizedRankScheme,
    TrackingService,
    WindowedCountScheme,
)
from repro.runtime import batch_from_stream
from repro.workloads import multi_tenant, timestamped

K = 7
N = 6_000
BATCH = 512
SEED = 31


def tenant_batch(n=N, labeled=True):
    return batch_from_stream(
        multi_tenant(n, K, tenants=3, burst=16, seed=4, labeled=labeled)
    )


def timestamp_batch(n=N):
    stream = timestamped(
        multi_tenant(n, K, tenants=3, burst=16, seed=4, labeled=False),
        seed=9,
        period=n / 3,
    )
    return batch_from_stream(stream)


def drive(service, site_ids, items, start, stop):
    for lo in range(start, min(stop, len(site_ids)), BATCH):
        service.ingest(site_ids[lo : lo + BATCH], items[lo : lo + BATCH])


def service_with(scheme_factory, **service_kwargs):
    service = TrackingService(num_sites=K, seed=SEED, **service_kwargs)
    service.register("job", scheme_factory())
    return service


#: (scheme factory, stream builder, [(query method, args), ...])
SCHEME_CASES = [
    ("count/deterministic", lambda: DeterministicCountScheme(0.05),
     tenant_batch, [("estimate", ())]),
    ("count/randomized", lambda: RandomizedCountScheme(0.05),
     tenant_batch, [("estimate", ())]),
    ("frequency/deterministic", lambda: DeterministicFrequencyScheme(0.1),
     tenant_batch, [("top_items", (5,)), ("heavy_hitters", (0.05,))]),
    ("frequency/randomized", lambda: RandomizedFrequencyScheme(0.1),
     tenant_batch, [("top_items", (5,)), ("heavy_hitters", (0.05,))]),
    ("rank/deterministic", lambda: DeterministicRankScheme(0.1),
     lambda: tenant_batch(labeled=False),
     [("quantile", (0.5,)), ("estimate_total", ())]),
    ("rank/cormode05", lambda: Cormode05RankScheme(0.1),
     lambda: tenant_batch(labeled=False),
     [("quantile", (0.5,)), ("estimate_total", ())]),
    ("rank/randomized", lambda: RandomizedRankScheme(0.1),
     lambda: tenant_batch(labeled=False),
     [("quantile", (0.5,)), ("estimate_rank", (500,))]),
    ("sampling/level", lambda: DistributedSamplingScheme(0.1),
     lambda: tenant_batch(labeled=False),
     [("estimate", ()), ("quantile", (0.5,))]),
    ("window/count", lambda: WindowedCountScheme(1500, 0.1),
     timestamp_batch, [("estimate", ())]),
    ("boosted-count", lambda: MedianBoostedScheme(
        RandomizedCountScheme(0.1), 3),
     tenant_batch, [("estimate", ())]),
]


class TestSchemeRoundtrip:
    @pytest.mark.parametrize(
        "factory,make_stream,queries",
        [case[1:] for case in SCHEME_CASES],
        ids=[case[0] for case in SCHEME_CASES],
    )
    def test_checkpoint_restore_replay_matches_uninterrupted(
        self, factory, make_stream, queries
    ):
        site_ids, items = make_stream()
        half = (len(site_ids) // (2 * BATCH)) * BATCH

        interrupted = service_with(factory)
        drive(interrupted, site_ids, items, 0, half)
        # Through JSON: exactly what the snapshot file layer sees.
        state = json.loads(json.dumps(interrupted.state_dict()))
        restored = TrackingService.from_state(state)

        uninterrupted = service_with(factory)
        drive(uninterrupted, site_ids, items, 0, half)

        for service in (restored, uninterrupted):
            drive(service, site_ids, items, half, len(site_ids))

        # Transcript identity: the communication ledger counts every
        # message and word in both directions.
        assert (
            restored.comm.snapshot() == uninterrupted.comm.snapshot()
        )
        assert (
            restored.elements_processed == uninterrupted.elements_processed
        )
        # Query identity, including randomized estimators.
        for method, args in queries:
            assert restored.query("job", method, *args) == uninterrupted.query(
                "job", method, *args
            ), method
        # Deep-state identity: every counter, sketch and RNG position.
        assert restored.state_dict() == uninterrupted.state_dict()

    def test_restore_rejects_mismatched_scheme(self):
        site_ids, items = tenant_batch()
        service = service_with(lambda: RandomizedCountScheme(0.05))
        drive(service, site_ids, items, 0, BATCH)
        state = service.state_dict()
        # Corrupt the job's scheme type in the snapshot.
        state["jobs"][0]["scheme"]["__obj__"] = (
            "repro.core.count.deterministic:DeterministicCountScheme"
        )
        with pytest.raises(Exception):
            TrackingService.from_state(state)


class TestServiceRoundtrip:
    def build(self, **kwargs):
        service = TrackingService(
            num_sites=K, seed=SEED, uplink_drop_rate=0.02, **kwargs
        )
        service.register("total", RandomizedCountScheme(0.05))
        service.register("hh", RandomizedFrequencyScheme(0.1))
        service.register("p50", RandomizedRankScheme(0.1))
        return service

    def queries(self, service):
        return (
            service.query("total"),
            service.query("hh", "top_items", 5),
            service.query("p50", "quantile", 0.5),
        )

    def test_multijob_service_with_faults_roundtrips(self):
        site_ids, items = tenant_batch(labeled=False)
        half = (len(site_ids) // (2 * BATCH)) * BATCH
        a = self.build()
        drive(a, site_ids, items, 0, half)
        b = TrackingService.from_state(
            json.loads(json.dumps(a.state_dict()))
        )
        for service in (a, b):
            drive(service, site_ids, items, half, len(site_ids))
        assert self.queries(a) == self.queries(b)
        assert a.comm.snapshot() == b.comm.snapshot()
        # Fault injection replays identically (drop RNG restored).
        assert (
            a.job("total").network.dropped_uplink_messages
            == b.job("total").network.dropped_uplink_messages
        )
        assert a.state_dict() == b.state_dict()

    def test_crash_recovery_from_wal_tail(self, tmp_path):
        site_ids, items = tenant_batch(labeled=False)
        third = (len(site_ids) // (3 * BATCH)) * BATCH

        durable = self.build(checkpoint_dir=str(tmp_path / "ckpt"))
        drive(durable, site_ids, items, 0, third)
        durable.checkpoint()
        drive(durable, site_ids, items, third, 2 * third)  # WAL-only tail
        durable.close()
        del durable  # crash: no final checkpoint

        reference = self.build()
        drive(reference, site_ids, items, 0, 2 * third)

        recovered = TrackingService.restore(str(tmp_path / "ckpt"))
        assert recovered.elements_processed == reference.elements_processed
        assert self.queries(recovered) == self.queries(reference)
        assert recovered.comm.snapshot() == reference.comm.snapshot()

        # The recovered service keeps logging durably: continue, crash
        # again immediately (no checkpoint), recover again.
        drive(recovered, site_ids, items, 2 * third, len(site_ids))
        final_queries = self.queries(recovered)
        recovered.close()
        del recovered

        drive(reference, site_ids, items, 2 * third, len(site_ids))
        recovered2 = TrackingService.restore(str(tmp_path / "ckpt"))
        assert self.queries(recovered2) == final_queries
        assert self.queries(recovered2) == self.queries(reference)
        recovered2.close()

    def test_mid_stream_registration_replays_in_order(self, tmp_path):
        site_ids, items = tenant_batch(labeled=True)
        durable = TrackingService(
            num_sites=K, seed=SEED, checkpoint_dir=str(tmp_path / "ckpt")
        )
        durable.register("early", RandomizedCountScheme(0.05))
        drive(durable, site_ids, items, 0, 2 * BATCH)
        durable.register("late", RandomizedFrequencyScheme(0.1))
        durable.register("doomed", DeterministicCountScheme(0.1))
        drive(durable, site_ids, items, 2 * BATCH, 4 * BATCH)
        durable.unregister("doomed")
        drive(durable, site_ids, items, 4 * BATCH, 6 * BATCH)
        durable.close()
        del durable  # crash with everything in the WAL (initial snapshot only)

        reference = TrackingService(num_sites=K, seed=SEED)
        reference.register("early", RandomizedCountScheme(0.05))
        drive(reference, site_ids, items, 0, 2 * BATCH)
        reference.register("late", RandomizedFrequencyScheme(0.1))
        reference.register("doomed", DeterministicCountScheme(0.1))
        drive(reference, site_ids, items, 2 * BATCH, 4 * BATCH)
        reference.unregister("doomed")
        drive(reference, site_ids, items, 4 * BATCH, 6 * BATCH)

        recovered = TrackingService.restore(str(tmp_path / "ckpt"))
        assert sorted(recovered.jobs) == ["early", "late"]
        assert recovered.query("early") == reference.query("early")
        assert recovered.query("late", "top_items", 3) == reference.query(
            "late", "top_items", 3
        )
        assert recovered.comm.snapshot() == reference.comm.snapshot()
        recovered.close()

    def test_seq_numbering_survives_full_truncation(self, tmp_path):
        # checkpoint (truncates the whole WAL) -> close -> restore ->
        # ingest -> crash without checkpointing: the second recovery
        # must see the post-restore WAL tail, and a later checkpoint
        # must sort as the newest snapshot.
        site_ids, items = tenant_batch(labeled=False)
        first = self.build(checkpoint_dir=str(tmp_path / "ckpt"))
        drive(first, site_ids, items, 0, 2 * BATCH)
        first.checkpoint()  # covers everything; WAL becomes empty
        first.close()

        second = TrackingService.restore(str(tmp_path / "ckpt"))
        drive(second, site_ids, items, 2 * BATCH, 4 * BATCH)  # WAL only
        second.close()
        del second  # crash, no checkpoint

        third = TrackingService.restore(str(tmp_path / "ckpt"))
        assert third.elements_processed == 4 * BATCH
        third.checkpoint()
        third.close()

        final = TrackingService.restore(str(tmp_path / "ckpt"))
        assert final.elements_processed == 4 * BATCH
        reference = self.build()
        drive(reference, site_ids, items, 0, 4 * BATCH)
        assert self.queries(final) == self.queries(reference)
        final.close()

    def test_failed_ingest_does_not_poison_the_wal(self, tmp_path):
        site_ids, items = tenant_batch(labeled=False)
        durable = self.build(checkpoint_dir=str(tmp_path / "ckpt"))
        drive(durable, site_ids, items, 0, BATCH)
        with pytest.raises(IndexError):
            durable.ingest([10 ** 6], [1])  # site id outside the fleet
        # The write-ahead record of the unappliable batch was rolled
        # back, so recovery replays only the good prefix.
        durable.close()
        recovered = TrackingService.restore(str(tmp_path / "ckpt"))
        assert recovered.elements_processed == BATCH
        recovered.close()

    def test_fresh_checkpoint_dir_must_be_empty(self, tmp_path):
        service = self.build(checkpoint_dir=str(tmp_path / "ckpt"))
        service.close()
        with pytest.raises(ValueError, match="already holds state"):
            TrackingService(num_sites=K, checkpoint_dir=str(tmp_path / "ckpt"))

    def test_restore_missing_dir_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            TrackingService.restore(str(tmp_path / "nothing-here"))
        # Inspecting a mistyped path must not conjure state directories.
        assert not (tmp_path / "nothing-here").exists()

    def test_query_api_cannot_reach_state_hooks(self):
        service = self.build()
        for method in ("state_dict", "load_state_dict"):
            with pytest.raises(AttributeError):
                service.query("total", method)
